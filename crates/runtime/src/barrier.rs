//! Barrier implementations: sense-reversing central barrier and a
//! combining-tree barrier.
//!
//! The central barrier is the classic shared-memory barrier whose cost
//! grows with the processor count (the motivation figure of the paper,
//! after Chen/Su/Yew); the tree barrier trades single-atomic contention
//! for logarithmic depth.

use crate::fault::{SyncError, WaitPoll, Watchdog};
use crate::stats::{SyncKind, SyncStats};
use crossbeam::utils::{Backoff, CachePadded};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Sense-reversing centralized barrier.
///
/// Each processor keeps a thread-local sense; `wait` flips it. The last
/// arriving processor resets the count and releases everyone by flipping
/// the global sense.
pub struct CentralBarrier {
    n: usize,
    count: CachePadded<AtomicUsize>,
    sense: CachePadded<AtomicBool>,
    stats: Option<Arc<SyncStats>>,
}

impl CentralBarrier {
    /// A barrier for `n` processors.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        CentralBarrier {
            n,
            count: CachePadded::new(AtomicUsize::new(0)),
            sense: CachePadded::new(AtomicBool::new(false)),
            stats: None,
        }
    }

    /// Attach instrumentation.
    pub fn with_stats(mut self, stats: Arc<SyncStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Number of participating processors.
    pub fn nprocs(&self) -> usize {
        self.n
    }

    /// Block until all `n` processors have arrived. `local_sense` is the
    /// caller's thread-local sense flag (start with `false`, pass the
    /// same variable every time).
    pub fn wait(&self, local_sense: &mut bool) {
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        let my_sense = !*local_sense;
        *local_sense = my_sense;
        if self.count.fetch_add(1, Ordering::AcqRel) == self.n - 1 {
            // Last arrival: reset and release.
            self.count.store(0, Ordering::Release);
            if let Some(s) = &self.stats {
                s.barrier_episode();
            }
            self.sense.store(my_sense, Ordering::Release);
        } else {
            let backoff = Backoff::new();
            while self.sense.load(Ordering::Acquire) != my_sense {
                if backoff.is_completed() {
                    std::thread::yield_now();
                } else {
                    backoff.snooze();
                }
            }
        }
        if let (Some(s), Some(t0)) = (&self.stats, t0) {
            s.barrier_arrival(t0.elapsed());
        }
    }

    /// Re-arm the barrier for a fresh region attempt: zero the arrival
    /// count and restore the initial sense. A failed episode leaves the
    /// state mid-flight (partial count, flipped sense on some threads),
    /// so the recovery supervisor calls this between attempts — only
    /// after every worker has been joined, with callers starting from a
    /// fresh `false` local sense.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Release);
        self.sense.store(false, Ordering::Release);
    }

    /// As [`CentralBarrier::wait`], but guarded: returns
    /// [`SyncError::DeadlineExceeded`] (attributed to `site`/`pid`)
    /// instead of hanging when a peer never arrives, and bails out on
    /// region poison. A failed episode leaves the barrier state
    /// unusable for further waits — the region must be torn down and
    /// the barrier [`reset`](CentralBarrier::reset) before any retry.
    pub fn wait_until(
        &self,
        local_sense: &mut bool,
        wd: &Watchdog,
        site: usize,
        pid: usize,
    ) -> Result<(), SyncError> {
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        let my_sense = !*local_sense;
        *local_sense = my_sense;
        if self.count.fetch_add(1, Ordering::AcqRel) == self.n - 1 {
            self.count.store(0, Ordering::Release);
            if let Some(s) = &self.stats {
                s.barrier_episode();
            }
            self.sense.store(my_sense, Ordering::Release);
        } else {
            // Progress is the arrival count: `expected` is full
            // attendance, `observed` how many had arrived (the release
            // may reset it to 0 concurrently; the sense check is the
            // real exit condition).
            wd.guarded_wait(site, pid, SyncKind::Barrier, self.n as u64, || {
                if self.sense.load(Ordering::Acquire) == my_sense {
                    WaitPoll::Ready
                } else {
                    WaitPoll::Pending(self.count.load(Ordering::Acquire) as u64)
                }
            })?;
        }
        if let (Some(s), Some(t0)) = (&self.stats, t0) {
            s.barrier_arrival(t0.elapsed());
        }
        Ok(())
    }
}

/// A combining-tree barrier built from two-party sense barriers.
///
/// Arrival propagates up a binary tree; release propagates down. Depth is
/// `ceil(log2 n)`, so hot-spot contention on a single cache line is
/// avoided at large `n`.
pub struct TreeBarrier {
    n: usize,
    // One flag per (round, processor): processor p in round r waits for
    // partner p + 2^r.
    flags: Vec<Vec<CachePadded<AtomicUsize>>>,
    rounds: usize,
    stats: Option<Arc<SyncStats>>,
}

impl TreeBarrier {
    /// A tree barrier for `n` processors.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        let mut rounds = 0;
        while (1usize << rounds) < n {
            rounds += 1;
        }
        let flags = (0..rounds)
            .map(|_| {
                (0..n)
                    .map(|_| CachePadded::new(AtomicUsize::new(0)))
                    .collect()
            })
            .collect();
        TreeBarrier {
            n,
            flags,
            rounds,
            stats: None,
        }
    }

    /// Attach instrumentation.
    pub fn with_stats(mut self, stats: Arc<SyncStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Number of participating processors.
    pub fn nprocs(&self) -> usize {
        self.n
    }

    /// Block processor `pid` until all processors arrive. `epoch` is the
    /// caller's thread-local episode counter (start at 0, pass the same
    /// variable every time).
    ///
    /// This is a dissemination-style barrier: in round `r` processor `p`
    /// signals `(p + 2^r) mod n` and waits for a signal from
    /// `(p - 2^r) mod n`; after all rounds every processor has
    /// transitively heard from every other.
    pub fn wait(&self, pid: usize, epoch: &mut usize) {
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        *epoch += 1;
        let target = *epoch;
        for r in 0..self.rounds {
            let dist = 1usize << r;
            let to = (pid + dist) % self.n;
            self.flags[r][to].fetch_add(1, Ordering::AcqRel);
            let backoff = Backoff::new();
            while self.flags[r][pid].load(Ordering::Acquire) < target {
                if backoff.is_completed() {
                    std::thread::yield_now();
                } else {
                    backoff.snooze();
                }
            }
        }
        if let Some(s) = &self.stats {
            if pid == 0 {
                s.barrier_episode();
            }
            if let Some(t0) = t0 {
                s.barrier_arrival(t0.elapsed());
            }
        }
    }

    /// Re-arm the barrier for a fresh region attempt: zero every
    /// dissemination flag. Only legal after all workers have been
    /// joined; callers must restart from a fresh zero epoch.
    pub fn reset(&self) {
        for round in &self.flags {
            for f in round {
                f.store(0, Ordering::Release);
            }
        }
    }

    /// As [`TreeBarrier::wait`], but guarded: each dissemination round
    /// is deadline-bounded, returning [`SyncError::DeadlineExceeded`]
    /// (attributed to `site`/`pid`) instead of hanging, and bailing out
    /// on region poison. A failed episode leaves the barrier state
    /// unusable for further waits — the region must be torn down and
    /// the barrier [`reset`](TreeBarrier::reset) before any retry.
    pub fn wait_until(
        &self,
        pid: usize,
        epoch: &mut usize,
        wd: &Watchdog,
        site: usize,
    ) -> Result<(), SyncError> {
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        *epoch += 1;
        let target = *epoch as u64;
        for r in 0..self.rounds {
            let dist = 1usize << r;
            let to = (pid + dist) % self.n;
            self.flags[r][to].fetch_add(1, Ordering::AcqRel);
            let flag = &self.flags[r][pid];
            wd.guarded_wait(site, pid, SyncKind::Barrier, target, || {
                let cur = flag.load(Ordering::Acquire) as u64;
                if cur >= target {
                    WaitPoll::Ready
                } else {
                    WaitPoll::Pending(cur)
                }
            })?;
        }
        if let Some(s) = &self.stats {
            if pid == 0 {
                s.barrier_episode();
            }
            if let Some(t0) = t0 {
                s.barrier_arrival(t0.elapsed());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn hammer_central(n: usize, iters: usize) {
        let b = Arc::new(CentralBarrier::new(n));
        let phase = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let b = Arc::clone(&b);
                let phase = Arc::clone(&phase);
                std::thread::spawn(move || {
                    let mut sense = false;
                    for k in 0..iters {
                        // Everyone must observe the same phase before and
                        // after each barrier.
                        let before = phase.load(Ordering::SeqCst);
                        assert!(before >= k as u64);
                        b.wait(&mut sense);
                        phase.fetch_max(k as u64 + 1, Ordering::SeqCst);
                        b.wait(&mut sense);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(phase.load(Ordering::SeqCst), iters as u64);
    }

    #[test]
    fn central_barrier_synchronizes() {
        hammer_central(4, 200);
    }

    #[test]
    fn central_barrier_single_processor() {
        let b = CentralBarrier::new(1);
        let mut sense = false;
        for _ in 0..10 {
            b.wait(&mut sense);
        }
    }

    #[test]
    fn central_barrier_counts_episodes() {
        let stats = Arc::new(SyncStats::new());
        let b = Arc::new(CentralBarrier::new(3).with_stats(Arc::clone(&stats)));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut sense = false;
                    for _ in 0..50 {
                        b.wait(&mut sense);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.barrier_episodes_count(), 50);
        assert_eq!(stats.barrier_arrivals_count(), 150);
    }

    #[test]
    fn guarded_barriers_bound_a_missing_arrival() {
        use crate::fault::{SyncError, Watchdog};
        use std::time::Duration;
        // Only 1 of 2 processors ever arrives: both barrier kinds must
        // report a deadline at the right site instead of hanging.
        let wd = Watchdog::new(Duration::from_millis(40));
        let b = CentralBarrier::new(2);
        let mut sense = false;
        match b.wait_until(&mut sense, &wd, 9, 0).unwrap_err() {
            SyncError::DeadlineExceeded {
                site: 9,
                pid: 0,
                kind: SyncKind::Barrier,
                ..
            } => {}
            other => panic!("central: {other:?}"),
        }
        let t = TreeBarrier::new(2);
        let mut epoch = 0;
        match t.wait_until(0, &mut epoch, &wd, 11).unwrap_err() {
            SyncError::DeadlineExceeded {
                site: 11,
                pid: 0,
                kind: SyncKind::Barrier,
                ..
            } => {}
            other => panic!("tree: {other:?}"),
        }
    }

    #[test]
    fn guarded_barriers_complete_when_all_arrive() {
        use crate::fault::Watchdog;
        use std::time::Duration;
        let wd = Arc::new(Watchdog::new(Duration::from_secs(30)));
        for n in [1usize, 3, 4] {
            let b = Arc::new(CentralBarrier::new(n));
            let t = Arc::new(TreeBarrier::new(n));
            let handles: Vec<_> = (0..n)
                .map(|pid| {
                    let (b, t, wd) = (Arc::clone(&b), Arc::clone(&t), Arc::clone(&wd));
                    std::thread::spawn(move || {
                        let mut sense = false;
                        let mut epoch = 0;
                        for _ in 0..50 {
                            b.wait_until(&mut sense, &wd, 0, pid).unwrap();
                            t.wait_until(pid, &mut epoch, &wd, 1).unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
    }

    #[test]
    fn reset_rearms_a_failed_central_episode() {
        use crate::fault::Watchdog;
        use std::time::Duration;
        // One of two processors times out, leaving a stranded arrival
        // in the count; after reset (and fresh local senses) the
        // barrier completes episodes again.
        let wd = Watchdog::new(Duration::from_millis(30));
        let b = Arc::new(CentralBarrier::new(2));
        let mut sense = false;
        assert!(b.wait_until(&mut sense, &wd, 0, 0).is_err());
        b.reset();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut sense = false;
                    for _ in 0..20 {
                        b.wait(&mut sense);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn reset_rearms_a_failed_tree_episode() {
        use crate::fault::Watchdog;
        use std::time::Duration;
        let wd = Watchdog::new(Duration::from_millis(30));
        let t = Arc::new(TreeBarrier::new(3));
        let mut epoch = 0;
        assert!(t.wait_until(0, &mut epoch, &wd, 0).is_err());
        t.reset();
        let handles: Vec<_> = (0..3)
            .map(|pid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let mut epoch = 0;
                    for _ in 0..20 {
                        t.wait(pid, &mut epoch);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn tree_barrier_synchronizes() {
        for n in [1usize, 2, 3, 5, 8] {
            let b = Arc::new(TreeBarrier::new(n));
            let counter = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..n)
                .map(|pid| {
                    let b = Arc::clone(&b);
                    let counter = Arc::clone(&counter);
                    std::thread::spawn(move || {
                        let mut epoch = 0;
                        for k in 0..100u64 {
                            counter.fetch_add(1, Ordering::SeqCst);
                            b.wait(pid, &mut epoch);
                            // After the barrier all n increments of this
                            // round are visible.
                            assert!(counter.load(Ordering::SeqCst) >= (k + 1) * n as u64);
                            b.wait(pid, &mut epoch);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 100 * n as u64);
        }
    }
}
