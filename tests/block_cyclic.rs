//! Block-cyclic distribution: analysis classification, owner functions,
//! and end-to-end execution soundness.

use barrier_elim::analysis::{Bindings, CommMode, CommPattern, CommQuery, LoopPartition};
use barrier_elim::interp::{run_sequential, run_virtual, Mem, ScheduleOrder};
use barrier_elim::ir::build::*;
use barrier_elim::ir::Program;
use barrier_elim::spmd_opt::optimize;

fn chain(dist: DistSpec) -> (Program, barrier_elim::ir::SymId) {
    let mut pb = ProgramBuilder::new("bc");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n)], dist);
    let b = pb.array("B", &[sym(n)], dist);
    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i0)]), ival(idx(i0)).sin());
    pb.end();
    let i1 = pb.begin_par("i1", con(0), sym(n) - 1);
    pb.assign(elem(b, [idx(i1)]), arr(a, [idx(i1)]) * ex(2.0));
    pb.end();
    let i2 = pb.begin_par("i2", con(1), sym(n) - 1);
    pb.assign(elem(a, [idx(i2)]), arr(b, [idx(i2) - 1]) + ex(1.0));
    pb.end();
    (pb.finish(), n)
}

#[test]
fn aligned_block_cyclic_access_is_local() {
    let (prog, n) = chain(dist_block_cyclic(4));
    let q = CommQuery::new(&prog, Bindings::new(4).set(n, 64));
    let st = prog.all_statements();
    assert_eq!(
        q.comm_stmts(&st[0], &st[1], CommMode::LoopIndependent),
        CommPattern::NoComm
    );
}

#[test]
fn shifted_block_cyclic_access_wraps_and_is_general() {
    // offset -1 crosses a dealt-block boundary; at superblock wrap the
    // owner jumps from P-1 back to 0, so this is *not* neighbor-safe.
    let (prog, n) = chain(dist_block_cyclic(4));
    let q = CommQuery::new(&prog, Bindings::new(4).set(n, 64));
    let st = prog.all_statements();
    assert_eq!(
        q.comm_stmts(&st[1], &st[2], CommMode::LoopIndependent),
        CommPattern::General
    );
}

#[test]
fn block_cyclic_owner_function() {
    let p = LoopPartition::BlockCyclicOwner {
        array: barrier_elim::ir::ArrayId(0),
        block: 4,
        sub: idx(barrier_elim::ir::LoopId(0)),
    };
    let bind = Bindings::new(3);
    let check = |x: i64, expect: i64| {
        let owner = p.owner_of(&bind, x, &|_| Some(x)).unwrap();
        assert_eq!(owner, expect, "element {x}");
    };
    check(0, 0);
    check(3, 0);
    check(4, 1);
    check(8, 2);
    check(12, 0); // wraps
    check(23, 2);
}

#[test]
fn block_cyclic_execution_matches_sequential() {
    for nprocs in [2i64, 3, 4] {
        let (prog, n) = chain(dist_block_cyclic(4));
        let bind = Bindings::new(nprocs).set(n, 48);
        let oracle = Mem::new(&prog, &bind);
        run_sequential(&prog, &bind, &oracle);
        let plan = optimize(&prog, &bind);
        for order in [
            ScheduleOrder::RoundRobin,
            ScheduleOrder::Reverse,
            ScheduleOrder::Random(5),
        ] {
            let mem = Mem::new(&prog, &bind);
            run_virtual(&prog, &bind, &plan, &mem, order);
            assert_eq!(mem.max_abs_diff(&oracle), 0.0, "P={nprocs} order {order:?}");
        }
    }
}

#[test]
fn block_cyclic_unique_producer_becomes_counter() {
    // DO k { phase writing column k of a block-cyclic matrix; phase
    // reading it from every column } — counter with owner((k/b) mod P).
    let mut pb = ProgramBuilder::new("bc_bcast");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n), sym(n)], dist_block_cyclic_dim(1, 2));
    let k = pb.begin_seq("k", con(0), sym(n) - 2);
    let i1 = pb.begin_par("i1", con(0), sym(n) - 1);
    pb.assign(
        elem(a, [idx(i1), idx(k)]),
        arr(a, [idx(i1), idx(k)]) * ex(0.5),
    );
    pb.end();
    let j2 = pb.begin_par("j2", con(1), sym(n) - 1);
    let i2 = pb.begin_seq("i2", con(0), sym(n) - 1);
    pb.begin_guard(vec![ge0(idx(j2) - idx(k) - 1)]);
    pb.assign(
        elem(a, [idx(i2), idx(j2)]),
        arr(a, [idx(i2), idx(j2)]) - arr(a, [idx(i2), idx(k)]) * ex(0.01),
    );
    pb.end();
    pb.end();
    pb.end();
    pb.end();
    let prog = pb.finish();
    let bind = Bindings::new(4).set(n, 24);
    let st = optimize(&prog, &bind).static_stats();
    assert!(st.counter_syncs >= 1, "{st:?}");

    // And it runs correctly.
    let oracle = Mem::new(&prog, &bind);
    run_sequential(&prog, &bind, &oracle);
    let plan = optimize(&prog, &bind);
    let mem = Mem::new(&prog, &bind);
    run_virtual(&prog, &bind, &plan, &mem, ScheduleOrder::Reverse);
    assert_eq!(mem.max_abs_diff(&oracle), 0.0);
}
