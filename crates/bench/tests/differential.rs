//! Differential property tests: the memoized, parallel analysis is a
//! pure speed knob. For every suite kernel and a population of
//! oracle-generated programs, the cached/parallel configuration (and
//! the cross-program shared-cache entry point) must produce a plan and
//! decision log bitwise identical to the sequential uncached reference.

use spmd_opt::{
    optimize_explained, optimize_explained_shared, render_plan, AnalysisConfig, AnalysisStats,
    OptimizeOptions,
};
use std::sync::Arc;
use suite::Scale;

fn opts(analysis: AnalysisConfig) -> OptimizeOptions {
    OptimizeOptions {
        analysis,
        ..Default::default()
    }
}

/// Render the (plan, decision log) fingerprint for one configuration.
fn fingerprint(
    prog: &ir::Program,
    bind: &analysis::Bindings,
    cfg: AnalysisConfig,
) -> (String, String, AnalysisStats) {
    let (plan, log, stats) = optimize_explained(prog, bind, opts(cfg));
    let log = log
        .iter()
        .map(|d| format!("{d:?}\n"))
        .collect::<Vec<_>>()
        .concat();
    (render_plan(prog, &plan), log, stats)
}

#[test]
fn suite_kernels_cached_parallel_match_sequential_uncached() {
    let shared = Arc::new(ineq::FmeCache::new());
    for def in suite::all() {
        let (built, bind) = spmd_bench::instance(&def, Scale::Test, 4);
        let (ref_plan, ref_log, _) =
            fingerprint(&built.prog, &bind, AnalysisConfig::sequential_uncached());
        let (plan, log, stats) = fingerprint(&built.prog, &bind, AnalysisConfig::default());
        assert_eq!(ref_plan, plan, "cached plan diverged on {}", def.name);
        assert_eq!(ref_log, log, "cached log diverged on {}", def.name);
        // The guarded scan never grew past its constraint budget.
        assert!(
            stats.fme.peak_constraints <= ineq::MAX_FEAS_CONSTRAINTS,
            "{}: peak {} over budget",
            def.name,
            stats.fme.peak_constraints
        );

        // Same program under a memo shared across every kernel in this
        // loop: cross-program replay must not leak one kernel's
        // verdicts into another's decisions.
        let (plan, log, _) =
            optimize_explained_shared(&built.prog, &bind, opts(AnalysisConfig::default()), &shared);
        let log = log
            .iter()
            .map(|d| format!("{d:?}\n"))
            .collect::<Vec<_>>()
            .concat();
        assert_eq!(
            ref_plan,
            render_plan(&built.prog, &plan),
            "shared-cache plan diverged on {}",
            def.name
        );
        assert_eq!(ref_log, log, "shared-cache log diverged on {}", def.name);
    }
    let st = shared.stats();
    assert!(st.feas_hits > 0, "shared memo never hit across the suite");
}

#[test]
fn oracle_programs_cached_parallel_match_sequential_uncached() {
    for seed in 0..48 {
        let g = oracle::generate(seed);
        let bind = g.bindings(4);
        let (ref_plan, ref_log, _) =
            fingerprint(&g.prog, &bind, AnalysisConfig::sequential_uncached());
        let (plan, log, _) = fingerprint(&g.prog, &bind, AnalysisConfig::default());
        assert_eq!(
            ref_plan, plan,
            "cached plan diverged on seed {seed} ({:?})",
            g.shape
        );
        assert_eq!(
            ref_log, log,
            "cached log diverged on seed {seed} ({:?})",
            g.shape
        );
    }
}

#[test]
fn extreme_bindings_keep_barriers_instead_of_panicking() {
    // Near-i64 loop bounds push the exact arithmetic inside the
    // Fourier-Motzkin scans toward overflow. The analysis must finish
    // (no panic), and any overflow must surface as an Unknown verdict —
    // which keeps the barrier — with identical answers cached and not.
    for def in suite::all().into_iter().take(6) {
        let (built, _) = spmd_bench::instance(&def, Scale::Test, 4);
        let mut huge = analysis::Bindings::new(4);
        for &(s, _) in &built.values {
            huge.bind(s, i64::MAX / 4);
        }
        let (ref_plan, ref_log, _) =
            fingerprint(&built.prog, &huge, AnalysisConfig::sequential_uncached());
        let (plan, log, _) = fingerprint(&built.prog, &huge, AnalysisConfig::default());
        assert_eq!(ref_plan, plan, "plan diverged on {} (huge)", def.name);
        assert_eq!(ref_log, log, "log diverged on {} (huge)", def.name);
    }
}
