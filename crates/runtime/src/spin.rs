//! Tunable spin → `pause` → park escalation for the pure-atomic fast
//! paths.
//!
//! Every blocking primitive in this crate waits the same way: a short
//! burst of `spin_loop` hints (cheap, keeps the cache line hot), then
//! cooperative `yield_now` rounds (essential when the team is
//! oversubscribed — the producer needs the core), then bounded
//! `park_timeout` slices (stops burning a core on waits that are
//! already many OS quanta long). The thresholds between the phases are
//! the *park threshold* of the ghc-openmp journey and the spin/park
//! policy knob of the 1024-core RISC-V barrier study: the right values
//! depend on how the team maps onto the machine, so they live in a
//! [`SpinPolicy`] value the caller can tune per primitive, with a
//! topology-aware default ([`SpinPolicy::auto`]).
//!
//! [`SpinWait`] is the per-wait escalation state machine. Pure waits
//! call [`SpinWait::snooze`] in their poll loop; the guarded wait in
//! [`crate::fault`] instead asks [`SpinWait::advise`] which phase is
//! next and performs the park itself (it must register with the
//! watchdog so poison can wake it). Either way the phase transition
//! counts are kept, so [`crate::stats::SyncStats`] can report how often
//! waits escalated past spinning — the telemetry that tells a convoying
//! schedule from a healthy one.

use std::time::Duration;

/// Escalation thresholds for one blocking wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpinPolicy {
    /// Polls spent issuing `spin_loop` hints before yielding.
    pub spin_limit: u32,
    /// Polls spent in `yield_now` before escalating to parking — the
    /// tunable park threshold.
    pub yield_limit: u32,
    /// Longest interval one park lasts before the waiter self-wakes and
    /// re-polls its condition.
    pub park_slice: Duration,
}

impl SpinPolicy {
    /// A policy with explicit thresholds.
    pub const fn new(spin_limit: u32, yield_limit: u32, park_slice: Duration) -> Self {
        SpinPolicy {
            spin_limit,
            yield_limit,
            park_slice,
        }
    }

    /// Topology-aware default: on a multi-core host a waiter spins
    /// longer (the producer is likely running right now); on a single
    /// core spinning is pure waste, so the waiter yields almost
    /// immediately to hand the producer the core. Both keep a generous
    /// yield phase and park late in small slices, so the common case
    /// never sleeps but a stalled wait stops burning the core.
    pub fn auto() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let spin_limit = if cores > 1 { 64 } else { 4 };
        SpinPolicy::new(spin_limit, 256, Duration::from_micros(100))
    }

    /// Park as early as possible (no spin phase, one yield): the
    /// stress-test policy that forces every wait through the full
    /// escalation ladder, and a sensible choice when the team heavily
    /// oversubscribes the machine.
    pub const fn eager_park() -> Self {
        SpinPolicy::new(0, 1, Duration::from_micros(50))
    }
}

impl Default for SpinPolicy {
    fn default() -> Self {
        SpinPolicy::auto()
    }
}

/// Which action a waiter takes for one poll round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpinPhase {
    /// Issue a `spin_loop` hint and re-poll.
    Spin,
    /// `yield_now` and re-poll.
    Yield,
    /// Park for at most one [`SpinPolicy::park_slice`].
    Park,
}

/// Escalation counts of one completed wait (also the unit
/// [`crate::stats::SyncStats`] aggregates).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaitEffort {
    /// `spin_loop`-hint rounds.
    pub spins: u64,
    /// `yield_now` rounds.
    pub yields: u64,
    /// Bounded parks.
    pub parks: u64,
}

impl WaitEffort {
    /// True when the wait never escalated past the spin phase.
    pub fn stayed_on_fast_path(&self) -> bool {
        self.yields == 0 && self.parks == 0
    }
}

/// Per-wait escalation state machine (create one per blocked wait; it
/// is cheap — three counters and a copied policy).
#[derive(Clone, Debug)]
pub struct SpinWait {
    policy: SpinPolicy,
    effort: WaitEffort,
}

impl SpinWait {
    /// A fresh escalation ladder under `policy`.
    pub fn new(policy: SpinPolicy) -> Self {
        SpinWait {
            policy,
            effort: WaitEffort::default(),
        }
    }

    /// Decide (and count) the next phase without performing it. The
    /// guarded wait uses this so it can sample the watchdog exactly on
    /// park transitions and do its own registered park.
    pub fn advise(&mut self) -> SpinPhase {
        if self.effort.spins < self.policy.spin_limit as u64 {
            self.effort.spins += 1;
            SpinPhase::Spin
        } else if self.effort.yields < self.policy.yield_limit as u64 {
            self.effort.yields += 1;
            // Emit the escalation transition only when this wait first
            // leaves the spin phase — the spin fast path stays free of
            // thread-local reads.
            if self.effort.yields == 1 {
                crate::events::emit(
                    crate::events::EventKind::EscalateYield,
                    crate::events::NO_SITE,
                    self.effort.spins,
                );
            }
            SpinPhase::Yield
        } else {
            self.effort.parks += 1;
            if self.effort.parks == 1 {
                crate::events::emit(
                    crate::events::EventKind::EscalatePark,
                    crate::events::NO_SITE,
                    self.effort.yields,
                );
            }
            SpinPhase::Park
        }
    }

    /// True when the *next* poll round would park (the moment a sampled
    /// watchdog must check the deadline).
    pub fn next_is_park(&self) -> bool {
        self.effort.spins >= self.policy.spin_limit as u64
            && self.effort.yields >= self.policy.yield_limit as u64
    }

    /// One escalation step for pure (unguarded) waits: advise, then
    /// perform the wait. Parks here are unregistered — only the
    /// `park_slice` timeout wakes the thread, which is exactly the
    /// fast-path contract: producers never pay to wake consumers.
    pub fn snooze(&mut self) {
        match self.advise() {
            SpinPhase::Spin => std::hint::spin_loop(),
            SpinPhase::Yield => std::thread::yield_now(),
            SpinPhase::Park => std::thread::park_timeout(self.policy.park_slice),
        }
    }

    /// The escalation counts so far.
    pub fn effort(&self) -> WaitEffort {
        self.effort
    }

    /// The policy this ladder runs under.
    pub fn policy(&self) -> SpinPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_escalate_in_order_and_are_counted() {
        let mut sw = SpinWait::new(SpinPolicy::new(2, 3, Duration::from_micros(10)));
        let phases: Vec<SpinPhase> = (0..7).map(|_| sw.advise()).collect();
        assert_eq!(
            phases,
            vec![
                SpinPhase::Spin,
                SpinPhase::Spin,
                SpinPhase::Yield,
                SpinPhase::Yield,
                SpinPhase::Yield,
                SpinPhase::Park,
                SpinPhase::Park,
            ]
        );
        assert_eq!(
            sw.effort(),
            WaitEffort {
                spins: 2,
                yields: 3,
                parks: 2
            }
        );
        assert!(!sw.effort().stayed_on_fast_path());
    }

    #[test]
    fn next_is_park_fires_exactly_at_the_threshold() {
        let mut sw = SpinWait::new(SpinPolicy::new(1, 1, Duration::from_micros(10)));
        assert!(!sw.next_is_park());
        sw.advise(); // spin
        assert!(!sw.next_is_park());
        sw.advise(); // yield
        assert!(sw.next_is_park());
        assert_eq!(sw.advise(), SpinPhase::Park);
    }

    #[test]
    fn eager_park_policy_skips_spinning() {
        let mut sw = SpinWait::new(SpinPolicy::eager_park());
        assert_eq!(sw.advise(), SpinPhase::Yield);
        assert_eq!(sw.advise(), SpinPhase::Park);
    }

    #[test]
    fn snooze_terminates_even_in_park_phase() {
        // A parked snooze must self-wake within the slice: time a few.
        let mut sw = SpinWait::new(SpinPolicy::new(0, 0, Duration::from_micros(50)));
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            sw.snooze();
        }
        assert!(t0.elapsed() < Duration::from_secs(2));
        assert_eq!(sw.effort().parks, 3);
    }

    #[test]
    fn auto_policy_is_sane() {
        let p = SpinPolicy::auto();
        assert!(p.yield_limit > 0);
        assert!(p.park_slice > Duration::ZERO);
        assert!(p.park_slice < Duration::from_millis(10));
    }
}
