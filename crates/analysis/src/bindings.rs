//! Concrete values for symbolic constants and the processor count.

use ir::{AffAtom, Affine, SymId};
use std::collections::BTreeMap;

/// Binds symbolic program constants to concrete values and fixes the
/// number of processors `P`.
///
/// The analysis works symbolically for everything *additive* (offsets,
/// bounds); block/cyclic ownership arithmetic multiplies the processor
/// variable by the block size, which must be a known integer, so the
/// decomposition-related symbolics must be bound. Unbound symbolics
/// degrade specific tests to the conservative answer, never to an unsound
/// one.
#[derive(Clone, Debug)]
pub struct Bindings {
    /// Number of processors.
    pub nprocs: i64,
    syms: BTreeMap<SymId, i64>,
}

impl Bindings {
    /// New bindings for `nprocs` processors, no symbolics bound.
    pub fn new(nprocs: i64) -> Self {
        assert!(nprocs >= 1, "need at least one processor");
        Bindings {
            nprocs,
            syms: BTreeMap::new(),
        }
    }

    /// Bind a symbolic constant.
    pub fn set(mut self, s: SymId, v: i64) -> Self {
        self.syms.insert(s, v);
        self
    }

    /// Bind a symbolic constant (in-place).
    pub fn bind(&mut self, s: SymId, v: i64) {
        self.syms.insert(s, v);
    }

    /// Value of a symbolic constant, if bound.
    pub fn get(&self, s: SymId) -> Option<i64> {
        self.syms.get(&s).copied()
    }

    /// Evaluate an affine expression whose loop atoms are supplied by
    /// `loop_val`; returns `None` when an unbound symbolic occurs.
    pub fn eval_affine(
        &self,
        e: &Affine,
        loop_val: &dyn Fn(ir::LoopId) -> Option<i64>,
    ) -> Option<i64> {
        let mut acc = e.constant_term();
        for (a, c) in e.terms() {
            let v = match a {
                AffAtom::Sym(s) => self.get(s)?,
                AffAtom::Loop(l) => loop_val(l)?,
            };
            acc = acc.checked_add(c.checked_mul(v)?)?;
        }
        Some(acc)
    }

    /// Evaluate an affine expression that must not mention loop indices
    /// (extents, symbolic-only bounds).
    pub fn eval_const(&self, e: &Affine) -> Option<i64> {
        self.eval_affine(e, &|_| None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::build::*;

    #[test]
    fn eval_const_uses_bound_syms() {
        let mut p = ProgramBuilder::new("t");
        let n = p.sym("n");
        let b = Bindings::new(4).set(n, 100);
        assert_eq!(b.eval_const(&(sym(n) * 2 + 1)), Some(201));
        let m = SymId(99);
        assert_eq!(b.eval_const(&sym(m)), None);
    }

    #[test]
    #[should_panic]
    fn zero_processors_rejected() {
        let _ = Bindings::new(0);
    }
}
