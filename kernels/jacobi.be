! 1-D Jacobi relaxation: the motivating stencil.
program jacobi
sym n, tmax
array A(n) block
array B(n) block

doall i0 = 0, n-1
  A(i0) = sin(i0)
end

do t = 0, tmax-1
  doall i = 1, n-2
    B(i) = 0.5 * (A(i-1) + A(i+1))
  end
  doall j = 1, n-2
    A(j) = B(j)
  end
end
