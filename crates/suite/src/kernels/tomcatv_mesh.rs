//! Mesh relaxation with a max-residual convergence test (stands in for
//! SPEC92 `tomcatv`).
//!
//! The residual phases are neighbor-communicating stencils, but the
//! max-reduction into a shared scalar forces a real barrier every
//! iteration — this kernel shows the *partial*-win profile (the paper's
//! average program, not its best case).

use crate::{Built, Scale};
use ir::build::*;
use ir::RedOp;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (10, 2),
        Scale::Small => (48, 8),
        Scale::Full => (384, 24),
    };
    let mut pb = ProgramBuilder::new("tomcatv_mesh");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let x = pb.array("X", &[sym(n), sym(n)], dist_block());
    let y = pb.array("Y", &[sym(n), sym(n)], dist_block());
    let rx = pb.array("RX", &[sym(n), sym(n)], dist_block());
    let ry = pb.array("RY", &[sym(n), sym(n)], dist_block());
    let rmax = pb.scalar("rmax", 0.0);

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(x, [idx(i0), idx(j0)]),
        ival(idx(i0) * 3 + idx(j0)).sin(),
    );
    pb.assign(
        elem(y, [idx(i0), idx(j0)]),
        ival(idx(i0) - idx(j0) * 2).cos(),
    );
    pb.end();
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);

    // Residuals (stencil).
    let i1 = pb.begin_par("i1", con(1), sym(n) - 2);
    let j1 = pb.begin_seq("j1", con(1), sym(n) - 2);
    pb.assign(
        elem(rx, [idx(i1), idx(j1)]),
        arr(x, [idx(i1) - 1, idx(j1)])
            + arr(x, [idx(i1) + 1, idx(j1)])
            + arr(x, [idx(i1), idx(j1) - 1])
            + arr(x, [idx(i1), idx(j1) + 1])
            - ex(4.0) * arr(x, [idx(i1), idx(j1)]),
    );
    pb.assign(
        elem(ry, [idx(i1), idx(j1)]),
        arr(y, [idx(i1) - 1, idx(j1)])
            + arr(y, [idx(i1) + 1, idx(j1)])
            + arr(y, [idx(i1), idx(j1) - 1])
            + arr(y, [idx(i1), idx(j1) + 1])
            - ex(4.0) * arr(y, [idx(i1), idx(j1)]),
    );
    pb.end();
    pb.end();

    // Max residual (reduction into a shared scalar — keeps a barrier).
    let i2 = pb.begin_par("i2", con(1), sym(n) - 2);
    let j2 = pb.begin_seq("j2", con(1), sym(n) - 2);
    pb.reduce(
        svar(rmax),
        RedOp::Max,
        arr(rx, [idx(i2), idx(j2)]).abs() + arr(ry, [idx(i2), idx(j2)]).abs(),
    );
    pb.end();
    pb.end();

    // Update.
    let i3 = pb.begin_par("i3", con(1), sym(n) - 2);
    let j3 = pb.begin_seq("j3", con(1), sym(n) - 2);
    pb.assign(
        elem(x, [idx(i3), idx(j3)]),
        arr(x, [idx(i3), idx(j3)]) + ex(0.2) * arr(rx, [idx(i3), idx(j3)]),
    );
    pb.assign(
        elem(y, [idx(i3), idx(j3)]),
        arr(y, [idx(i3), idx(j3)]) + ex(0.2) * arr(ry, [idx(i3), idx(j3)]),
    );
    pb.end();
    pb.end();

    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_keeps_some_barriers_but_not_all() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let opt = spmd_opt::optimize(&built.prog, &bind).static_stats();
        let fj = spmd_opt::fork_join(&built.prog, &bind).static_stats();
        assert!(opt.barriers >= 1, "{opt:?}");
        assert!(
            opt.barriers < fj.barriers,
            "optimized {opt:?} vs fork-join {fj:?}"
        );
    }
}
