//! The virtual-processor simulator.
//!
//! Executes a schedule with `P` logical processors on one thread, by
//! interleaving their event streams in any order the placed
//! synchronization permits. Because the interleaving policy is explicit
//! and adversarial orders are available, this doubles as a soundness
//! oracle for the optimizer: a missing synchronization lets some legal
//! order produce results that differ from the sequential semantics.

use crate::events::{exec_work, producer_pid, unroll, DynCounts, Event};
use crate::mem::Mem;
use analysis::Bindings;
use ir::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spmd_opt::{SpmdProgram, SyncOp};

/// How the simulator picks the next virtual processor to advance.
#[derive(Clone, Copy, Debug)]
pub enum ScheduleOrder {
    /// Cycle 0, 1, …, P-1 — the "natural" order.
    RoundRobin,
    /// Cycle P-1, …, 0 — adversarial for forward-flowing dependences.
    Reverse,
    /// Seeded random choices — adversarial for everything on average.
    Random(u64),
}

/// The result of a virtual run.
#[derive(Clone, Copy, Debug)]
pub struct VirtualOutcome {
    /// Dynamic synchronization counts of the traversal.
    pub counts: DynCounts,
    /// Number of events in the unrolled schedule.
    pub num_events: usize,
}

/// Can processor `pid` cross the event at its current position?
fn can_advance(
    events: &[Event],
    ptrs: &[usize],
    pid: usize,
    prog: &Program,
    bind: &Bindings,
) -> bool {
    let i = ptrs[pid];
    if i >= events.len() {
        return false;
    }
    let nprocs = ptrs.len();
    match &events[i] {
        Event::Work { .. } | Event::SerialWork { .. } => true,
        // Workers wait until the master has performed the dispatch.
        Event::Dispatch => pid == 0 || ptrs[0] > i,
        Event::Sync { op, env, .. } => match op {
            SyncOp::None => true,
            SyncOp::Barrier => (0..nprocs).all(|q| ptrs[q] >= i),
            SyncOp::Neighbor { fwd, bwd } => {
                let fwd_ok = !*fwd || pid == 0 || ptrs[pid - 1] >= i;
                let bwd_ok = !*bwd || pid + 1 == nprocs || ptrs[pid + 1] >= i;
                fwd_ok && bwd_ok
            }
            SyncOp::Counter { producer, .. } => {
                let prod = producer_pid(bind, prog, producer, env) as usize;
                pid == prod || ptrs[prod] > i
            }
            SyncOp::PairCounter { dists, producers } => {
                // Crossable once every in-range distance target and
                // every (non-self) producer target has reached this
                // site — exactly the wavefront release condition.
                dists.iter().all(|d| {
                    let target = pid as i64 - d;
                    target < 0 || target >= nprocs as i64 || ptrs[target as usize] >= i
                }) && producers.iter().all(|spec| {
                    let prod = producer_pid(bind, prog, spec, env) as usize;
                    prod == pid || ptrs[prod] >= i
                })
            }
        },
    }
}

/// Run the schedule with `nprocs` virtual processors in the given
/// interleaving order. Panics on deadlock (which would indicate a bug in
/// the scheduler or simulator, not a property of valid plans).
pub fn run_virtual(
    prog: &Program,
    bind: &Bindings,
    plan: &SpmdProgram,
    mem: &Mem,
    order: ScheduleOrder,
) -> VirtualOutcome {
    run_virtual_impl(prog, bind, plan, mem, order, None)
}

/// As [`run_virtual`], additionally building a timeline on a logical
/// clock: every scheduler step is one microsecond, each executed event
/// is a one-step span, and a sync crossed after blocking spans the whole
/// interval from the processor's arrival at the sync to its crossing —
/// so the trace shows exactly which processors a barrier convoyed under
/// this interleaving.
pub fn run_virtual_traced(
    prog: &Program,
    bind: &Bindings,
    plan: &SpmdProgram,
    mem: &Mem,
    order: ScheduleOrder,
) -> (VirtualOutcome, Vec<obs::Span>) {
    let mut spans = Vec::new();
    let out = run_virtual_impl(prog, bind, plan, mem, order, Some(&mut spans));
    (out, spans)
}

fn run_virtual_impl(
    prog: &Program,
    bind: &Bindings,
    plan: &SpmdProgram,
    mem: &Mem,
    order: ScheduleOrder,
    mut spans: Option<&mut Vec<obs::Span>>,
) -> VirtualOutcome {
    let nprocs = bind.nprocs as usize;
    let events = unroll(prog, bind, plan);
    let m = events.len();
    let mut ptrs = vec![0usize; nprocs];
    let mut rng = match order {
        ScheduleOrder::Random(seed) => Some(StdRng::seed_from_u64(seed)),
        _ => None,
    };
    let mut cursor = 0usize;
    // Logical clock: one scheduler step = 1µs. `arrived_at[pid]` is the
    // step at which the processor was first seen blocked at its current
    // event (None while running freely).
    let mut step = 0u64;
    let mut arrived_at: Vec<Option<u64>> = vec![None; nprocs];
    loop {
        if ptrs.iter().all(|&p| p == m) {
            break;
        }
        if spans.is_some() {
            for pid in 0..nprocs {
                if ptrs[pid] < m
                    && arrived_at[pid].is_none()
                    && !can_advance(&events, &ptrs, pid, prog, bind)
                {
                    arrived_at[pid] = Some(step);
                }
            }
        }
        // Pick a processor that can advance: scan all processors once,
        // starting from a policy-chosen point.
        let start = match order {
            ScheduleOrder::RoundRobin | ScheduleOrder::Reverse => cursor,
            ScheduleOrder::Random(_) => rng.as_mut().unwrap().gen_range(0..nprocs),
        };
        let mut advanced = false;
        for k in 0..nprocs {
            let pid = match order {
                ScheduleOrder::Reverse => (nprocs - 1) - ((start + k) % nprocs),
                _ => (start + k) % nprocs,
            };
            if can_advance(&events, &ptrs, pid, prog, bind) {
                let i = ptrs[pid];
                if matches!(events[i], Event::Work { .. } | Event::SerialWork { .. }) {
                    exec_work(prog, bind, mem, pid, nprocs, &events[i]);
                }
                if let Some(buf) = spans.as_deref_mut() {
                    if !matches!(
                        events[i],
                        Event::Sync {
                            op: SyncOp::None,
                            ..
                        }
                    ) {
                        let start_us = arrived_at[pid].take().unwrap_or(step);
                        buf.push(obs::Span {
                            pid,
                            name: crate::par::span_name(prog, &events[i]),
                            cat: match &events[i] {
                                Event::Work { .. } | Event::SerialWork { .. } => obs::SpanCat::Work,
                                Event::Dispatch => obs::SpanCat::Dispatch,
                                Event::Sync { .. } => obs::SpanCat::Sync,
                            },
                            start_us,
                            end_us: step + 1,
                        });
                    } else {
                        arrived_at[pid] = None;
                    }
                }
                ptrs[pid] = i + 1;
                advanced = true;
                cursor = cursor.wrapping_add(1);
                break;
            }
        }
        if !advanced {
            for (q, &p) in ptrs.iter().enumerate() {
                eprintln!("proc {q} at {p}/{m}: {:?}", events.get(p));
            }
            panic!("virtual schedule deadlocked (simulator bug)");
        }
        step += 1;
    }
    VirtualOutcome {
        counts: DynCounts::from_events(&events, nprocs),
        num_events: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::build::*;
    use spmd_opt::{fork_join, optimize};

    /// Build the jacobi time-sweep program.
    fn sweep(n_val: i64, steps: i64, nprocs: i64) -> (Program, Bindings) {
        let mut pb = ProgramBuilder::new("sweep");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let _t = pb.begin_seq("t", con(0), con(steps - 1));
        let i = pb.begin_par("i", con(1), sym(n) - 2);
        pb.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 2);
        pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
        pb.end();
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(nprocs).set(n, n_val);
        (prog, bind)
    }

    fn check_all_orders(prog: &Program, bind: &Bindings, plan: &spmd_opt::SpmdProgram) {
        // Sequential oracle.
        let oracle = Mem::new(prog, bind);
        oracle.fill(ir::ArrayId(0), |s| (s[0] % 7) as f64);
        crate::run_sequential(prog, bind, &oracle);

        for order in [
            ScheduleOrder::RoundRobin,
            ScheduleOrder::Reverse,
            ScheduleOrder::Random(1),
            ScheduleOrder::Random(42),
        ] {
            let mem = Mem::new(prog, bind);
            mem.fill(ir::ArrayId(0), |s| (s[0] % 7) as f64);
            run_virtual(prog, bind, plan, &mem, order);
            assert_eq!(
                mem.max_abs_diff(&oracle),
                0.0,
                "virtual execution diverged under {order:?}"
            );
        }
    }

    #[test]
    fn optimized_sweep_is_correct_under_adversarial_orders() {
        let (prog, bind) = sweep(32, 5, 4);
        let plan = optimize(&prog, &bind);
        check_all_orders(&prog, &bind, &plan);
    }

    #[test]
    fn fork_join_sweep_is_correct() {
        let (prog, bind) = sweep(32, 5, 4);
        let plan = fork_join(&prog, &bind);
        check_all_orders(&prog, &bind, &plan);
    }

    #[test]
    fn optimized_counts_far_fewer_barriers() {
        let (prog, bind) = sweep(32, 50, 4);
        let mem_a = Mem::new(&prog, &bind);
        let fj = run_virtual(
            &prog,
            &bind,
            &fork_join(&prog, &bind),
            &mem_a,
            ScheduleOrder::RoundRobin,
        );
        let mem_b = Mem::new(&prog, &bind);
        let opt = run_virtual(
            &prog,
            &bind,
            &optimize(&prog, &bind),
            &mem_b,
            ScheduleOrder::RoundRobin,
        );
        assert_eq!(fj.counts.barriers, 100);
        assert_eq!(opt.counts.barriers, 1);
        assert!(opt.counts.neighbor_posts > 0);
    }

    #[test]
    fn traced_run_matches_untraced_and_spans_are_well_formed() {
        let (prog, bind) = sweep(16, 3, 4);
        let plan = optimize(&prog, &bind);
        let mem = Mem::new(&prog, &bind);
        let (out, spans) = run_virtual_traced(&prog, &bind, &plan, &mem, ScheduleOrder::Reverse);
        let mem2 = Mem::new(&prog, &bind);
        let plain = run_virtual(&prog, &bind, &plan, &mem2, ScheduleOrder::Reverse);
        assert_eq!(out.counts, plain.counts);
        assert!(!spans.is_empty());
        // Every processor has work spans, spans never run backwards, and a
        // processor's spans are disjoint in logical time.
        for pid in 0..4 {
            let mine: Vec<_> = spans.iter().filter(|s| s.pid == pid).collect();
            assert!(mine.iter().any(|s| matches!(s.cat, obs::SpanCat::Work)));
            let mut last_end = 0;
            for s in &mine {
                assert!(s.start_us < s.end_us, "empty or inverted span {s:?}");
                assert!(s.start_us >= last_end, "overlapping spans on proc {pid}");
                last_end = s.end_us;
            }
        }
    }

    /// Deliberately broken plan: removing a needed neighbor sync must be
    /// caught by some adversarial order.
    #[test]
    fn missing_sync_is_detected_by_adversarial_order() {
        let (prog, bind) = sweep(32, 5, 4);
        let mut plan = optimize(&prog, &bind);
        // Strip every non-barrier sync from the plan.
        fn strip(items: &mut Vec<spmd_opt::RItem>) {
            for it in items.iter_mut() {
                match it {
                    spmd_opt::RItem::Phase(p) => {
                        if !p.after.is_barrier() {
                            p.after = SyncOp::None;
                        }
                    }
                    spmd_opt::RItem::Seq {
                        body,
                        bottom,
                        after,
                        ..
                    } => {
                        strip(body);
                        if !bottom.is_barrier() {
                            *bottom = SyncOp::None;
                        }
                        if !after.is_barrier() {
                            *after = SyncOp::None;
                        }
                    }
                }
            }
        }
        for item in plan.items.iter_mut() {
            if let spmd_opt::TopItem::Region(r) = item {
                strip(&mut r.items);
            }
        }
        let oracle = Mem::new(&prog, &bind);
        oracle.fill(ir::ArrayId(0), |s| (s[0] % 7) as f64);
        crate::run_sequential(&prog, &bind, &oracle);

        let mut diverged = false;
        for order in [ScheduleOrder::Reverse, ScheduleOrder::Random(3)] {
            let mem = Mem::new(&prog, &bind);
            mem.fill(ir::ArrayId(0), |s| (s[0] % 7) as f64);
            run_virtual(&prog, &bind, &plan, &mem, order);
            if mem.max_abs_diff(&oracle) != 0.0 {
                diverged = true;
            }
        }
        assert!(
            diverged,
            "stripping required synchronization should corrupt some order"
        );
    }
}
