//! Differential property tests: the memoized, parallel analysis is a
//! pure speed knob. For every suite kernel and a population of
//! oracle-generated programs, the cached/parallel configuration (and
//! the cross-program shared-cache entry point) must produce a plan and
//! decision log bitwise identical to the sequential uncached reference.

use spmd_opt::{
    optimize_explained, optimize_explained_shared, render_plan, AnalysisConfig, AnalysisStats,
    OptimizeOptions,
};
use std::sync::Arc;
use suite::Scale;

fn opts(analysis: AnalysisConfig) -> OptimizeOptions {
    OptimizeOptions {
        analysis,
        ..Default::default()
    }
}

/// Render the (plan, decision log) fingerprint for one configuration.
fn fingerprint(
    prog: &ir::Program,
    bind: &analysis::Bindings,
    cfg: AnalysisConfig,
) -> (String, String, AnalysisStats) {
    let (plan, log, stats) = optimize_explained(prog, bind, opts(cfg));
    let log = log
        .iter()
        .map(|d| format!("{d:?}\n"))
        .collect::<Vec<_>>()
        .concat();
    (render_plan(prog, &plan), log, stats)
}

#[test]
fn suite_kernels_cached_parallel_match_sequential_uncached() {
    let shared = Arc::new(ineq::FmeCache::new());
    for def in suite::all() {
        let (built, bind) = spmd_bench::instance(&def, Scale::Test, 4);
        let (ref_plan, ref_log, _) =
            fingerprint(&built.prog, &bind, AnalysisConfig::sequential_uncached());
        let (plan, log, stats) = fingerprint(&built.prog, &bind, AnalysisConfig::default());
        assert_eq!(ref_plan, plan, "cached plan diverged on {}", def.name);
        assert_eq!(ref_log, log, "cached log diverged on {}", def.name);
        // The guarded scan never grew past its constraint budget.
        assert!(
            stats.fme.peak_constraints <= ineq::MAX_FEAS_CONSTRAINTS,
            "{}: peak {} over budget",
            def.name,
            stats.fme.peak_constraints
        );

        // Same program under a memo shared across every kernel in this
        // loop: cross-program replay must not leak one kernel's
        // verdicts into another's decisions.
        let (plan, log, _) =
            optimize_explained_shared(&built.prog, &bind, opts(AnalysisConfig::default()), &shared);
        let log = log
            .iter()
            .map(|d| format!("{d:?}\n"))
            .collect::<Vec<_>>()
            .concat();
        assert_eq!(
            ref_plan,
            render_plan(&built.prog, &plan),
            "shared-cache plan diverged on {}",
            def.name
        );
        assert_eq!(ref_log, log, "shared-cache log diverged on {}", def.name);
    }
    let st = shared.stats();
    assert!(st.feas_hits > 0, "shared memo never hit across the suite");
}

#[test]
fn oracle_programs_cached_parallel_match_sequential_uncached() {
    for seed in 0..48 {
        let g = oracle::generate(seed);
        let bind = g.bindings(4);
        let (ref_plan, ref_log, _) =
            fingerprint(&g.prog, &bind, AnalysisConfig::sequential_uncached());
        let (plan, log, _) = fingerprint(&g.prog, &bind, AnalysisConfig::default());
        assert_eq!(
            ref_plan, plan,
            "cached plan diverged on seed {seed} ({:?})",
            g.shape
        );
        assert_eq!(
            ref_log, log,
            "cached log diverged on seed {seed} ({:?})",
            g.shape
        );
    }
}

/// The fault path is a pure robustness knob: every suite kernel under
/// both plans must compute bitwise-identical memory — and drive the
/// exact same dynamic sync schedule, site for site — whether its waits
/// run on the pure-atomic fast path or through the deadline-guarded
/// watchdog. Timing may differ; decisions and data may not.
#[test]
fn guarded_and_pure_latency_paths_are_observationally_identical() {
    use interp::{run_parallel_observed, run_sequential, Mem, ObserveOptions};
    use runtime::Team;
    use std::time::Duration;

    let nprocs = 4;
    let team = Team::new(nprocs);
    for def in suite::all() {
        let (built, bind) = spmd_bench::instance(&def, Scale::Test, nprocs as i64);
        let prog = Arc::new(built.prog);
        let bind = Arc::new(bind);
        let oracle_mem = Mem::new(&prog, &bind);
        oracle_mem.fill(ir::ArrayId(0), |s| (s[0] % 7) as f64);
        run_sequential(&prog, &bind, &oracle_mem);

        for (label, plan) in [
            ("fork-join", spmd_opt::fork_join(&prog, &bind)),
            ("optimized", spmd_opt::optimize(&prog, &bind)),
        ] {
            let run = |deadline: Option<Duration>| {
                let mem = Arc::new(Mem::new(&prog, &bind));
                mem.fill(ir::ArrayId(0), |s| (s[0] % 7) as f64);
                let out = run_parallel_observed(
                    &prog,
                    &bind,
                    &plan,
                    &mem,
                    &team,
                    &ObserveOptions {
                        telemetry: true,
                        deadline,
                        ..ObserveOptions::default()
                    },
                );
                (mem, out)
            };
            let (pure_mem, pure) = run(None);
            let (pure_mem2, _) = run(None);
            let (guarded_mem, guarded) = run(Some(Duration::from_secs(30)));

            assert!(
                guarded.ok(),
                "{} ({label}): clean guarded run reported {:?}",
                def.name,
                guarded.failure
            );
            // Bitwise-identical memory — calibrated against the kernel's
            // own reproducibility: a kernel whose parallel reduction
            // order is timing-dependent (two *pure* runs already differ
            // in the last ulp) can only be held to tolerance; every
            // reproducible kernel must match the guarded path bit for
            // bit.
            //
            // The two-probe calibration is only meaningful when probes
            // can actually interleave. On a 1-core host the OS
            // serializes the team, so two pure probes land on the same
            // schedule by accident even for kernels whose reduction
            // order is timing-dependent (tred2's fork-join row
            // broadcasts) — and the guarded run, whose watchdog shifts
            // the serialization points, then differs in the last ulp.
            // Fall back to tolerance there, with the reason logged.
            let one_core = std::thread::available_parallelism()
                .map(|n| n.get() == 1)
                .unwrap_or(false);
            if one_core {
                eprintln!(
                    "{} ({label}): 1-core host — two-probe reproducibility \
                     calibration is vacuous, holding guarded-vs-pure to \
                     tolerance instead of bitwise",
                    def.name
                );
            }
            if !one_core && pure_mem.max_abs_diff(&pure_mem2) == 0.0 {
                assert_eq!(
                    pure_mem.max_abs_diff(&guarded_mem),
                    0.0,
                    "{} ({label}): guarded path changed the data",
                    def.name
                );
                assert_eq!(
                    pure_mem.checksum(),
                    guarded_mem.checksum(),
                    "{} ({label}): checksum mismatch",
                    def.name
                );
            } else {
                assert!(
                    pure_mem.max_abs_diff(&guarded_mem) <= 1e-9,
                    "{} ({label}): guarded path diverged beyond reduction noise",
                    def.name
                );
            }
            // Against the *sequential* oracle only tolerance-equality
            // holds (parallel reductions reassociate); bitwise equality
            // is the pure-vs-guarded contract above.
            assert!(
                pure_mem.max_abs_diff(&oracle_mem) <= 1e-9,
                "{} ({label}): parallel run diverged from sequential oracle",
                def.name
            );
            // Identical dynamic sync schedule...
            assert_eq!(
                pure.counts, guarded.counts,
                "{} ({label}): dynamic counts diverged",
                def.name
            );
            // ...and identical per-kind operation totals from the live
            // primitives (wait *times* legitimately differ).
            for (what, a, b) in [
                (
                    "barrier episodes",
                    pure.stats.barrier_episodes,
                    guarded.stats.barrier_episodes,
                ),
                (
                    "barrier arrivals",
                    pure.stats.barrier_arrivals,
                    guarded.stats.barrier_arrivals,
                ),
                (
                    "counter increments",
                    pure.stats.counter_increments,
                    guarded.stats.counter_increments,
                ),
                (
                    "counter waits",
                    pure.stats.counter_waits,
                    guarded.stats.counter_waits,
                ),
                (
                    "neighbor posts",
                    pure.stats.neighbor_posts,
                    guarded.stats.neighbor_posts,
                ),
                (
                    "neighbor waits",
                    pure.stats.neighbor_waits,
                    guarded.stats.neighbor_waits,
                ),
            ] {
                assert_eq!(a, b, "{} ({label}): {what} diverged", def.name);
            }
            // Site-for-site decision log: same sites, same labels, same
            // per-processor op and wait counts at every site.
            assert_eq!(
                pure.sites.len(),
                guarded.sites.len(),
                "{} ({label}): site list diverged",
                def.name
            );
            for (p, g) in pure.sites.iter().zip(&guarded.sites) {
                assert_eq!(p.meta.id, g.meta.id);
                assert_eq!(p.meta.label, g.meta.label, "{} ({label})", def.name);
                assert_eq!(p.meta.op, g.meta.op, "{} ({label})", def.name);
                assert_eq!(
                    p.total.ops, g.total.ops,
                    "{} ({label}) site {}: op count diverged",
                    def.name, p.meta.id
                );
                for (pid, (pc, gc)) in p.per_proc.iter().zip(&g.per_proc).enumerate() {
                    assert_eq!(
                        pc.ops, gc.ops,
                        "{} ({label}) site {} P{pid}: ops diverged",
                        def.name, p.meta.id
                    );
                    assert_eq!(
                        pc.waits, gc.waits,
                        "{} ({label}) site {} P{pid}: waits diverged",
                        def.name, p.meta.id
                    );
                }
            }
        }
    }
}

#[test]
fn extreme_bindings_keep_barriers_instead_of_panicking() {
    // Near-i64 loop bounds push the exact arithmetic inside the
    // Fourier-Motzkin scans toward overflow. The analysis must finish
    // (no panic), and any overflow must surface as an Unknown verdict —
    // which keeps the barrier — with identical answers cached and not.
    for def in suite::all().into_iter().take(6) {
        let (built, _) = spmd_bench::instance(&def, Scale::Test, 4);
        let mut huge = analysis::Bindings::new(4);
        for &(s, _) in &built.values {
            huge.bind(s, i64::MAX / 4);
        }
        let (ref_plan, ref_log, _) =
            fingerprint(&built.prog, &huge, AnalysisConfig::sequential_uncached());
        let (plan, log, _) = fingerprint(&built.prog, &huge, AnalysisConfig::default());
        assert_eq!(ref_plan, plan, "plan diverged on {} (huge)", def.name);
        assert_eq!(ref_log, log, "log diverged on {} (huge)", def.name);
    }
}
