//! Single-sync-op deletion mutants, and the "teeth" driver proving the
//! race validator catches them.
//!
//! A schedule's synchronization lives in four kinds of slot: a phase's
//! `after`, a sequential loop's `bottom` and `after`, and a region's
//! `end`. The mutator enumerates every non-`None` slot in a
//! deterministic walk order and produces, for each, a copy of the plan
//! with exactly that slot erased. The teeth driver then checks each
//! mutant two ways — statically with the race validator and
//! dynamically with the differential oracle under adversarial
//! interleavings — so tests can assert that the validator is at least
//! as sensitive as observed divergence, and that deleting any interior
//! sync op is flagged.

use crate::diff::plan_diverges;
use crate::validate::validate;
use analysis::Bindings;
use interp::ScheduleOrder;
use ir::Program;
use spmd_opt::{RItem, SpmdProgram, SyncOp, TopItem};

/// One deletable synchronization slot.
#[derive(Clone, Debug)]
pub struct MutationSite {
    /// Position in the deterministic slot walk (stable for a given
    /// plan; feed back to [`delete`]).
    pub index: usize,
    /// True for a region's end barrier — the executors join at region
    /// exit anyway, so deleting the *final* region's end barrier is
    /// not necessarily observable.
    pub region_end: bool,
    /// Human-readable location + op, e.g. `seq(t).bottom: neighbor`.
    pub desc: String,
}

fn op_name(op: &SyncOp) -> &'static str {
    match op {
        SyncOp::None => "none",
        SyncOp::Barrier => "barrier",
        SyncOp::Neighbor { .. } => "neighbor",
        SyncOp::Counter { .. } => "counter",
        SyncOp::PairCounter { .. } => "pairwise",
    }
}

fn visit_items(
    items: &mut [RItem],
    k: &mut usize,
    f: &mut impl FnMut(usize, bool, String, &mut SyncOp),
) {
    for it in items.iter_mut() {
        match it {
            RItem::Phase(p) => {
                let d = format!("phase(node {}).after: {}", p.node.0, op_name(&p.after));
                f(*k, false, d, &mut p.after);
                *k += 1;
            }
            RItem::Seq {
                node,
                body,
                bottom,
                after,
            } => {
                let n = node.0;
                visit_items(body, k, f);
                let d = format!("seq(node {n}).bottom: {}", op_name(bottom));
                f(*k, false, d, bottom);
                *k += 1;
                let d = format!("seq(node {n}).after: {}", op_name(after));
                f(*k, false, d, after);
                *k += 1;
            }
        }
    }
}

fn visit_top(
    items: &mut [TopItem],
    k: &mut usize,
    f: &mut impl FnMut(usize, bool, String, &mut SyncOp),
) {
    for it in items.iter_mut() {
        match it {
            TopItem::SerialStmt(_) => {}
            TopItem::MasterLoop { body, .. } => visit_top(body, k, f),
            TopItem::Region(r) => {
                visit_items(&mut r.items, k, f);
                let d = format!("region.end: {}", op_name(&r.end));
                f(*k, true, d, &mut r.end);
                *k += 1;
            }
        }
    }
}

/// Every non-`None` synchronization slot of a plan, in walk order.
pub fn sites(plan: &SpmdProgram) -> Vec<MutationSite> {
    let mut plan = plan.clone();
    let mut out = Vec::new();
    let mut k = 0usize;
    visit_top(
        &mut plan.items,
        &mut k,
        &mut |index, region_end, desc, op| {
            if op.is_some() {
                out.push(MutationSite {
                    index,
                    region_end,
                    desc,
                });
            }
        },
    );
    out
}

/// A copy of the plan with the sync slot at walk position `index`
/// erased to [`SyncOp::None`].
pub fn delete(plan: &SpmdProgram, index: usize) -> SpmdProgram {
    let mut mutant = plan.clone();
    let mut k = 0usize;
    visit_top(&mut mutant.items, &mut k, &mut |i, _, _, op| {
        if i == index {
            *op = SyncOp::None;
        }
    });
    mutant
}

/// How one mutant fared against the validator and the oracle.
#[derive(Debug)]
pub struct TeethSite {
    /// The deleted slot.
    pub site: MutationSite,
    /// Racing pairs the validator found in the mutant (0 = missed).
    pub racing_pairs: usize,
    /// Worst divergence the differential oracle observed, if any.
    pub diverged: Option<f64>,
}

impl TeethSite {
    /// True when the validator flagged the mutant.
    pub fn flagged(&self) -> bool {
        self.racing_pairs > 0
    }
}

/// Outcome of mutating every sync slot of one schedule.
#[derive(Debug)]
pub struct TeethReport {
    /// Per-mutant results, in walk order.
    pub sites: Vec<TeethSite>,
    /// Racing pairs in the *unmutated* plan (must be 0 for a
    /// known-good schedule).
    pub clean_racing_pairs: usize,
}

impl TeethReport {
    /// Mutants the validator flagged.
    pub fn flagged(&self) -> usize {
        self.sites.iter().filter(|s| s.flagged()).count()
    }

    /// Validator soundness relative to observation: every mutant that
    /// diverged dynamically was also flagged statically.
    pub fn validator_covers_divergence(&self) -> bool {
        self.sites
            .iter()
            .all(|s| s.diverged.is_none() || s.flagged())
    }

    /// Every interior (non-region-end) deletion was flagged.
    pub fn all_interior_flagged(&self) -> bool {
        self.sites.iter().all(|s| s.site.region_end || s.flagged())
    }
}

/// Delete each sync op of `plan` in turn; validate and differentially
/// execute every mutant.
pub fn mutation_teeth(
    prog: &Program,
    bind: &Bindings,
    plan: &SpmdProgram,
    tol: f64,
) -> TeethReport {
    let orders = [
        ScheduleOrder::Reverse,
        ScheduleOrder::Random(11),
        ScheduleOrder::Random(0xBAD5EED),
    ];
    let clean = validate(prog, bind, plan);
    let mut out = TeethReport {
        sites: Vec::new(),
        clean_racing_pairs: clean.num_racing_pairs,
    };
    for site in sites(plan) {
        let mutant = delete(plan, site.index);
        let report = validate(prog, bind, &mutant);
        let diverged = plan_diverges(prog, bind, &mutant, &orders, tol);
        out.sites.push(TeethSite {
            site,
            racing_pairs: report.num_racing_pairs,
            diverged,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::build::*;
    use spmd_opt::optimize;

    #[test]
    fn sites_enumerate_and_delete_round_trips() {
        let mut pb = ProgramBuilder::new("s");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let _t = pb.begin_seq("t", con(0), con(3));
        let i = pb.begin_par("i", con(1), sym(n) - 2);
        pb.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 2);
        pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
        pb.end();
        pb.end();
        let prog = pb.finish();
        let bind = analysis::Bindings::new(4).set(n, 32);
        let plan = optimize(&prog, &bind);
        let ss = sites(&plan);
        assert!(!ss.is_empty());
        for s in &ss {
            let mutant = delete(&plan, s.index);
            assert_eq!(
                sites(&mutant).len(),
                ss.len() - 1,
                "deleting {} should remove exactly one site",
                s.desc
            );
        }
    }
}
