//! The optimized SPMD schedule produced by the optimizer.

use analysis::{DistSet, LoopPartition, ProducerSpec};
use ir::NodeId;

/// Synchronization placed at one point of the schedule.
#[derive(Clone, PartialEq, Debug, Default)]
pub enum SyncOp {
    /// No synchronization — the barrier was **eliminated**.
    #[default]
    None,
    /// A full team barrier.
    Barrier,
    /// Nearest-neighbor post/wait flags: every processor posts its flag,
    /// then waits for the producing neighbor(s).
    Neighbor {
        /// Data flows toward higher processor ids (wait on `p-1`).
        fwd: bool,
        /// Data flows toward lower processor ids (wait on `p+1`).
        bwd: bool,
    },
    /// Producer-consumer counter: the unique producer increments, every
    /// other processor waits for the visit count.
    Counter {
        /// Counter index in the region's counter bank.
        id: usize,
        /// Who increments.
        producer: ProducerSpec,
    },
    /// Point-to-point pairwise counters derived from dependence distance
    /// vectors: every processor posts its own per-pid cell, then waits
    /// only on the processors its wait targets name — `p - d` for each
    /// distance `d` in `dists`, plus each evaluable producer in
    /// `producers`. Loop-carried placements pipeline into a wavefront
    /// (processor `p` runs iteration `i` while `p - d` runs `i + 1`).
    PairCounter {
        /// Processor distances to wait on (consumer `q` waits on `q - d`).
        dists: DistSet,
        /// Additional identifiable-producer wait targets.
        producers: Vec<ProducerSpec>,
    },
}

impl SyncOp {
    /// True for [`SyncOp::Barrier`].
    pub fn is_barrier(&self) -> bool {
        matches!(self, SyncOp::Barrier)
    }

    /// True for anything other than [`SyncOp::None`].
    pub fn is_some(&self) -> bool {
        !matches!(self, SyncOp::None)
    }
}

/// How the work of one phase is divided among processors.
#[derive(Clone, PartialEq, Debug)]
pub enum PhaseKind {
    /// A parallel loop whose iterations are distributed by `partition`.
    Par {
        /// The computation partition of the loop.
        partition: LoopPartition,
    },
    /// A serial statement guarded to execute on the master only.
    Master,
    /// A privatizable (replicated) computation executed by every
    /// processor.
    Replicated,
}

/// One phase of an SPMD region: a parallel loop nest or a serial
/// statement, followed by the synchronization guarding the next phase.
#[derive(Clone, Debug)]
pub struct Phase {
    /// The IR node (parallel loop, assignment, or guard subtree).
    pub node: NodeId,
    /// Work division.
    pub kind: PhaseKind,
    /// Synchronization *after* this phase (before the next item).
    pub after: SyncOp,
}

/// An item inside an SPMD region.
#[derive(Clone, Debug)]
pub enum RItem {
    /// A phase.
    Phase(Phase),
    /// A sequential loop executed (redundantly) by every processor, whose
    /// body items run per iteration.
    Seq {
        /// The sequential loop node.
        node: NodeId,
        /// Body items, executed each iteration.
        body: Vec<RItem>,
        /// Per-iteration synchronization at the bottom of the loop
        /// (covers loop-carried communication).
        bottom: SyncOp,
        /// Synchronization after the loop completes.
        after: SyncOp,
    },
}

impl RItem {
    /// The sync placed after this item (before the next).
    pub fn after(&self) -> &SyncOp {
        match self {
            RItem::Phase(p) => &p.after,
            RItem::Seq { after, .. } => after,
        }
    }

    /// Set the sync placed after this item.
    pub fn set_after(&mut self, s: SyncOp) {
        match self {
            RItem::Phase(p) => p.after = s,
            RItem::Seq { after, .. } => *after = s,
        }
    }
}

/// An SPMD region: dispatched to the worker team once, then executed by
/// all processors with the placed synchronization.
#[derive(Clone, Debug)]
pub struct Region {
    /// Items in program order.
    pub items: Vec<RItem>,
    /// Synchronization at region exit (the master resumes after it).
    pub end: SyncOp,
    /// Number of counters this region uses.
    pub num_counters: usize,
}

/// A top-level schedule item.
#[derive(Clone, Debug)]
pub enum TopItem {
    /// A statement subtree executed by the master thread alone (fork-join
    /// serial section).
    SerialStmt(NodeId),
    /// A sequential loop driven by the master whose body re-dispatches
    /// regions every iteration (the fork-join baseline shape).
    MasterLoop {
        /// The loop node.
        node: NodeId,
        /// Items executed per iteration.
        body: Vec<TopItem>,
    },
    /// An SPMD region.
    Region(Region),
}

/// A complete schedule for a program under a fixed processor count.
#[derive(Clone, Debug)]
pub struct SpmdProgram {
    /// Program name (copied for reports).
    pub name: String,
    /// Top-level items in program order.
    pub items: Vec<TopItem>,
}

/// Static synchronization statistics of a schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StaticStats {
    /// SPMD regions (dispatch points).
    pub regions: usize,
    /// Phases (parallel loops + guarded/replicated statements).
    pub phases: usize,
    /// Static barrier sync points.
    pub barriers: usize,
    /// Static neighbor sync points.
    pub neighbor_syncs: usize,
    /// Static counter sync points.
    pub counter_syncs: usize,
    /// Static pairwise (distance-vector) sync points.
    pub pair_syncs: usize,
    /// Sync points eliminated outright.
    pub eliminated: usize,
}

/// Demote the sync op at canonical site `site` to a full
/// [`SyncOp::Barrier`], returning the op it displaced (`None` when the
/// plan has no such site). The walk mirrors
/// [`sync_sites`](crate::sites::sync_sites) exactly — items in order, a
/// `Seq`'s body slots before its `bottom` and `after`, a region's items
/// before its `end` — so the id a runtime failure report attributes a
/// fault to addresses the same slot here.
///
/// Demotion is the recovery layer's conservative fallback: a full
/// barrier orders every processor at the slot, which over-synchronizes
/// relative to any counter/neighbor placement the optimizer chose (and
/// is exactly the fork-join baseline's behaviour at that point), so the
/// demoted plan is correct whenever the original analysis was.
pub fn demote_site(plan: &mut SpmdProgram, site: usize) -> Option<SyncOp> {
    set_site_op(plan, site, SyncOp::Barrier)
}

/// Replace the sync op at canonical site `site` with `op`, returning
/// the op it displaced (`None` when the plan has no such site). The
/// walk is the same canonical numbering as [`demote_site`] — which is
/// this function specialized to [`SyncOp::Barrier`]. The recovery
/// layer's probation uses the general form to *restore* a previously
/// demoted site's optimized op once the site has proven itself clean.
pub fn set_site_op(plan: &mut SpmdProgram, site: usize, op: SyncOp) -> Option<SyncOp> {
    fn set_items(
        items: &mut [RItem],
        next: &mut usize,
        site: usize,
        op: &SyncOp,
    ) -> Option<SyncOp> {
        for it in items {
            match it {
                RItem::Phase(p) => {
                    if *next == site {
                        return Some(std::mem::replace(&mut p.after, op.clone()));
                    }
                    *next += 1;
                }
                RItem::Seq {
                    body,
                    bottom,
                    after,
                    ..
                } => {
                    if let Some(old) = set_items(body, next, site, op) {
                        return Some(old);
                    }
                    if *next == site {
                        return Some(std::mem::replace(bottom, op.clone()));
                    }
                    *next += 1;
                    if *next == site {
                        return Some(std::mem::replace(after, op.clone()));
                    }
                    *next += 1;
                }
            }
        }
        None
    }
    fn set_top(
        items: &mut [TopItem],
        next: &mut usize,
        site: usize,
        op: &SyncOp,
    ) -> Option<SyncOp> {
        for it in items {
            match it {
                TopItem::SerialStmt(_) => {}
                TopItem::MasterLoop { body, .. } => {
                    if let Some(old) = set_top(body, next, site, op) {
                        return Some(old);
                    }
                }
                TopItem::Region(r) => {
                    if let Some(old) = set_items(&mut r.items, next, site, op) {
                        return Some(old);
                    }
                    if *next == site {
                        return Some(std::mem::replace(&mut r.end, op.clone()));
                    }
                    *next += 1;
                }
            }
        }
        None
    }
    let mut next = 0usize;
    set_top(&mut plan.items, &mut next, site, &op)
}

/// Demote every listed canonical site to a full barrier, returning the
/// displaced ops in input order (`None` entries for sites the plan does
/// not have). This is how the profiler builds its observed-vs-predicted
/// *baseline*: start from the optimized plan and put a barrier back at
/// exactly the decision-log sites, so both runs share one canonical site
/// walk and every per-site measurement joins cleanly.
pub fn demote_sites(plan: &mut SpmdProgram, sites: &[usize]) -> Vec<Option<SyncOp>> {
    sites.iter().map(|&s| demote_site(plan, s)).collect()
}

impl SpmdProgram {
    /// Count the static synchronization points of the schedule.
    pub fn static_stats(&self) -> StaticStats {
        let mut st = StaticStats::default();
        fn count_sync(s: &SyncOp, st: &mut StaticStats) {
            match s {
                SyncOp::None => st.eliminated += 1,
                SyncOp::Barrier => st.barriers += 1,
                SyncOp::Neighbor { .. } => st.neighbor_syncs += 1,
                SyncOp::Counter { .. } => st.counter_syncs += 1,
                SyncOp::PairCounter { .. } => st.pair_syncs += 1,
            }
        }
        fn walk_items(items: &[RItem], st: &mut StaticStats) {
            for (k, it) in items.iter().enumerate() {
                // The slot after the last item of a level is not a sync
                // point (the enclosing bottom/end sync follows directly),
                // so an untouched `None` there is not an elimination.
                let last = k + 1 == items.len();
                match it {
                    RItem::Phase(p) => {
                        st.phases += 1;
                        if !last {
                            count_sync(&p.after, st);
                        }
                    }
                    RItem::Seq {
                        body,
                        bottom,
                        after,
                        ..
                    } => {
                        walk_items(body, st);
                        count_sync(bottom, st);
                        if !last {
                            count_sync(after, st);
                        }
                    }
                }
            }
        }
        fn walk_top(items: &[TopItem], st: &mut StaticStats) {
            for it in items {
                match it {
                    TopItem::SerialStmt(_) => {}
                    TopItem::MasterLoop { body, .. } => walk_top(body, st),
                    TopItem::Region(r) => {
                        st.regions += 1;
                        walk_items(&r.items, st);
                        count_sync(&r.end, st);
                    }
                }
            }
        }
        walk_top(&self.items, &mut st);
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_stats_count_each_kind() {
        let prog = SpmdProgram {
            name: "t".into(),
            items: vec![TopItem::Region(Region {
                items: vec![
                    RItem::Phase(Phase {
                        node: NodeId(0),
                        kind: PhaseKind::Master,
                        after: SyncOp::Neighbor {
                            fwd: true,
                            bwd: false,
                        },
                    }),
                    RItem::Seq {
                        node: NodeId(1),
                        body: vec![RItem::Phase(Phase {
                            node: NodeId(2),
                            kind: PhaseKind::Replicated,
                            after: SyncOp::None,
                        })],
                        bottom: SyncOp::Barrier,
                        after: SyncOp::None,
                    },
                ],
                end: SyncOp::Barrier,
                num_counters: 0,
            })],
        };
        let st = prog.static_stats();
        assert_eq!(st.regions, 1);
        assert_eq!(st.phases, 2);
        // bottom barrier + end barrier; the inner phase and the seq item
        // are last at their levels, so their `after` slots do not count.
        assert_eq!(st.barriers, 2);
        assert_eq!(st.neighbor_syncs, 1);
        assert_eq!(st.eliminated, 0);
    }

    fn nested_plan() -> SpmdProgram {
        // Slot walk: 0 = phase-after (Neighbor), 1 = inner phase-after
        // (None), 2 = seq bottom (Counter), 3 = seq after (None),
        // 4 = region end (Barrier).
        SpmdProgram {
            name: "t".into(),
            items: vec![TopItem::Region(Region {
                items: vec![
                    RItem::Phase(Phase {
                        node: NodeId(0),
                        kind: PhaseKind::Master,
                        after: SyncOp::Neighbor {
                            fwd: true,
                            bwd: false,
                        },
                    }),
                    RItem::Seq {
                        node: NodeId(1),
                        body: vec![RItem::Phase(Phase {
                            node: NodeId(2),
                            kind: PhaseKind::Replicated,
                            after: SyncOp::None,
                        })],
                        bottom: SyncOp::Counter {
                            id: 0,
                            producer: analysis::ProducerSpec::Master,
                        },
                        after: SyncOp::None,
                    },
                ],
                end: SyncOp::Barrier,
                num_counters: 1,
            })],
        }
    }

    #[test]
    fn demote_site_hits_every_slot_in_walk_order() {
        // Each id addresses the slot the canonical walk assigns it.
        let mut p = nested_plan();
        assert_eq!(
            demote_site(&mut p, 0),
            Some(SyncOp::Neighbor {
                fwd: true,
                bwd: false
            })
        );
        let mut p = nested_plan();
        assert_eq!(demote_site(&mut p, 1), Some(SyncOp::None));
        let mut p = nested_plan();
        assert_eq!(
            demote_site(&mut p, 2),
            Some(SyncOp::Counter {
                id: 0,
                producer: analysis::ProducerSpec::Master,
            })
        );
        let mut p = nested_plan();
        assert_eq!(demote_site(&mut p, 3), Some(SyncOp::None));
        let mut p = nested_plan();
        assert_eq!(demote_site(&mut p, 4), Some(SyncOp::Barrier));
        // Past the walk: no slot, plan untouched.
        let mut p = nested_plan();
        assert_eq!(demote_site(&mut p, 5), None);
    }

    #[test]
    fn demoted_slot_becomes_a_barrier() {
        let mut p = nested_plan();
        demote_site(&mut p, 2);
        let st = p.static_stats();
        // The counter bottom turned into a barrier (joining the region
        // end); everything else is untouched.
        assert_eq!(st.counter_syncs, 0);
        assert_eq!(st.barriers, 2);
        assert_eq!(st.neighbor_syncs, 1);
    }

    #[test]
    fn set_site_op_round_trips_a_demotion() {
        // Demote the neighbor slot, then restore the displaced op with
        // `set_site_op` — the probation path in the recovery supervisor.
        let mut p = nested_plan();
        let displaced = demote_site(&mut p, 0).unwrap();
        assert_eq!(
            displaced,
            SyncOp::Neighbor {
                fwd: true,
                bwd: false
            }
        );
        assert_eq!(
            set_site_op(&mut p, 0, displaced),
            Some(SyncOp::Barrier),
            "restore displaces the demotion barrier"
        );
        assert_eq!(p.static_stats().neighbor_syncs, 1);
        // Counter slots round-trip too (producer spec preserved).
        let mut p = nested_plan();
        let displaced = demote_site(&mut p, 2).unwrap();
        set_site_op(&mut p, 2, displaced);
        let st = p.static_stats();
        assert_eq!(st.counter_syncs, 1);
        assert_eq!(st.barriers, 1);
        // Past the walk: no slot, nothing changes.
        let mut p = nested_plan();
        assert_eq!(set_site_op(&mut p, 9, SyncOp::Barrier), None);
    }

    #[test]
    fn demote_sites_restores_barriers_at_each_listed_slot() {
        let mut p = nested_plan();
        let displaced = demote_sites(&mut p, &[0, 2, 9]);
        assert_eq!(displaced.len(), 3);
        assert_eq!(
            displaced[0],
            Some(SyncOp::Neighbor {
                fwd: true,
                bwd: false
            })
        );
        assert_eq!(
            displaced[1],
            Some(SyncOp::Counter {
                id: 0,
                producer: analysis::ProducerSpec::Master,
            })
        );
        assert_eq!(displaced[2], None, "site past the walk is reported back");
        let st = p.static_stats();
        assert_eq!(st.neighbor_syncs, 0);
        assert_eq!(st.counter_syncs, 0);
        // neighbor slot + counter bottom + untouched region end.
        assert_eq!(st.barriers, 3);
    }
}
