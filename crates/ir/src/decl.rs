//! Declarations: symbolic constants, scalars, arrays, and data
//! decompositions.

use crate::expr::Affine;
use std::fmt;

/// Handle for a symbolic program constant (problem size, etc.).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SymId(pub u32);

/// Handle for a scalar variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ScalarId(pub u32);

/// Handle for an array.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ArrayId(pub u32);

/// A symbolic constant declaration. Its value is provided when the
/// program is analyzed or executed.
#[derive(Clone, Debug)]
pub struct SymDecl {
    /// Display name.
    pub name: String,
}

/// A scalar variable declaration.
#[derive(Clone, Debug)]
pub struct ScalarDecl {
    /// Display name.
    pub name: String,
    /// Initial value.
    pub init: f64,
    /// True if the parallelizer proved the scalar privatizable: each
    /// iteration (or processor) can own a private copy, so assignments to
    /// it can be *replicated* inside an SPMD region (paper §2.3).
    pub privatizable: bool,
}

/// How one array dimension is distributed across the 1-D processor grid.
///
/// The paper's decomposition pass (Anderson-Lam) produces block/cyclic
/// distributions; at most one dimension of an array is distributed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DimDist {
    /// Contiguous blocks of `ceil(extent / P)` elements per processor.
    Block,
    /// Element `i` lives on processor `i mod P`.
    Cyclic,
    /// Element `i` lives on processor `(i / b) mod P` (blocks of `b`
    /// dealt round-robin — the load-balance/locality compromise).
    BlockCyclic(i64),
    /// The dimension is not distributed (every processor sees all of it).
    Replicated,
}

/// The distribution of a whole array (one entry per dimension).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Distribution {
    /// Per-dimension distribution; empty means fully replicated.
    pub dims: Vec<DimDist>,
}

impl Distribution {
    /// Fully replicated array.
    pub fn replicated(rank: usize) -> Self {
        Distribution {
            dims: vec![DimDist::Replicated; rank],
        }
    }

    /// The index of the distributed dimension, if any.
    pub fn distributed_dim(&self) -> Option<(usize, DimDist)> {
        self.dims
            .iter()
            .enumerate()
            .find(|(_, d)| !matches!(d, DimDist::Replicated))
            .map(|(k, d)| (k, *d))
    }

    /// True if no dimension is distributed.
    pub fn is_replicated(&self) -> bool {
        self.distributed_dim().is_none()
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (k, d) in self.dims.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            match d {
                DimDist::Block => write!(f, "BLOCK")?,
                DimDist::Cyclic => write!(f, "CYCLIC")?,
                DimDist::BlockCyclic(b) => write!(f, "CYCLIC({b})")?,
                DimDist::Replicated => write!(f, "*")?,
            }
        }
        write!(f, ")")
    }
}

/// An array declaration.
#[derive(Clone, Debug)]
pub struct ArrayDecl {
    /// Display name.
    pub name: String,
    /// Extent of each dimension (affine in the symbolic constants;
    /// dimension `k` is indexed `0 .. extent_k`).
    pub extents: Vec<Affine>,
    /// Data decomposition.
    pub dist: Distribution,
    /// True if the (assumed) privatization analysis (Tu & Padua) proved
    /// every read is preceded by a write in the same region instance:
    /// each processor works on its own copy, accesses never communicate,
    /// and defining loops may be *replicated* (paper §2.3).
    pub privatizable: bool,
}

impl ArrayDecl {
    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.extents.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_queries() {
        let d = Distribution {
            dims: vec![DimDist::Replicated, DimDist::Block],
        };
        assert_eq!(d.distributed_dim(), Some((1, DimDist::Block)));
        assert!(!d.is_replicated());
        assert!(Distribution::replicated(3).is_replicated());
        assert_eq!(format!("{d}"), "(*, BLOCK)");
    }
}
