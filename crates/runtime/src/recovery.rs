//! Recovery policy for retried SPMD regions: retry budget, exponential
//! backoff, and the per-run quarantine ledger.
//!
//! The fault layer ([`fault`](crate::fault)) *detects* a failed region;
//! this module decides what to do next. The executor's recovery loop
//! (in the `interp` crate) consults a [`RetryPolicy`] for how many
//! attempts it may spend and how long to back off between them, and a
//! [`Quarantine`] ledger for the escalation ladder at each faulting
//! canonical sync site:
//!
//! 1. **first fault** at a site — the optimized sync op there is
//!    *demoted* to a full barrier (`spmd_opt::demote_site`), the
//!    conservative fork-join placement the paper's optimizer started
//!    from;
//! 2. **second fault** at the same site — demotion did not help, so the
//!    site is *quarantined*: the site rides out the rest of the run
//!    with its barrier and any injected dropped posts at it are masked
//!    (a deterministic injector would otherwise re-kill every retry);
//! 3. **third fault** at the same site — the fault is not local to the
//!    site (a dropped barrier arrival *aliases*: the shared barrier
//!    back-fills the skipped arrival with the dropper's next one, and
//!    the wedge surfaces at its last barrier site instead), so the
//!    supervisor *isolates* the run: every injected dropped post is
//!    masked, everywhere;
//! 4. faults with no attributable site (worker panics, dispatch
//!    timeouts) are plainly retried against the rolled-back memory.
//!
//! The ladder bounds convergence: a persistent single dropped post
//! implicates at most three distinct sites (the true site, plus the
//! alias target before and after the true site's demotion changes its
//! primitive), and isolation fires as soon as any one of them records
//! a third fault — at worst after 2+2+3 = 7 failed attempts — so the
//! run completes by attempt eight, inside the default budget of nine.
//!
//! Backoff is deterministic (`base * 2^(attempt-1)`, capped), so a
//! recovery report can print the exact timeline without wall-clock
//! noise.

use std::collections::BTreeMap;
use std::time::Duration;

/// Bounds on the recovery loop.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total executions allowed, counting the first (a budget of 1
    /// means no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff interval.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            // Enough for the worst three-site ladder interleaving of a
            // single persistent drop (see module docs: 7 failed
            // attempts, clean on the 8th) with one attempt spare.
            max_attempts: 9,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// The planned backoff before retry number `retry` (1-based: the
    /// sleep after the first failed attempt is `backoff_before(1)`).
    /// Deterministic exponential: `base * 2^(retry-1)`, capped.
    pub fn backoff_before(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        let shift = (retry - 1).min(16);
        let d = self
            .backoff_base
            .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX));
        d.min(self.backoff_cap)
    }
}

/// What the escalation ladder prescribes for a newly recorded fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultDisposition {
    /// First fault at the site: demote its sync op to a full barrier.
    Demote,
    /// Second fault at the site: quarantine it (mask injected drops
    /// there for the rest of the run).
    Quarantine,
    /// Third fault at the site: quarantine was not enough — the fault
    /// originates elsewhere (barrier aliasing) — so mask every injected
    /// drop for the rest of the run.
    Isolate,
    /// The ladder is exhausted at this site (or the fault has no
    /// site): plain retry.
    Retry,
}

/// Per-run ledger of faulting canonical sync sites: how often each
/// faulted and which are quarantined.
#[derive(Clone, Debug, Default)]
pub struct Quarantine {
    faults: BTreeMap<usize, u32>,
    quarantined: Vec<usize>,
}

impl Quarantine {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one fault attributed to `site` and return the ladder's
    /// disposition for it.
    pub fn record_fault(&mut self, site: usize) -> FaultDisposition {
        let n = self.faults.entry(site).or_insert(0);
        *n += 1;
        match *n {
            1 => FaultDisposition::Demote,
            2 => {
                self.quarantined.push(site);
                FaultDisposition::Quarantine
            }
            3 => FaultDisposition::Isolate,
            _ => FaultDisposition::Retry,
        }
    }

    /// Sites placed under quarantine, in the order they escalated.
    pub fn quarantined(&self) -> &[usize] {
        &self.quarantined
    }

    /// True when `site` is quarantined.
    pub fn is_quarantined(&self, site: usize) -> bool {
        self.quarantined.contains(&site)
    }

    /// Recorded fault count per site (site → faults), sorted by site.
    pub fn fault_counts(&self) -> Vec<(usize, u32)> {
        self.faults.iter().map(|(&s, &n)| (s, n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(40),
        };
        assert_eq!(p.backoff_before(0), Duration::ZERO);
        assert_eq!(p.backoff_before(1), Duration::from_millis(5));
        assert_eq!(p.backoff_before(2), Duration::from_millis(10));
        assert_eq!(p.backoff_before(3), Duration::from_millis(20));
        assert_eq!(p.backoff_before(4), Duration::from_millis(40));
        // Capped from here on.
        assert_eq!(p.backoff_before(9), Duration::from_millis(40));
        assert_eq!(p.backoff_before(30), Duration::from_millis(40));
    }

    #[test]
    fn ladder_escalates_demote_quarantine_isolate_then_retry() {
        let mut q = Quarantine::new();
        assert_eq!(q.record_fault(3), FaultDisposition::Demote);
        assert!(!q.is_quarantined(3));
        assert_eq!(q.record_fault(3), FaultDisposition::Quarantine);
        assert!(q.is_quarantined(3));
        assert_eq!(q.record_fault(3), FaultDisposition::Isolate);
        assert_eq!(q.record_fault(3), FaultDisposition::Retry);
        // Independent ladders per site.
        assert_eq!(q.record_fault(7), FaultDisposition::Demote);
        assert_eq!(q.quarantined(), &[3]);
        assert_eq!(q.fault_counts(), vec![(3, 4), (7, 1)]);
    }
}
