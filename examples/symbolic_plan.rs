//! Optimize with *unbound* problem sizes: the symbolic-inequality
//! machinery classifies block-distributed communication without knowing
//! `n` at all, so one compile serves every problem size.
//!
//! ```sh
//! cargo run --example symbolic_plan
//! ```

use barrier_elim::analysis::Bindings;
use barrier_elim::spmd_opt::{optimize_logged, render_plan};
use barrier_elim::suite::{self, Scale};

fn main() {
    let def = suite::by_name("shallow").unwrap();
    let built = (def.build)(Scale::Test);

    // No `--set n=...`: nothing is bound except the processor count.
    let symbolic = Bindings::new(8);
    let (plan, log) = optimize_logged(&built.prog, &symbolic);
    println!(
        "shallow optimized with n, tmax UNBOUND (P = 8):\n\n{}",
        render_plan(&built.prog, &plan)
    );
    println!("decisions:");
    for d in &log {
        println!(
            "  s{:<3} {:<28} {:<14} {}",
            d.site,
            d.label,
            d.placed_str(),
            d.reason
        );
    }

    // The concrete plan has the same shape.
    let concrete = built.bindings(8);
    let st_s = plan.static_stats();
    let st_c = barrier_elim::spmd_opt::optimize(&built.prog, &concrete).static_stats();
    assert_eq!(st_s, st_c);
    println!(
        "\nstatic stats match the concrete-size plan exactly: {} barrier(s), \
         {} neighbor sync(s), {} eliminated",
        st_s.barriers, st_s.neighbor_syncs, st_s.eliminated
    );
}
