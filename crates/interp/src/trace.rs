//! Memory-access tracing for the schedule race validator.
//!
//! A [`TraceBuffer`] attached to a [`Mem`](crate::Mem) records every
//! *shared* memory access the evaluator performs — reads and writes of
//! shared array elements and non-privatizable scalars, plus atomic
//! reduction flushes. Privatizable storage is deliberately excluded:
//! private arrays have per-processor copies and privatizable scalars
//! are written replicated (every processor computes the same value
//! before reading it), so neither can carry cross-processor
//! communication.
//!
//! Because every subscript and guard in the IR is affine in loop
//! indices and symbolic constants — never data-dependent — the set of
//! cells a work event touches does not depend on the *values* in
//! memory. The validator exploits this: it executes each work event
//! against a scratch memory in any convenient order and the recorded
//! access sets are exactly those of a real execution.

use ir::{ArrayId, ScalarId};
use std::sync::Mutex;

/// How a cell was touched.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AccessKind {
    /// Plain load.
    Read,
    /// Plain store (or the store half of a non-atomic read-modify-write).
    Write,
    /// Atomic commutative reduction update (compatible with other
    /// reductions on the same cell, conflicting with everything else).
    Reduce,
}

/// A traced memory cell.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Target {
    /// Shared array element, identified by its row-major flat offset.
    Elem(ArrayId, u64),
    /// Shared (non-privatizable) scalar.
    Scalar(ScalarId),
}

/// One recorded access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Access {
    /// The processor that performed the access.
    pub pid: usize,
    /// The cell.
    pub target: Target,
    /// Read, write, or atomic reduction.
    pub kind: AccessKind,
}

/// Accumulates accesses; attach with [`Mem::with_tracer`](crate::Mem::with_tracer)
/// and drain between work events to get per-event access sets.
#[derive(Default)]
pub struct TraceBuffer {
    entries: Mutex<Vec<Access>>,
}

impl TraceBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one access.
    #[inline]
    pub fn record(&self, pid: usize, target: Target, kind: AccessKind) {
        self.entries
            .lock()
            .unwrap()
            .push(Access { pid, target, kind });
    }

    /// Take everything recorded since the last drain.
    pub fn drain(&self) -> Vec<Access> {
        std::mem::take(&mut *self.entries.lock().unwrap())
    }
}
