! Array privatization: the gather loop writes only the private work
! vector, so it is replicated and the gather -> update barrier vanishes.
program private_gather
sym n
array A(n, n) block
array D(n) private

doall i0 = 0, n-1
  do j0 = 0, n-1
    A(i0, j0) = sin(3 * i0 + j0)
  end
end

do k = 0, n-2
  doall j1 = 0, n-1
    D(j1) = A(k, j1) * 0.5
  end
  doall i2 = 0, n-1
    do j2 = 0, n-1
      if i2 - k >= 1 then
        A(i2, j2) = A(i2, j2) * 0.9 + D(i2) * D(j2) * 0.01
      end
    end
  end
end
