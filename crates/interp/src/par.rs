//! Real-thread execution of a schedule on the `runtime` worker team.

use crate::events::{exec_work, producer_pid, unroll, DynCounts, Event};
use crate::mem::Mem;
use analysis::Bindings;
use ir::Program;
use obs::{Span, SpanCat};
use runtime::telemetry::{SiteSnapshot, SiteTelemetry};
use runtime::{CentralBarrier, Counters, NeighborFlags, SyncStats, Team, TreeBarrier};
use spmd_opt::{SpmdProgram, SyncOp};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which barrier implementation the executor uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BarrierKind {
    /// Sense-reversing central barrier (single hot cache line).
    #[default]
    Central,
    /// Dissemination tree barrier (log-depth, contention-free).
    Tree,
}

enum AnyBarrier {
    Central(CentralBarrier),
    Tree(TreeBarrier),
}

/// Per-thread barrier state.
#[derive(Default)]
struct BarrierLocal {
    sense: bool,
    epoch: usize,
}

impl AnyBarrier {
    fn wait(&self, pid: usize, local: &mut BarrierLocal) {
        match self {
            AnyBarrier::Central(b) => b.wait(&mut local.sense),
            AnyBarrier::Tree(b) => b.wait(pid, &mut local.epoch),
        }
    }
}

/// Result of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelOutcome {
    /// Instrumented dynamic synchronization (from the runtime
    /// primitives).
    pub stats: runtime::stats::StatsSnapshot,
    /// Schedule-derived dynamic counts (identical to what `run_virtual`
    /// reports for the same plan).
    pub counts: DynCounts,
    /// Wall-clock time of the traversal (thread startup excluded — the
    /// team is persistent, matching the paper's measurement protocol).
    pub elapsed: Duration,
    /// Per-sync-site wait telemetry (empty unless requested via
    /// [`ObserveOptions::telemetry`]).
    pub sites: Vec<SiteSnapshot>,
    /// Per-processor timeline spans (empty unless requested via
    /// [`ObserveOptions::trace`]).
    pub spans: Vec<Span>,
}

/// What the real-thread executor records beyond aggregate stats.
#[derive(Clone, Copy, Debug, Default)]
pub struct ObserveOptions {
    /// Barrier implementation.
    pub barrier: BarrierKind,
    /// Attribute every sync wait to its canonical site (per-processor
    /// histograms in [`ParallelOutcome::sites`]).
    pub telemetry: bool,
    /// Capture per-processor timeline spans (work, dispatch, sync
    /// waits) in [`ParallelOutcome::spans`].
    pub trace: bool,
}

fn max_counter_id(events: &[Event]) -> usize {
    let mut n = 0;
    for ev in events {
        if let Event::Sync {
            op: SyncOp::Counter { id, .. },
            ..
        } = ev
        {
            n = n.max(*id + 1);
        }
    }
    n
}

/// Execute the schedule on `team` with the default (central) barrier.
pub fn run_parallel(
    prog: &Arc<Program>,
    bind: &Arc<Bindings>,
    plan: &SpmdProgram,
    mem: &Arc<Mem>,
    team: &Team,
) -> ParallelOutcome {
    run_parallel_with(prog, bind, plan, mem, team, BarrierKind::Central)
}

/// Execute the schedule on `team` (whose size must match
/// `bind.nprocs`) with an explicit barrier implementation.
/// Arrays/scalars are read and written in `mem`.
pub fn run_parallel_with(
    prog: &Arc<Program>,
    bind: &Arc<Bindings>,
    plan: &SpmdProgram,
    mem: &Arc<Mem>,
    team: &Team,
    barrier_kind: BarrierKind,
) -> ParallelOutcome {
    run_parallel_observed(
        prog,
        bind,
        plan,
        mem,
        team,
        &ObserveOptions {
            barrier: barrier_kind,
            ..ObserveOptions::default()
        },
    )
}

/// Per-thread span buffer: spans are pushed locally and drained once
/// after the run (one mutex lock per processor per recording, but the
/// mutex is uncontended — each processor owns its own slot).
struct SpanBuffers(Vec<Mutex<Vec<Span>>>);

impl SpanBuffers {
    fn new(nprocs: usize) -> Self {
        SpanBuffers((0..nprocs).map(|_| Mutex::new(Vec::new())).collect())
    }

    fn push(&self, pid: usize, span: Span) {
        self.0[pid].lock().unwrap().push(span);
    }

    fn drain(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for buf in &self.0 {
            out.append(&mut buf.lock().unwrap());
        }
        out
    }
}

pub(crate) fn span_name(prog: &Program, ev: &Event) -> String {
    match ev {
        Event::Work { node, .. } | Event::SerialWork { node, .. } => {
            spmd_opt::node_label(prog, *node)
        }
        Event::Dispatch => "dispatch".to_string(),
        Event::Sync { op, site, .. } => match op {
            SyncOp::None => format!("nop @s{site}"),
            SyncOp::Barrier => format!("barrier wait @s{site}"),
            SyncOp::Neighbor { .. } => format!("neighbor wait @s{site}"),
            SyncOp::Counter { id, .. } => format!("counter#{id} wait @s{site}"),
        },
    }
}

/// As [`run_parallel_with`], optionally recording per-site telemetry
/// and per-processor timeline spans.
pub fn run_parallel_observed(
    prog: &Arc<Program>,
    bind: &Arc<Bindings>,
    plan: &SpmdProgram,
    mem: &Arc<Mem>,
    team: &Team,
    opts: &ObserveOptions,
) -> ParallelOutcome {
    let nprocs = team.nprocs();
    assert_eq!(
        nprocs as i64, bind.nprocs,
        "team size must match the bindings' processor count"
    );
    let events = Arc::new(unroll(prog, bind, plan));
    let counts = DynCounts::from_events(&events, nprocs);
    let stats = Arc::new(SyncStats::new());
    let telemetry = opts
        .telemetry
        .then(|| Arc::new(SiteTelemetry::new(obs::site_metas(prog, plan), nprocs)));
    let spans = opts.trace.then(|| Arc::new(SpanBuffers::new(nprocs)));
    let barrier = Arc::new(match opts.barrier {
        BarrierKind::Central => {
            AnyBarrier::Central(CentralBarrier::new(nprocs).with_stats(Arc::clone(&stats)))
        }
        BarrierKind::Tree => {
            AnyBarrier::Tree(TreeBarrier::new(nprocs).with_stats(Arc::clone(&stats)))
        }
    });
    let counters = Arc::new(Counters::new(max_counter_id(&events)).with_stats(Arc::clone(&stats)));
    let flags = Arc::new(NeighborFlags::new(nprocs).with_stats(Arc::clone(&stats)));
    let dispatch = Arc::new(Counters::new(1));

    let prog2 = Arc::clone(prog);
    let bind2 = Arc::clone(bind);
    let mem2 = Arc::clone(mem);
    let events2 = Arc::clone(&events);
    let barrier2 = Arc::clone(&barrier);
    let counters2 = Arc::clone(&counters);
    let flags2 = Arc::clone(&flags);
    let dispatch2 = Arc::clone(&dispatch);
    let telemetry2 = telemetry.clone();
    let spans2 = spans.clone();

    let t0 = Instant::now();
    team.run(move |pid| {
        let prog = &prog2;
        let bind = &bind2;
        let mem = &mem2;
        let mut blocal = BarrierLocal::default();
        let mut nposts = 0u64;
        let mut visits = vec![0u64; counters2.len()];
        let mut dispatch_visits = 0u64;
        let us_of = |t: Instant| t.duration_since(t0).as_micros() as u64;
        for ev in events2.iter() {
            let started = Instant::now();
            let cat = match ev {
                Event::Work { .. } | Event::SerialWork { .. } => SpanCat::Work,
                Event::Dispatch => SpanCat::Dispatch,
                Event::Sync { .. } => SpanCat::Sync,
            };
            match ev {
                Event::Work { .. } | Event::SerialWork { .. } => {
                    exec_work(prog, bind, mem, pid, bind.nprocs as usize, ev);
                }
                Event::Dispatch => {
                    dispatch_visits += 1;
                    if pid == 0 {
                        dispatch2.increment(0);
                    } else {
                        dispatch2.wait_ge(0, dispatch_visits);
                    }
                }
                Event::Sync { op, site, env } => {
                    match op {
                        SyncOp::None => {}
                        SyncOp::Barrier => barrier2.wait(pid, &mut blocal),
                        SyncOp::Neighbor { fwd, bwd } => {
                            flags2.post(pid);
                            nposts += 1;
                            if *fwd {
                                flags2.wait(pid as isize - 1, nposts);
                            }
                            if *bwd {
                                flags2.wait(pid as isize + 1, nposts);
                            }
                        }
                        SyncOp::Counter { id, producer } => {
                            visits[*id] += 1;
                            let prod = producer_pid(bind, prog, producer, env);
                            if pid as i64 == prod {
                                counters2.increment(*id);
                            } else {
                                counters2.wait_ge(*id, visits[*id]);
                            }
                        }
                    }
                    if let Some(t) = &telemetry2 {
                        if !matches!(op, SyncOp::None) {
                            let cell = t.cell(*site, pid);
                            cell.op();
                            cell.wait(started.elapsed().as_nanos() as u64);
                        }
                    }
                }
            }
            if let Some(s) = &spans2 {
                // Skip eliminated slots: they cost nothing and would
                // clutter the timeline.
                if !matches!(
                    ev,
                    Event::Sync {
                        op: SyncOp::None,
                        ..
                    }
                ) {
                    s.push(
                        pid,
                        Span {
                            pid,
                            name: span_name(prog, ev),
                            cat,
                            start_us: us_of(started),
                            end_us: us_of(Instant::now()),
                        },
                    );
                }
            }
        }
    });
    let elapsed = t0.elapsed();
    ParallelOutcome {
        stats: stats.snapshot(),
        counts,
        elapsed,
        sites: telemetry.map(|t| t.snapshot()).unwrap_or_default(),
        spans: spans.map(|s| s.drain()).unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::build::*;
    use spmd_opt::{fork_join, optimize};

    fn sweep(n_val: i64, steps: i64, nprocs: i64) -> (Arc<Program>, Arc<Bindings>) {
        let mut pb = ProgramBuilder::new("sweep");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let _t = pb.begin_seq("t", con(0), con(steps - 1));
        let i = pb.begin_par("i", con(1), sym(n) - 2);
        pb.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 2);
        pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
        pb.end();
        pb.end();
        let prog = Arc::new(pb.finish());
        let bind = Arc::new(Bindings::new(nprocs).set(n, n_val));
        (prog, bind)
    }

    #[test]
    fn parallel_matches_sequential_for_both_plans() {
        let (prog, bind) = sweep(64, 8, 4);
        let team = Team::new(4);
        let oracle = Mem::new(&prog, &bind);
        oracle.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
        crate::run_sequential(&prog, &bind, &oracle);

        for plan in [fork_join(&prog, &bind), optimize(&prog, &bind)] {
            let mem = Arc::new(Mem::new(&prog, &bind));
            mem.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
            let out = run_parallel(&prog, &bind, &plan, &mem, &team);
            assert_eq!(mem.max_abs_diff(&oracle), 0.0);
            assert_eq!(out.stats.barrier_episodes, out.counts.barriers);
        }
    }

    #[test]
    fn instrumentation_matches_schedule_counts() {
        let (prog, bind) = sweep(64, 10, 4);
        let team = Team::new(4);
        let plan = optimize(&prog, &bind);
        let mem = Arc::new(Mem::new(&prog, &bind));
        let out = run_parallel(&prog, &bind, &plan, &mem, &team);
        assert_eq!(out.stats.barrier_episodes, out.counts.barriers);
        assert_eq!(out.stats.neighbor_posts, out.counts.neighbor_posts);
        assert_eq!(out.stats.counter_increments, out.counts.counter_increments);
    }

    #[test]
    fn repeated_runs_are_deterministic_in_value() {
        let (prog, bind) = sweep(48, 6, 4);
        let team = Team::new(4);
        let plan = optimize(&prog, &bind);
        let mut checks = Vec::new();
        for _ in 0..3 {
            let mem = Arc::new(Mem::new(&prog, &bind));
            mem.fill(ir::ArrayId(0), |s| (s[0] * 3 % 11) as f64);
            run_parallel(&prog, &bind, &plan, &mem, &team);
            checks.push(mem.checksum());
        }
        assert!(checks.windows(2).all(|w| w[0] == w[1]));
    }
}
