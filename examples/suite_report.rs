//! One-screen summary over the whole benchmark suite: dynamic barriers
//! executed, fork-join vs optimized, with the replacement syncs.
//!
//! ```sh
//! cargo run --example suite_report
//! ```

use barrier_elim::interp::{run_virtual, Mem, ScheduleOrder};
use barrier_elim::spmd_opt::{fork_join, optimize};
use barrier_elim::suite::{self, Scale};

fn main() {
    let nprocs = 8;
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "program", "base barr", "opt barr", "counters", "neighbors", "removed"
    );
    println!("{}", "-".repeat(70));
    let mut reds = Vec::new();
    for def in suite::all() {
        let built = (def.build)(Scale::Test);
        let bind = built.bindings(nprocs);
        let run = |plan| {
            let mem = Mem::new(&built.prog, &bind);
            run_virtual(&built.prog, &bind, &plan, &mem, ScheduleOrder::RoundRobin).counts
        };
        let base = run(fork_join(&built.prog, &bind));
        let opt = run(optimize(&built.prog, &bind));
        let red = if base.barriers > 0 {
            100.0 * base.barriers.saturating_sub(opt.barriers) as f64 / base.barriers as f64
        } else {
            0.0
        };
        reds.push(red);
        println!(
            "{:<14} {:>12} {:>12} {:>10} {:>10} {:>7.1}%",
            def.name, base.barriers, opt.barriers, opt.counter_increments, opt.neighbor_posts, red
        );
    }
    println!(
        "\nmean barrier reduction: {:.1}%  (paper reports 29% on full applications,",
        reds.iter().sum::<f64>() / reds.len() as f64
    );
    println!("with orders-of-magnitude wins on pipelined and aligned programs — see");
    println!("EXPERIMENTS.md for the shape comparison)");
}
