//! Exact rational arithmetic on `i128`.
//!
//! Used wherever the inequality machinery needs to *evaluate* affine
//! expressions exactly (sample points, bound expressions with divisors,
//! verification oracles). The Fourier-Motzkin core itself works on integer
//! coefficients and never leaves `i128`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Greatest common divisor of two non-negative integers.
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple. Panics on overflow.
pub fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).checked_mul(b).expect("lcm overflow").abs()
}

/// Floor division that rounds toward negative infinity.
pub fn div_floor(a: i128, b: i128) -> i128 {
    debug_assert!(b != 0);
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division that rounds toward positive infinity.
pub fn div_ceil(a: i128, b: i128) -> i128 {
    debug_assert!(b != 0);
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// An exact rational number with `i128` numerator and denominator.
///
/// Invariants: denominator is strictly positive and `gcd(num, den) == 1`.
/// Arithmetic panics on overflow — in this crate overflow indicates a
/// pathological system, and a loud failure is preferred over silently
/// wrong feasibility answers.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational `num / den`. Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g != 0 { (num / g, den / g) } else { (0, 1) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// The integer `n` as a rational.
    pub const fn int(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Zero.
    pub const fn zero() -> Self {
        Rational { num: 0, den: 1 }
    }

    /// One.
    pub const fn one() -> Self {
        Rational { num: 1, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// True if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> i128 {
        div_floor(self.num, self.den)
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> i128 {
        div_ceil(self.num, self.den)
    }

    /// Sign: -1, 0, or 1.
    pub fn signum(&self) -> i128 {
        self.num.signum()
    }

    /// Approximate value as `f64` (for reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Multiplicative inverse. Panics if zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::int(n)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::int(n as i128)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        let num = self
            .num
            .checked_mul(rhs.den)
            .and_then(|a| rhs.num.checked_mul(self.den).and_then(|b| a.checked_add(b)))
            .expect("rational add overflow");
        let den = self
            .den
            .checked_mul(rhs.den)
            .expect("rational add overflow");
        Rational::new(num, den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .expect("rational mul overflow");
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .expect("rational mul overflow");
        Rational::new(num, den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d with b,d > 0  <=>  a*d vs c*b
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational cmp overflow");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational cmp overflow");
        lhs.cmp(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(-4, 6), 12);
    }

    #[test]
    fn div_floor_ceil() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(7, -2), -4);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_ceil(7, -2), -3);
        assert_eq!(div_floor(6, 3), 2);
        assert_eq!(div_ceil(6, 3), 2);
    }

    #[test]
    fn normalization() {
        let r = Rational::new(6, -4);
        assert_eq!(r.numer(), -3);
        assert_eq!(r.denom(), 2);
        assert_eq!(Rational::new(0, -7), Rational::zero());
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::int(5).floor(), 5);
        assert_eq!(Rational::int(5).ceil(), 5);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }
}
