//! Repeated out-of-place matrix transpose — the worst case. The access
//! `B(i,j) = A(j,i)` moves every element across the processor grid
//! (all-to-all), so communication analysis correctly finds general
//! communication and keeps every barrier: the optimizer's win here is
//! only the merged dispatch. This is the "no improvement" control row of
//! the evaluation (cf. FFT transpose phases).

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (10, 3),
        Scale::Small => (48, 10),
        Scale::Full => (384, 20),
    };
    let mut pb = ProgramBuilder::new("transpose");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let a = pb.array("A", &[sym(n), sym(n)], dist_block());
    let b = pb.array("B", &[sym(n), sym(n)], dist_block());

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(a, [idx(i0), idx(j0)]),
        ival(idx(i0) * 41 + idx(j0)).sin(),
    );
    pb.end();
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);
    let i1 = pb.begin_par("i1", con(0), sym(n) - 1);
    let j1 = pb.begin_seq("j1", con(0), sym(n) - 1);
    pb.assign(elem(b, [idx(i1), idx(j1)]), arr(a, [idx(j1), idx(i1)]));
    pb.end();
    pb.end();
    let i2 = pb.begin_par("i2", con(0), sym(n) - 1);
    let j2 = pb.begin_seq("j2", con(0), sym(n) - 1);
    pb.assign(
        elem(a, [idx(i2), idx(j2)]),
        arr(b, [idx(i2), idx(j2)]) * ex(0.999),
    );
    pb.end();
    pb.end();
    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_communication_keeps_barriers() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        // The transpose → scale barrier and the carried barrier must
        // survive (all-to-all movement).
        assert!(st.barriers >= 2, "{st:?}");
        assert_eq!(st.neighbor_syncs, 0, "{st:?}");
    }
}
