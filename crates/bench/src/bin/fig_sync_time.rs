//! Figure: synchronization wait-time breakdown per program — how much
//! time processors spend blocked in barriers versus the cheaper
//! replacements, on real threads.

use interp::{run_parallel, Mem};
use runtime::Team;
use spmd_bench::Table;
use std::sync::Arc;
use suite::Scale;

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    // At least 4 logical processors so the sync structure is exercised;
    // on smaller hosts the threads are oversubscribed (counts stay
    // exact, wait times are inflated). BE_MAX_P overrides.
    let p = std::env::var("BE_MAX_P")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| cores.clamp(4, 8));
    let team = Team::new(p);
    println!("Figure: per-kind synchronization wait time (P = {p}, Small scale)\n");
    let mut t = Table::new(&[
        "program",
        "plan",
        "barrier ms",
        "counter ms",
        "neighbor ms",
        "pairwise ms",
        "max wait us",
        "total sync ops",
    ]);
    for def in suite::all() {
        let built = (def.build)(Scale::Small);
        let prog = Arc::new(built.prog);
        let bind = Arc::new({
            let mut b = analysis::Bindings::new(p as i64);
            for &(s, v) in &built.values {
                b.bind(s, v);
            }
            b
        });
        for (label, plan) in [
            ("base", spmd_opt::fork_join(&prog, &bind)),
            ("opt", spmd_opt::optimize(&prog, &bind)),
        ] {
            let mem = Arc::new(Mem::new(&prog, &bind));
            let out = run_parallel(&prog, &bind, &plan, &mem, &team);
            t.row(vec![
                def.name.to_string(),
                label.to_string(),
                format!("{:.2}", out.stats.barrier_wait_ns as f64 / 1e6),
                format!("{:.2}", out.stats.counter_wait_ns as f64 / 1e6),
                format!("{:.2}", out.stats.neighbor_wait_ns as f64 / 1e6),
                format!("{:.2}", out.stats.pairwise_wait_ns as f64 / 1e6),
                format!(
                    "{:.1}",
                    out.stats
                        .barrier_max_wait_ns
                        .max(out.stats.counter_max_wait_ns)
                        .max(out.stats.neighbor_max_wait_ns)
                        .max(out.stats.pairwise_max_wait_ns) as f64
                        / 1e3
                ),
                out.stats.total_sync_ops().to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    println!("\nExpected shape: optimized runs shift wait time out of barriers.");
}
