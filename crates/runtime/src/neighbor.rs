//! Nearest-neighbor post/wait synchronization.
//!
//! For stencil communication the producer/consumer processors differ by
//! one. Each processor owns an epoch flag; after producing data for a
//! sync point it *posts* (bumps its flag), and before consuming it
//! *waits* for the relevant neighbor's flag to reach the current epoch.
//! Only adjacent processors touch each other's cache lines, so the cost
//! is independent of the team size — the property the paper exploits.

use crate::fault::{SyncError, WaitPoll, Watchdog};
use crate::spin::{SpinPolicy, SpinWait};
use crate::stats::{SyncKind, SyncStats};
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-processor epoch flags for neighbor synchronization.
pub struct NeighborFlags {
    flags: Vec<CachePadded<AtomicU64>>,
    policy: SpinPolicy,
    stats: Option<Arc<SyncStats>>,
}

impl NeighborFlags {
    /// Flags for `n` processors, all at epoch zero.
    pub fn new(n: usize) -> Self {
        NeighborFlags {
            flags: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            policy: SpinPolicy::auto(),
            stats: None,
        }
    }

    /// Attach instrumentation.
    pub fn with_stats(mut self, stats: Arc<SyncStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Override the spin → yield → park escalation policy.
    pub fn with_policy(mut self, policy: SpinPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.flags.len()
    }

    /// Post: processor `pid` announces it finished producing for the
    /// current sync point (release).
    pub fn post(&self, pid: usize) {
        self.flags[pid].fetch_add(1, Ordering::Release);
        if let Some(s) = &self.stats {
            s.neighbor_post();
        }
    }

    /// Wait until processor `other`'s flag reaches `epoch` (acquire).
    /// Out-of-range neighbors (off the ends of the processor line) are
    /// trivially satisfied.
    pub fn wait(&self, other: isize, epoch: u64) {
        if other < 0 || other as usize >= self.flags.len() {
            return;
        }
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        let mut sw = SpinWait::new(self.policy);
        while self.flags[other as usize].load(Ordering::Acquire) < epoch {
            sw.snooze();
        }
        if let Some(s) = &self.stats {
            s.escalation(sw.effort());
            if let Some(t0) = t0 {
                s.neighbor_wait(t0.elapsed());
            }
        }
    }

    /// As [`NeighborFlags::wait`], but guarded: returns
    /// [`SyncError::DeadlineExceeded`] (attributed to `site`/`pid`)
    /// instead of hanging when the neighbor's post never lands, and
    /// bails out on region poison.
    pub fn wait_until(
        &self,
        other: isize,
        epoch: u64,
        wd: &Watchdog,
        site: usize,
        pid: usize,
    ) -> Result<(), SyncError> {
        if other < 0 || other as usize >= self.flags.len() {
            return Ok(());
        }
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        let flag = &self.flags[other as usize];
        let effort = wd.guarded_wait(site, pid, SyncKind::Neighbor, epoch, self.policy, || {
            let cur = flag.load(Ordering::Acquire);
            if cur >= epoch {
                WaitPoll::Ready
            } else {
                WaitPoll::Pending(cur)
            }
        })?;
        if let Some(s) = &self.stats {
            s.escalation(effort);
            if let Some(t0) = t0 {
                s.neighbor_wait(t0.elapsed());
            }
        }
        Ok(())
    }

    /// Current epoch of a processor's flag.
    pub fn epoch(&self, pid: usize) -> u64 {
        self.flags[pid].load(Ordering::Acquire)
    }

    /// Reset all flags (only between regions).
    pub fn reset(&self) {
        for f in &self.flags {
            f.store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-processor pipeline: each processor appends to a log after
    /// waiting for its left neighbor, giving a strict order.
    #[test]
    fn pipeline_orders_processors() {
        let n = 4;
        let f = Arc::new(NeighborFlags::new(n));
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..n)
            .map(|pid| {
                let f = Arc::clone(&f);
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for step in 1..=10u64 {
                        f.wait(pid as isize - 1, step);
                        log.lock().push((step, pid));
                        f.post(pid);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let log = log.lock();
        // Within each step, processors appear in increasing order.
        for step in 1..=10u64 {
            let order: Vec<usize> = log
                .iter()
                .filter(|(s, _)| *s == step)
                .map(|(_, p)| *p)
                .collect();
            assert_eq!(order, vec![0, 1, 2, 3], "step {step} out of order");
        }
    }

    #[test]
    fn boundary_neighbors_do_not_block() {
        let f = NeighborFlags::new(2);
        // Processor 0 has no left neighbor; waiting on -1 returns.
        f.wait(-1, u64::MAX);
        f.wait(2, u64::MAX);
    }

    #[test]
    fn guarded_wait_bounds_a_missing_post() {
        use crate::fault::{SyncError, Watchdog};
        use crate::stats::SyncKind;
        use std::time::Duration;
        let wd = Watchdog::new(Duration::from_millis(40));
        let f = NeighborFlags::new(3);
        f.post(1);
        // Posted neighbor and out-of-range neighbors succeed.
        assert_eq!(f.wait_until(1, 1, &wd, 4, 0), Ok(()));
        assert_eq!(f.wait_until(-1, 99, &wd, 4, 0), Ok(()));
        assert_eq!(f.wait_until(3, 99, &wd, 4, 2), Ok(()));
        // A never-posting neighbor is a bounded, attributed failure.
        let err = f.wait_until(2, 1, &wd, 4, 1).unwrap_err();
        assert_eq!(
            err,
            SyncError::DeadlineExceeded {
                site: 4,
                pid: 1,
                kind: SyncKind::Neighbor,
                expected: 1,
                observed: 0,
            }
        );
    }

    #[test]
    fn stats_and_reset() {
        let stats = Arc::new(SyncStats::new());
        let f = NeighborFlags::new(2).with_stats(Arc::clone(&stats));
        f.post(0);
        f.wait(0, 1);
        assert_eq!(stats.neighbor_posts_count(), 1);
        assert_eq!(stats.neighbor_waits_count(), 1);
        f.reset();
        assert_eq!(f.epoch(0), 0);
    }
}
