//! Differential execution oracle.
//!
//! One program, four executions that must agree:
//!
//! * the sequential interpreter (the semantics being reproduced),
//! * the unoptimized fork-join schedule,
//! * the optimized schedule under adversarial virtual interleavings,
//! * the optimized (and fork-join) schedule on real threads, with both
//!   the central and the tree barrier.
//!
//! Final shared memory is diffed cell-by-cell against the sequential
//! run, the dynamic synchronization counts of the virtual and real
//! executors are cross-checked (both derive from the same unrolled
//! event list, so disagreement means an executor bug), and each plan
//! is run through the static race validator. Any discrepancy is
//! reported as a human-readable failure string carrying the plan,
//! order, processor count, and divergence magnitude.

use crate::chaos::ChaosInjector;
use crate::validate;
use analysis::Bindings;
use interp::events::DynCounts;
use interp::{
    run_parallel_observed, run_sequential, run_virtual, BarrierKind, Mem, ObserveOptions,
    ScheduleOrder, SyncChaos,
};
use ir::Program;
use obs::FailureReport;
use runtime::Team;
use spmd_opt::{fork_join, optimize, SpmdProgram};
use std::sync::Arc;
use std::time::Duration;

/// What the differential check runs.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Processor counts exercised by the virtual executor.
    pub nprocs: Vec<i64>,
    /// Extra seeded-random interleavings per (plan, nprocs), on top of
    /// round-robin and reverse.
    pub random_orders: u64,
    /// Also execute on real threads (both barrier kinds) at
    /// `thread_nprocs`.
    pub threads: bool,
    /// Team size for the real-thread runs.
    pub thread_nprocs: i64,
    /// Also run the static race validator on both plans.
    pub validate: bool,
    /// Maximum tolerated divergence from the sequential run (0.0 for
    /// generated programs, whose reductions are order-independent;
    /// `1e-9` for suite kernels with reassociating sum reductions).
    pub tol: f64,
    /// Per-wait deadline armed on every real-thread run. A correct
    /// schedule never comes near it; a deadlocking one becomes a
    /// structured failure instead of a hung campaign.
    pub deadline: Option<Duration>,
    /// Inject benign seeded chaos (delays, stalls, spurious wakeups)
    /// into the real-thread runs. Requires `deadline`.
    pub chaos_seed: Option<u64>,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            nprocs: vec![1, 3, 4],
            random_orders: 2,
            threads: false,
            thread_nprocs: 4,
            validate: true,
            tol: 0.0,
            deadline: Some(Duration::from_secs(10)),
            chaos_seed: None,
        }
    }
}

/// Outcome of one program's differential check.
#[derive(Debug, Default)]
pub struct CaseResult {
    /// Human-readable mismatch descriptions; empty means the program
    /// passed every comparison.
    pub failures: Vec<String>,
    /// Fork-join dynamic sync counts at the largest virtual `nprocs`.
    pub fj_counts: DynCounts,
    /// Optimized dynamic sync counts at the largest virtual `nprocs`.
    pub opt_counts: DynCounts,
    /// Structured reports for real-thread runs that timed out, were
    /// poisoned, or lost a worker (one per failing run; rides into the
    /// repro bundle as `failure.json`).
    pub failure_reports: Vec<FailureReport>,
}

impl CaseResult {
    /// True when every execution agreed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

fn virt_orders(cfg: &DiffConfig) -> Vec<ScheduleOrder> {
    let mut orders = vec![ScheduleOrder::RoundRobin, ScheduleOrder::Reverse];
    for k in 0..cfg.random_orders {
        orders.push(ScheduleOrder::Random(0xC0FFEE ^ (k * 7919 + 13)));
    }
    orders
}

/// Differentially check one program: every parallel execution must
/// reproduce the sequential result within `cfg.tol`, and both plans
/// must validate race-free.
pub fn check_program(
    prog: &Program,
    mk_bind: &dyn Fn(i64) -> Bindings,
    cfg: &DiffConfig,
) -> CaseResult {
    let mut out = CaseResult::default();

    for &p in &cfg.nprocs {
        let bind = mk_bind(p);
        let bad = analysis::check_parallel_loops(prog, &bind);
        if !bad.is_empty() {
            out.failures.push(format!(
                "P={p}: generator produced dependent DOALLs {bad:?}"
            ));
            continue;
        }
        let oracle = Mem::new(prog, &bind);
        run_sequential(prog, &bind, &oracle);

        for (label, plan) in [
            ("fork-join", fork_join(prog, &bind)),
            ("optimized", optimize(prog, &bind)),
        ] {
            if cfg.validate {
                let r = validate::validate(prog, &bind, &plan);
                if !r.is_race_free() {
                    out.failures.push(format!(
                        "P={p} {label}: {} racing pairs, first: {}",
                        r.num_racing_pairs,
                        r.races.first().map(|r| r.to_string()).unwrap_or_default()
                    ));
                }
            }
            let mut counts = None;
            for order in virt_orders(cfg) {
                let mem = Mem::new(prog, &bind);
                let vo = run_virtual(prog, &bind, &plan, &mem, order);
                let diff = mem.max_abs_diff(&oracle);
                if diff > cfg.tol {
                    out.failures.push(format!(
                        "P={p} {label} virt {order:?}: diverged by {diff:e}"
                    ));
                }
                if let Some(c) = counts {
                    if c != vo.counts {
                        out.failures.push(format!(
                            "P={p} {label} virt {order:?}: counts changed across orders"
                        ));
                    }
                }
                counts = Some(vo.counts);
            }
            if Some(&p) == cfg.nprocs.iter().max() {
                match label {
                    "fork-join" => out.fj_counts = counts.unwrap_or_default(),
                    _ => out.opt_counts = counts.unwrap_or_default(),
                }
            }
        }
    }

    if cfg.threads {
        let p = cfg.thread_nprocs;
        let bind = Arc::new(mk_bind(p));
        let prog = Arc::new(prog.clone());
        let oracle = Mem::new(&prog, &bind);
        run_sequential(&prog, &bind, &oracle);
        let team = Team::new(p as usize);
        for (label, plan) in [
            ("fork-join", fork_join(&prog, &bind)),
            ("optimized", optimize(&prog, &bind)),
        ] {
            for kind in [BarrierKind::Central, BarrierKind::Tree] {
                let mem = Arc::new(Mem::new(&prog, &bind));
                let po = run_parallel_observed(
                    &prog,
                    &bind,
                    &plan,
                    &mem,
                    &team,
                    &ObserveOptions {
                        barrier: kind,
                        deadline: cfg.deadline,
                        chaos: cfg
                            .chaos_seed
                            .map(|s| Arc::new(ChaosInjector::new(s)) as Arc<dyn SyncChaos>),
                        ..ObserveOptions::default()
                    },
                );
                if let Some(mut f) = po.failure.clone() {
                    f.chaos_seed = cfg.chaos_seed;
                    out.failures
                        .push(format!("P={p} {label} threads {kind:?}: {}", f.headline()));
                    out.failure_reports.push(f);
                    continue; // memory/counts are meaningless after a fault
                }
                let diff = mem.max_abs_diff(&oracle);
                if diff > cfg.tol {
                    out.failures.push(format!(
                        "P={p} {label} threads {kind:?}: diverged by {diff:e}"
                    ));
                }
                // The virtual executor's counts for the same plan and
                // processor count must match by construction.
                let vmem = Mem::new(&prog, &bind);
                let vo = run_virtual(&prog, &bind, &plan, &vmem, ScheduleOrder::RoundRobin);
                if vo.counts != po.counts {
                    out.failures.push(format!(
                        "P={p} {label} threads {kind:?}: dyn counts {:?} != virt {:?}",
                        po.counts, vo.counts
                    ));
                }
            }
        }
    }

    out
}

/// Check one plan (already built) against the sequential semantics
/// under the virtual executor only — the building block the mutation
/// tester uses on schedules it has tampered with.
pub fn plan_diverges(
    prog: &Program,
    bind: &Bindings,
    plan: &SpmdProgram,
    orders: &[ScheduleOrder],
    tol: f64,
) -> Option<f64> {
    let oracle = Mem::new(prog, bind);
    run_sequential(prog, bind, &oracle);
    let mut worst = 0.0f64;
    for &order in orders {
        let mem = Mem::new(prog, bind);
        run_virtual(prog, bind, plan, &mem, order);
        worst = worst.max(mem.max_abs_diff(&oracle));
    }
    if worst > tol {
        Some(worst)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn generated_programs_pass_quick_differential() {
        for seed in 0..8 {
            let g = gen::generate(seed);
            let cfg = DiffConfig {
                nprocs: vec![1, 4],
                random_orders: 1,
                ..DiffConfig::default()
            };
            let r = check_program(&g.prog, &|p| g.bindings(p), &cfg);
            assert!(r.ok(), "seed {seed} shape {:?}: {:?}", g.shape, r.failures);
        }
    }

    #[test]
    fn one_generated_program_passes_on_real_threads() {
        let g = gen::generate(3);
        let cfg = DiffConfig {
            nprocs: vec![4],
            threads: true,
            thread_nprocs: 4,
            ..DiffConfig::default()
        };
        let r = check_program(&g.prog, &|p| g.bindings(p), &cfg);
        assert!(r.ok(), "{:?}", r.failures);
    }
}
