//! Minimal JSON tree, emitter, and parser.
//!
//! The workspace is built offline (no serde); this module provides the
//! small subset the observability layer needs: an insertion-ordered
//! value tree, a deterministic emitter (object keys keep insertion
//! order, so equal trees serialize byte-identically), and a strict
//! parser used by the schema tests to re-read what we wrote.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (emitted without a trailing `.0` when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key (objects only; panics otherwise).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Member lookup (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (k, it) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    it.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (k, (key, val)) in pairs.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    val.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// Parse a JSON document (strict: one value, arbitrary surrounding
/// whitespace). Used by the tests to validate emitted files.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_str(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_num(b, pos).map(Json::Num),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, val: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(val)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_tree() {
        let v = Json::obj()
            .set("name", "jacobi \"2d\"\n")
            .set("n", 64u64)
            .set("ok", true)
            .set("none", Json::Null)
            .set(
                "xs",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Str("x".into())]),
            );
        for s in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&s).unwrap(), v);
        }
    }

    #[test]
    fn emission_is_deterministic_and_ordered() {
        let v = Json::obj().set("b", 1u64).set("a", 2u64);
        assert_eq!(v.to_string_compact(), r#"{"b":1,"a":2}"#);
        assert_eq!(v.to_string_compact(), v.clone().to_string_compact());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn integral_numbers_have_no_fraction() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(3.5).to_string_compact(), "3.5");
    }
}
