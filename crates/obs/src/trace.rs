//! Chrome-trace (chrome://tracing / Perfetto) timeline writer.
//!
//! Executors record [`Span`]s — one per work phase, dispatch, or sync
//! wait, per processor — and this module lowers them to the Trace Event
//! Format: a `traceEvents` array of `B`/`E` duration events with
//! microsecond timestamps, one track (`tid`) per processor, plus
//! `thread_name` metadata so Perfetto labels the tracks `proc 0..P-1`.
//!
//! Within one track, events are emitted in timestamp order with `E`
//! before `B` at equal timestamps, so adjacent spans (a wait ending
//! exactly where the next phase begins) nest correctly.

use crate::json::Json;

/// Span categories (the trace viewer colors by category).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanCat {
    /// Executing a work phase (parallel/replicated/master).
    Work,
    /// Blocked in a synchronization operation.
    Sync,
    /// Master-to-worker dispatch of a fork-join region.
    Dispatch,
}

impl SpanCat {
    /// Stable category name.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanCat::Work => "work",
            SpanCat::Sync => "sync",
            SpanCat::Dispatch => "dispatch",
        }
    }
}

/// One closed interval of one processor's timeline.
#[derive(Clone, Debug)]
pub struct Span {
    /// Processor (trace track).
    pub pid: usize,
    /// Displayed name, e.g. `DOALL i` or `barrier wait @s3`.
    pub name: String,
    /// Category.
    pub cat: SpanCat,
    /// Start, microseconds from run start.
    pub start_us: u64,
    /// End, microseconds from run start (clamped to `start_us + 1` when
    /// equal, so zero-length spans stay visible and well-nested).
    pub end_us: u64,
}

/// Collects spans and emits the Chrome-trace JSON document.
#[derive(Debug)]
pub struct TraceBuilder {
    process_name: String,
    nprocs: usize,
    spans: Vec<Span>,
}

impl TraceBuilder {
    /// A trace for `nprocs` processor tracks.
    pub fn new(process_name: impl Into<String>, nprocs: usize) -> Self {
        TraceBuilder {
            process_name: process_name.into(),
            nprocs,
            spans: Vec::new(),
        }
    }

    /// Record one span.
    pub fn push(&mut self, span: Span) {
        debug_assert!(span.pid < self.nprocs);
        debug_assert!(span.start_us <= span.end_us);
        self.spans.push(span);
    }

    /// Record a span from raw parts.
    pub fn span(
        &mut self,
        pid: usize,
        name: impl Into<String>,
        cat: SpanCat,
        start_us: u64,
        end_us: u64,
    ) {
        self.push(Span {
            pid,
            name: name.into(),
            cat,
            start_us,
            end_us,
        });
    }

    /// Merge the spans of another builder (used to combine per-thread
    /// buffers after a real-thread run).
    pub fn extend(&mut self, spans: impl IntoIterator<Item = Span>) {
        self.spans.extend(spans);
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no span was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Lower to the Trace Event Format document.
    pub fn to_json(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        for pid in 0..self.nprocs {
            events.push(
                Json::obj()
                    .set("name", "thread_name")
                    .set("ph", "M")
                    .set("pid", 1u64)
                    .set("tid", pid)
                    .set("args", Json::obj().set("name", format!("proc {pid}"))),
            );
        }
        // (tid, ts, is_begin, insertion index): E sorts before B at equal
        // timestamps so back-to-back spans close before the next opens.
        let mut points: Vec<(usize, u64, bool, usize)> = Vec::new();
        for (k, s) in self.spans.iter().enumerate() {
            let end = s.end_us.max(s.start_us + 1);
            points.push((s.pid, s.start_us, true, k));
            points.push((s.pid, end, false, k));
        }
        points.sort_by_key(|&(tid, ts, is_begin, k)| (tid, ts, is_begin, k));
        for (tid, ts, is_begin, k) in points {
            let s = &self.spans[k];
            events.push(
                Json::obj()
                    .set("name", s.name.as_str())
                    .set("cat", s.cat.as_str())
                    .set("ph", if is_begin { "B" } else { "E" })
                    .set("ts", ts)
                    .set("pid", 1u64)
                    .set("tid", tid),
            );
        }
        Json::obj()
            .set("traceEvents", Json::Arr(events))
            .set("displayTimeUnit", "ms")
            .set(
                "otherData",
                Json::obj().set("process", self.process_name.as_str()),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_metadata_and_balanced_spans() {
        let mut tb = TraceBuilder::new("test", 2);
        tb.span(0, "DOALL i", SpanCat::Work, 0, 5);
        tb.span(0, "barrier wait @s0", SpanCat::Sync, 5, 7);
        tb.span(1, "DOALL i", SpanCat::Work, 0, 7);
        let doc = tb.to_json();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let meta = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .count();
        assert_eq!(meta, 2);
        let b = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("B"))
            .count();
        let e = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("E"))
            .count();
        assert_eq!(b, 3);
        assert_eq!(e, 3);
    }

    #[test]
    fn per_track_timestamps_are_monotone_and_nested() {
        let mut tb = TraceBuilder::new("test", 2);
        tb.span(0, "a", SpanCat::Work, 0, 3);
        tb.span(0, "b", SpanCat::Sync, 3, 3); // zero-length, clamps to 4
        tb.span(0, "c", SpanCat::Work, 4, 9);
        tb.span(1, "d", SpanCat::Work, 1, 2);
        let doc = tb.to_json();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let mut last_ts = std::collections::HashMap::new();
        let mut depth = std::collections::HashMap::new();
        for e in evs {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            if ph == "M" {
                continue;
            }
            let tid = e.get("tid").unwrap().as_u64().unwrap();
            let ts = e.get("ts").unwrap().as_u64().unwrap();
            let prev = last_ts.entry(tid).or_insert(0);
            assert!(ts >= *prev, "non-monotone ts on track {tid}");
            *prev = ts;
            let d = depth.entry(tid).or_insert(0i64);
            *d += if ph == "B" { 1 } else { -1 };
            assert!(*d >= 0, "E without B on track {tid}");
        }
        for (tid, d) in depth {
            assert_eq!(d, 0, "unbalanced spans on track {tid}");
        }
    }
}
