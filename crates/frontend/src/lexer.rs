//! Tokenizer for the source language.

use std::fmt;

/// Token categories.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `+=`
    PlusEq,
    /// `==`
    EqEq,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `@`
    At,
    /// End of line (statements are line-oriented).
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::PlusEq => write!(f, "`+=`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::At => write!(f, "`@`"),
            TokenKind::Newline => write!(f, "end of line"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source line (1-based) for error messages.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Category and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Streaming tokenizer.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    /// Lex a whole source string.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    /// Produce the token stream (newlines are significant; consecutive
    /// newlines collapse to one).
    pub fn tokenize(mut self) -> Result<Vec<Token>, String> {
        let mut out: Vec<Token> = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.bump();
                }
                Some(b'!') => {
                    // Comment to end of line.
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'\n') => {
                    self.bump();
                    if !matches!(out.last().map(|t| &t.kind), None | Some(TokenKind::Newline)) {
                        out.push(Token {
                            kind: TokenKind::Newline,
                            line: self.line,
                        });
                    }
                    self.line += 1;
                }
                Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let word = std::str::from_utf8(&self.src[start..self.pos])
                        .unwrap()
                        .to_string();
                    out.push(Token {
                        kind: TokenKind::Ident(word),
                        line: self.line,
                    });
                }
                Some(c) if c.is_ascii_digit() => {
                    let start = self.pos;
                    let mut is_float = false;
                    while let Some(c) = self.peek() {
                        if c.is_ascii_digit() {
                            self.bump();
                        } else if c == b'.'
                            && self
                                .src
                                .get(self.pos + 1)
                                .map_or(false, |d| d.is_ascii_digit())
                        {
                            is_float = true;
                            self.bump();
                        } else if (c == b'e' || c == b'E')
                            && self
                                .src
                                .get(self.pos + 1)
                                .map_or(false, |d| d.is_ascii_digit() || *d == b'-' || *d == b'+')
                        {
                            is_float = true;
                            self.bump();
                            if matches!(self.peek(), Some(b'-') | Some(b'+')) {
                                self.bump();
                            }
                        } else {
                            break;
                        }
                    }
                    let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                    let kind = if is_float {
                        TokenKind::Float(
                            text.parse()
                                .map_err(|_| format!("line {}: bad float `{text}`", self.line))?,
                        )
                    } else {
                        TokenKind::Int(
                            text.parse()
                                .map_err(|_| format!("line {}: bad integer `{text}`", self.line))?,
                        )
                    };
                    out.push(Token {
                        kind,
                        line: self.line,
                    });
                }
                Some(b'(') => self.push_simple(&mut out, TokenKind::LParen),
                Some(b')') => self.push_simple(&mut out, TokenKind::RParen),
                Some(b',') => self.push_simple(&mut out, TokenKind::Comma),
                Some(b'*') => self.push_simple(&mut out, TokenKind::Star),
                Some(b'/') => self.push_simple(&mut out, TokenKind::Slash),
                Some(b'@') => self.push_simple(&mut out, TokenKind::At),
                Some(b'+') => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        out.push(Token {
                            kind: TokenKind::PlusEq,
                            line: self.line,
                        });
                    } else {
                        out.push(Token {
                            kind: TokenKind::Plus,
                            line: self.line,
                        });
                    }
                }
                Some(b'-') => self.push_simple(&mut out, TokenKind::Minus),
                Some(b'=') => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        out.push(Token {
                            kind: TokenKind::EqEq,
                            line: self.line,
                        });
                    } else {
                        out.push(Token {
                            kind: TokenKind::Eq,
                            line: self.line,
                        });
                    }
                }
                Some(b'>') => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        out.push(Token {
                            kind: TokenKind::Ge,
                            line: self.line,
                        });
                    } else {
                        return Err(format!("line {}: `>` must be `>=`", self.line));
                    }
                }
                Some(b'<') => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        out.push(Token {
                            kind: TokenKind::Le,
                            line: self.line,
                        });
                    } else {
                        return Err(format!("line {}: `<` must be `<=`", self.line));
                    }
                }
                Some(c) => {
                    return Err(format!(
                        "line {}: unexpected character `{}`",
                        self.line, c as char
                    ))
                }
            }
        }
        out.push(Token {
            kind: TokenKind::Eof,
            line: self.line,
        });
        Ok(out)
    }

    fn push_simple(&mut self, out: &mut Vec<Token>, kind: TokenKind) {
        self.bump();
        out.push(Token {
            kind,
            line: self.line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn words_numbers_ops() {
        let k = kinds("doall i = 1, n-1");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("doall".into()),
                TokenKind::Ident("i".into()),
                TokenKind::Eq,
                TokenKind::Int(1),
                TokenKind::Comma,
                TokenKind::Ident("n".into()),
                TokenKind::Minus,
                TokenKind::Int(1),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn floats_and_comments() {
        let k = kinds("x = 0.5 ! half\ny = 1e-3");
        assert!(k.contains(&TokenKind::Float(0.5)));
        assert!(k.contains(&TokenKind::Float(1e-3)));
        assert!(k.contains(&TokenKind::Newline));
    }

    #[test]
    fn compound_operators() {
        let k = kinds("s += a >= b <= c == d");
        assert!(k.contains(&TokenKind::PlusEq));
        assert!(k.contains(&TokenKind::Ge));
        assert!(k.contains(&TokenKind::Le));
        assert!(k.contains(&TokenKind::EqEq));
    }

    #[test]
    fn newlines_collapse() {
        let k = kinds("a\n\n\nb");
        let nl = k.iter().filter(|t| **t == TokenKind::Newline).count();
        assert_eq!(nl, 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = Lexer::new("a\n&").tokenize().unwrap_err();
        assert!(e.contains("line 2"), "{e}");
    }
}
