//! Sync-profiler overhead gate: `BENCH_7.json`.
//!
//! Measures the round-trip latency of the central barrier at several
//! team sizes on two paths:
//!
//! * **pure** — the lock-free fast path alone (`wait`), exactly the
//!   bench6 gate cell: no clocks, no rings;
//! * **profiled** — the same wait bracketed by the always-on sync
//!   profiler's per-thread event rings: one `SyncArrive` and one
//!   `SyncRelease` record per episode, the event pattern
//!   `run_parallel_observed` emits per dynamic sync visit.
//!
//! The harness is a regression gate for the "always-on" claim: at the
//! gate team size the profiled path must cost no more than
//! [`GATE_FACTOR`]x the pure path, every profiled repetition must
//! satisfy the ring-accounting identity `events + dropped ==
//! attempted`, and at the default ring capacity nothing may be
//! dropped. A separate tiny-capacity probe proves overflow is counted
//! and reported — never blocked on.
//!
//! Latencies are min-of-reps over interleaved repetitions (the bench6
//! methodology): the minimum converges on each path's deterministic
//! floor and cancels scheduler noise on small oversubscribed hosts.
//!
//! Usage: `bench7 [--quick] [--out PATH] [--baseline PATH]`
//!   --quick     fewer episodes/reps (CI smoke mode)
//!   --out       output path (default BENCH_7.json; `-` for stdout)
//!   --baseline  prior BENCH_7.json to compare against; refused unless
//!               its `schema_version` matches this binary's

use criterion::black_box;
use obs::Json;
use runtime::events::{self, EventKind, ProfileData, ProfileOptions, Profiler};
use runtime::{BarrierEpoch, CentralBarrier, Team};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// The profiled path may cost at most this many times the pure path at
/// the gate point (central barrier, [`GATE_PROCS`] threads).
const GATE_FACTOR: f64 = 1.25;
const GATE_PROCS: usize = 8;

/// One measurement: `episodes` central-barrier round trips on a team of
/// `p`. With `profile`, each thread installs a recorder on a fresh ring
/// set and brackets every episode with arrive/release events; returns
/// the snapshot so the caller can check the accounting identity.
fn measure(
    team: &Team,
    p: usize,
    episodes: u64,
    profile: Option<usize>,
) -> (f64, Option<ProfileData>) {
    let b = Arc::new(CentralBarrier::new(p));
    let profiler = profile.map(|cap| Arc::new(Profiler::new(p, ProfileOptions { capacity: cap })));
    let prof2 = profiler.clone();
    let t0 = Instant::now();
    team.run(move |pid| {
        let _recorder = prof2
            .as_ref()
            .map(|pr| events::install(Arc::clone(pr), pid));
        let mut local = BarrierEpoch::default();
        match &prof2 {
            Some(pr) => {
                for k in 0..episodes {
                    let ta = pr.now_ns();
                    pr.record_at(pid, EventKind::SyncArrive, 0, k, ta);
                    b.wait(&mut local);
                    let now = pr.now_ns();
                    pr.record_at(pid, EventKind::SyncRelease, 0, now.saturating_sub(ta), now);
                }
            }
            None => {
                for _ in 0..episodes {
                    b.wait(&mut local);
                }
            }
        }
        black_box(local);
    });
    let ns = t0.elapsed().as_nanos() as f64 / episodes as f64;
    (ns, profiler.map(|pr| pr.snapshot()))
}

struct Cell {
    p: usize,
    pure_ns: f64,
    profiled_ns: f64,
    /// Ring accounting of the *last* profiled rep (every rep is
    /// checked; one is reported).
    events: usize,
    dropped: u64,
    attempted: u64,
}

impl Cell {
    fn overhead(&self) -> f64 {
        if self.pure_ns > 0.0 {
            self.profiled_ns / self.pure_ns
        } else {
            0.0
        }
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = "BENCH_7.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = it.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(it.next().expect("--baseline needs a path")),
            other => {
                eprintln!("bench7: unknown argument {other}");
                eprintln!("usage: bench7 [--quick] [--out PATH] [--baseline PATH]");
                return ExitCode::from(2);
            }
        }
    }
    let baseline = match &baseline_path {
        Some(p) => match spmd_bench::load_baseline(p, "sync-profiler-overhead") {
            Ok(doc) => Some(doc),
            Err(e) => {
                eprintln!("bench7: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let (episodes, reps): (u64, usize) = if quick { (300, 5) } else { (1000, 7) };
    // Default ring capacity holds 2 events/episode with headroom: a
    // profiled rep must never drop.
    let capacity = ProfileOptions::default().capacity;
    assert!(
        capacity as u64 >= 2 * episodes + 16,
        "ring must out-size the rep"
    );

    let mut accounting_ok = true;
    let mut zero_drops = true;
    let mut check = |d: &ProfileData, expect_drops: bool| -> (usize, u64, u64) {
        let (ev, dr, at) = (d.events.len(), d.dropped, d.attempted());
        if ev as u64 + dr != at {
            accounting_ok = false;
            eprintln!(
                "bench7: ring accounting broken: {ev} events + {dr} dropped != {at} attempted"
            );
        }
        if !expect_drops && dr != 0 {
            zero_drops = false;
            eprintln!("bench7: {dr} unexpected drops at default capacity");
        }
        (ev, dr, at)
    };

    let mut cells: Vec<Cell> = Vec::new();
    for p in [2usize, 4, 8] {
        let team = Team::new(p);
        let mut pure_ns = f64::INFINITY;
        let mut profiled_ns = f64::INFINITY;
        let mut ring = (0usize, 0u64, 0u64);
        // Warm-up rep per path (fresh team pays dispatch cold-start).
        measure(&team, p, episodes / 4, None);
        measure(&team, p, episodes / 4, Some(capacity));
        let mut refine = |pure_ns: &mut f64, profiled_ns: &mut f64, rounds: usize| {
            for _ in 0..rounds {
                *pure_ns = pure_ns.min(measure(&team, p, episodes, None).0);
                let (ns, data) = measure(&team, p, episodes, Some(capacity));
                *profiled_ns = profiled_ns.min(ns);
                ring = check(&data.expect("profiled rep returns data"), false);
            }
        };
        refine(&mut pure_ns, &mut profiled_ns, reps);
        // The min estimator only improves with more samples: while the
        // gate point still reads inverted beyond the factor, keep
        // sampling a bounded number of extra rounds before concluding
        // the profiler really is too expensive.
        if p == GATE_PROCS {
            let mut extra = 0;
            while profiled_ns > GATE_FACTOR * pure_ns && extra < 8 {
                refine(&mut pure_ns, &mut profiled_ns, 2);
                extra += 1;
            }
        }
        cells.push(Cell {
            p,
            pure_ns,
            profiled_ns,
            events: ring.0,
            dropped: ring.1,
            attempted: ring.2,
        });
    }

    // Overflow probe: a ring far smaller than the event volume must
    // finish the run (recording never blocks), count every lost event,
    // and keep the accounting identity.
    let probe_cap = 64usize;
    let probe_p = 4usize;
    let team = Team::new(probe_p);
    let (_, data) = measure(&team, probe_p, episodes, Some(probe_cap));
    let d = data.expect("probe returns data");
    let probe_identity = d.events.len() as u64 + d.dropped == d.attempted();
    let probe_dropped = d.dropped > 0;
    let probe_ok = probe_identity && probe_dropped;
    if !probe_ok {
        accounting_ok &= probe_identity;
        eprintln!(
            "bench7: overflow probe failed: {} events, {} dropped, {} attempted (cap {probe_cap})",
            d.events.len(),
            d.dropped,
            d.attempted()
        );
    }

    let mut table = spmd_bench::Table::new(&["P", "pure ns", "profiled ns", "profiler x"]);
    for c in &cells {
        table.row(vec![
            c.p.to_string(),
            format!("{:.0}", c.pure_ns),
            format!("{:.0}", c.profiled_ns),
            format!("{:.2}x", c.overhead()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "overflow probe (cap {probe_cap}, P={probe_p}): {} events kept, {} dropped, \
         {} attempted — {}",
        d.events.len(),
        d.dropped,
        d.attempted(),
        if probe_ok {
            "counted, not blocked"
        } else {
            "FAILED"
        }
    );

    let gate = cells
        .iter()
        .find(|c| c.p == GATE_PROCS)
        .expect("gate cell measured");
    let within_factor = gate.profiled_ns <= GATE_FACTOR * gate.pure_ns;
    let gate_ok = within_factor && accounting_ok && zero_drops && probe_ok;
    println!(
        "gate (central @ {GATE_PROCS} threads): pure {:.0} ns, profiled {:.0} ns \
         ({:.2}x overhead, limit {GATE_FACTOR:.2}x) — {}",
        gate.pure_ns,
        gate.profiled_ns,
        gate.overhead(),
        if gate_ok { "OK" } else { "FAILED" }
    );

    let cell_json: Vec<Json> = cells
        .iter()
        .map(|c| {
            Json::obj()
                .set("procs", c.p as f64)
                .set("pure_ns", c.pure_ns)
                .set("profiled_ns", c.profiled_ns)
                .set("profiler_overhead", c.overhead())
                .set("events", c.events as f64)
                .set("dropped", c.dropped as f64)
                .set("attempted", c.attempted as f64)
        })
        .collect();
    let doc = Json::obj()
        .set("bench", "sync-profiler-overhead")
        .set("mode", if quick { "quick" } else { "full" })
        .set("episodes", episodes as f64)
        .set("reps", reps as f64)
        .set("ring_capacity", capacity as f64)
        .set(
            "cores",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1) as f64,
        )
        .set("cells", Json::Arr(cell_json))
        .set(
            "overflow_probe",
            Json::obj()
                .set("capacity", probe_cap as f64)
                .set("procs", probe_p as f64)
                .set("events", d.events.len() as f64)
                .set("dropped", d.dropped as f64)
                .set("attempted", d.attempted() as f64)
                .set("identity_ok", probe_identity)
                .set("dropped_counted", probe_dropped)
                .set("ok", probe_ok),
        )
        .set(
            "gate",
            Json::obj()
                .set("primitive", "central")
                .set("procs", GATE_PROCS as f64)
                .set("factor_limit", GATE_FACTOR)
                .set("pure_ns", gate.pure_ns)
                .set("profiled_ns", gate.profiled_ns)
                .set("within_factor", within_factor)
                .set("accounting_ok", accounting_ok)
                .set("zero_drops", zero_drops)
                .set("overflow_probe_ok", probe_ok)
                .set("ok", gate_ok),
        );
    let doc = spmd_bench::stamp_schema(doc);
    let rendered = doc.to_string_pretty();
    if out_path == "-" {
        println!("{rendered}");
    } else if let Err(e) = std::fs::write(&out_path, rendered + "\n") {
        eprintln!("bench7: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    } else {
        println!("bench7: wrote {out_path}");
    }

    if let Some(base) = &baseline {
        let prev = base
            .get("gate")
            .and_then(|g| g.get("profiled_ns"))
            .and_then(|v| v.as_num())
            .unwrap_or(0.0);
        println!(
            "baseline {}: gate profiled path {prev:.0} ns then, {:.0} ns now",
            baseline_path.as_deref().unwrap_or("-"),
            gate.profiled_ns
        );
    }

    if !gate_ok {
        eprintln!(
            "bench7: FAILED — always-on profiling regresses the central barrier beyond \
             {GATE_FACTOR}x at {GATE_PROCS} threads (or ring accounting broke)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
