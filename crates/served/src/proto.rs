//! The `beoptd` wire protocol: newline-delimited JSON over a byte
//! stream, using the deterministic `obs` emitter/parser.
//!
//! Each request is one compact JSON object on one line; each reply is
//! one compact JSON object on one line. The compile payload
//! (`explain`) is the byte-stable explain document: the optimizer is
//! deterministic and the emitter prints integers canonically, so a
//! response round-tripped through the wire re-serializes to exactly
//! the bytes a local `optimize_explained_shared` run produces — the
//! property the `service-chaos` acceptance campaign pins.
//!
//! Errors are structured: a machine code, a human message, and (for
//! overload) a `retry_after_ms` hint so clients back off instead of
//! hammering a saturated shard.

use obs::Json;

/// Protocol version; bumped on incompatible wire changes.
pub const PROTO_VERSION: u64 = 1;

/// Which plan the client wants compiled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanKind {
    /// The paper's full optimizer (barrier elimination + replacement).
    Optimized,
    /// The traditional fork-join baseline (no analysis, no cache).
    ForkJoin,
}

impl PlanKind {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            PlanKind::Optimized => "optimized",
            PlanKind::ForkJoin => "fork-join",
        }
    }

    /// Parse a wire name.
    pub fn from_str(s: &str) -> Option<Self> {
        match s {
            "optimized" => Some(PlanKind::Optimized),
            "fork-join" => Some(PlanKind::ForkJoin),
            _ => None,
        }
    }
}

/// One compile request.
#[derive(Clone, Debug)]
pub struct OptimizeRequest {
    /// Client-chosen id, echoed in the reply.
    pub id: u64,
    /// Program source text (the `.be` front-end language).
    pub program: String,
    /// Processor count the plan is for.
    pub nprocs: i64,
    /// Symbol bindings by name.
    pub binds: Vec<(String, i64)>,
    /// Which plan to compile.
    pub plan: PlanKind,
    /// Per-request deadline; the service's default applies when absent.
    pub deadline_ms: Option<u64>,
}

/// A parsed client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Compile one program.
    Optimize(OptimizeRequest),
    /// Service and per-shard counters.
    Stats,
    /// Force every shard to persist its cache snapshot now.
    Snapshot,
    /// Graceful shutdown (drain, snapshot, exit).
    Shutdown,
    /// Liveness probe.
    Ping,
}

/// Machine-readable error classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Shard queue full: shed, retry after the hint.
    Overloaded,
    /// The request missed its deadline (queue wait included).
    DeadlineExceeded,
    /// The owning shard crashed mid-request; it is being restarted.
    ShardCrashed,
    /// Malformed request (bad JSON, unknown op, parse error, unknown
    /// symbol). Not retryable.
    BadRequest,
    /// The service is draining; retry against a replacement.
    ShuttingDown,
}

impl ErrorCode {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::ShardCrashed => "shard_crashed",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }

    /// Parse a wire name.
    pub fn from_str(s: &str) -> Option<Self> {
        match s {
            "overloaded" => Some(ErrorCode::Overloaded),
            "deadline_exceeded" => Some(ErrorCode::DeadlineExceeded),
            "shard_crashed" => Some(ErrorCode::ShardCrashed),
            "bad_request" => Some(ErrorCode::BadRequest),
            "shutting_down" => Some(ErrorCode::ShuttingDown),
            _ => None,
        }
    }

    /// Whether a client retry (with backoff) can succeed.
    pub fn retryable(self) -> bool {
        !matches!(self, ErrorCode::BadRequest)
    }
}

/// A structured failure reply.
#[derive(Clone, Debug)]
pub struct ErrorReply {
    /// Request id this answers (0 for non-optimize ops).
    pub id: u64,
    /// Error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Backoff hint for retryable errors, in milliseconds.
    pub retry_after_ms: Option<u64>,
}

/// A successful compile reply.
#[derive(Clone, Debug)]
pub struct OptimizeReply {
    /// Echoed request id.
    pub id: u64,
    /// Shard that served the request.
    pub shard: usize,
    /// Deterministic explain document (plan sites + decision log).
    pub explain: Json,
    /// Microseconds spent queued before compilation started.
    pub queue_us: u64,
    /// Microseconds spent compiling.
    pub compile_us: u64,
    /// Executions this request took server-side (1 = clean).
    pub warm_hint: bool,
}

/// Any server reply.
#[derive(Clone, Debug)]
pub enum Reply {
    /// Compile result.
    Optimized(OptimizeReply),
    /// Structured failure.
    Error(ErrorReply),
    /// Stats document.
    Stats(Json),
    /// Bare acknowledgment (snapshot / shutdown / ping).
    Ok(Json),
}

fn num(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key).and_then(Json::as_u64)
}

/// Encode a request as one wire line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    let doc = match req {
        Request::Optimize(r) => {
            let binds: Vec<Json> = r
                .binds
                .iter()
                .map(|(name, v)| Json::Arr(vec![Json::from(name.as_str()), Json::from(*v)]))
                .collect();
            let mut doc = Json::obj()
                .set("v", PROTO_VERSION)
                .set("op", "optimize")
                .set("id", r.id)
                .set("plan", r.plan.as_str())
                .set("nprocs", r.nprocs)
                .set("binds", binds)
                .set("program", r.program.as_str());
            if let Some(ms) = r.deadline_ms {
                doc = doc.set("deadline_ms", ms);
            }
            doc
        }
        Request::Stats => Json::obj().set("v", PROTO_VERSION).set("op", "stats"),
        Request::Snapshot => Json::obj().set("v", PROTO_VERSION).set("op", "snapshot"),
        Request::Shutdown => Json::obj().set("v", PROTO_VERSION).set("op", "shutdown"),
        Request::Ping => Json::obj().set("v", PROTO_VERSION).set("op", "ping"),
    };
    doc.to_string_compact()
}

/// Decode one request line. `Err` is the human-readable reason (the
/// server answers it with a `bad_request`).
pub fn decode_request(line: &str) -> Result<Request, String> {
    let doc = obs::parse(line).map_err(|e| format!("not JSON: {e}"))?;
    match num(&doc, "v") {
        Some(PROTO_VERSION) => {}
        Some(v) => return Err(format!("protocol version {v} not supported")),
        None => return Err("missing protocol version 'v'".to_string()),
    }
    match doc.get("op").and_then(Json::as_str) {
        Some("optimize") => {
            let id = num(&doc, "id").unwrap_or(0);
            let program = doc
                .get("program")
                .and_then(Json::as_str)
                .ok_or("missing 'program'")?
                .to_string();
            let nprocs = doc
                .get("nprocs")
                .and_then(Json::as_num)
                .ok_or("missing 'nprocs'")? as i64;
            if nprocs < 1 {
                return Err(format!("nprocs {nprocs} out of range"));
            }
            let plan = doc
                .get("plan")
                .and_then(Json::as_str)
                .and_then(PlanKind::from_str)
                .ok_or("missing or unknown 'plan'")?;
            let mut binds = Vec::new();
            if let Some(arr) = doc.get("binds").and_then(Json::as_arr) {
                for pair in arr {
                    let p = pair.as_arr().ok_or("bind entry is not a pair")?;
                    let (Some(name), Some(v)) = (
                        p.first().and_then(Json::as_str),
                        p.get(1).and_then(Json::as_num),
                    ) else {
                        return Err("bind entry is not [name, value]".to_string());
                    };
                    binds.push((name.to_string(), v as i64));
                }
            }
            Ok(Request::Optimize(OptimizeRequest {
                id,
                program,
                nprocs,
                binds,
                plan,
                deadline_ms: num(&doc, "deadline_ms"),
            }))
        }
        Some("stats") => Ok(Request::Stats),
        Some("snapshot") => Ok(Request::Snapshot),
        Some("shutdown") => Ok(Request::Shutdown),
        Some("ping") => Ok(Request::Ping),
        Some(op) => Err(format!("unknown op '{op}'")),
        None => Err("missing 'op'".to_string()),
    }
}

/// Encode a reply as one wire line (no trailing newline).
pub fn encode_reply(reply: &Reply) -> String {
    let doc = match reply {
        Reply::Optimized(r) => Json::obj()
            .set("id", r.id)
            .set("ok", true)
            .set("shard", r.shard)
            .set("queue_us", r.queue_us)
            .set("compile_us", r.compile_us)
            .set("warm", r.warm_hint)
            .set("explain", r.explain.clone()),
        Reply::Error(e) => {
            let mut doc = Json::obj()
                .set("id", e.id)
                .set("ok", false)
                .set("error", e.code.as_str())
                .set("message", e.message.as_str());
            if let Some(ms) = e.retry_after_ms {
                doc = doc.set("retry_after_ms", ms);
            }
            doc
        }
        Reply::Stats(doc) => Json::obj().set("ok", true).set("stats", doc.clone()),
        Reply::Ok(extra) => {
            let mut doc = Json::obj().set("ok", true);
            if let Json::Obj(pairs) = extra {
                for (k, v) in pairs {
                    doc = doc.set(k, v.clone());
                }
            }
            doc
        }
    };
    doc.to_string_compact()
}

/// Decode one reply line (client side).
pub fn decode_reply(line: &str) -> Result<Reply, String> {
    let doc = obs::parse(line).map_err(|e| format!("not JSON: {e}"))?;
    let ok = doc.get("ok").and_then(Json::as_bool).unwrap_or(false);
    if !ok {
        let code = doc
            .get("error")
            .and_then(Json::as_str)
            .and_then(ErrorCode::from_str)
            .ok_or("error reply without a known code")?;
        return Ok(Reply::Error(ErrorReply {
            id: num(&doc, "id").unwrap_or(0),
            code,
            message: doc
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            retry_after_ms: num(&doc, "retry_after_ms"),
        }));
    }
    if let Some(explain) = doc.get("explain") {
        return Ok(Reply::Optimized(OptimizeReply {
            id: num(&doc, "id").unwrap_or(0),
            shard: num(&doc, "shard").unwrap_or(0) as usize,
            explain: explain.clone(),
            queue_us: num(&doc, "queue_us").unwrap_or(0),
            compile_us: num(&doc, "compile_us").unwrap_or(0),
            warm_hint: doc.get("warm").and_then(Json::as_bool).unwrap_or(false),
        }));
    }
    if let Some(stats) = doc.get("stats") {
        return Ok(Reply::Stats(stats.clone()));
    }
    Ok(Reply::Ok(doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimize_request_round_trips() {
        let req = Request::Optimize(OptimizeRequest {
            id: 42,
            program: "program p\nsym n\n".to_string(),
            nprocs: 4,
            binds: vec![("n".to_string(), 48), ("tmax".to_string(), 3)],
            plan: PlanKind::Optimized,
            deadline_ms: Some(250),
        });
        let line = encode_request(&req);
        assert!(!line.contains('\n'), "wire line must be newline-free");
        let back = decode_request(&line).unwrap();
        let Request::Optimize(r) = back else {
            panic!("wrong op")
        };
        assert_eq!(r.id, 42);
        assert_eq!(r.program, "program p\nsym n\n");
        assert_eq!(r.nprocs, 4);
        assert_eq!(
            r.binds,
            vec![("n".to_string(), 48), ("tmax".to_string(), 3)]
        );
        assert_eq!(r.plan, PlanKind::Optimized);
        assert_eq!(r.deadline_ms, Some(250));
    }

    #[test]
    fn error_reply_round_trips_with_retry_hint() {
        let reply = Reply::Error(ErrorReply {
            id: 7,
            code: ErrorCode::Overloaded,
            message: "queue full".to_string(),
            retry_after_ms: Some(3),
        });
        let line = encode_reply(&reply);
        let Reply::Error(e) = decode_reply(&line).unwrap() else {
            panic!("wrong reply kind")
        };
        assert_eq!(e.id, 7);
        assert_eq!(e.code, ErrorCode::Overloaded);
        assert_eq!(e.retry_after_ms, Some(3));
        assert!(e.code.retryable());
        assert!(!ErrorCode::BadRequest.retryable());
    }

    #[test]
    fn explain_payload_survives_the_wire_byte_for_byte() {
        let explain = Json::obj()
            .set("program", "p")
            .set("sites", vec![Json::obj().set("site", 0u64)])
            .set("ok", true);
        let reply = Reply::Optimized(OptimizeReply {
            id: 1,
            shard: 0,
            explain: explain.clone(),
            queue_us: 10,
            compile_us: 20,
            warm_hint: true,
        });
        let Reply::Optimized(r) = decode_reply(&encode_reply(&reply)).unwrap() else {
            panic!("wrong reply kind")
        };
        assert_eq!(
            r.explain.to_string_pretty(),
            explain.to_string_pretty(),
            "explain bytes must survive the wire"
        );
    }

    #[test]
    fn malformed_requests_are_refused_with_reasons() {
        assert!(decode_request("not json").is_err());
        assert!(decode_request("{\"op\":\"optimize\"}").is_err()); // no version
        assert!(decode_request("{\"v\":1}").is_err()); // no op
        assert!(decode_request("{\"v\":99,\"op\":\"ping\"}").is_err());
        assert!(decode_request("{\"v\":1,\"op\":\"warp\"}").is_err());
        // optimize without a program
        assert!(decode_request(
            "{\"v\":1,\"op\":\"optimize\",\"id\":1,\"plan\":\"optimized\",\"nprocs\":4}"
        )
        .is_err());
    }
}
