//! Right-looking LU decomposition without pivoting, columns distributed
//! cyclically (the classic dense-linear-algebra decomposition).
//!
//! At step `k` the scaling phase touches only column `k` — owned by one
//! processor — and every other processor's update phase consumes it: the
//! paper's producer-consumer *counter* pattern (cf. its pivot-broadcast
//! example). The optimizer replaces the scale→update barrier with a
//! counter incremented by `owner(k)`; the carried dependences of the
//! outer `k` loop are alignment-local or covered by the same counters.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale (cyclic columns — the suite default).
pub fn build(scale: Scale) -> Built {
    build_with_dist(scale, dist_cyclic_dim(1))
}

/// Build with an explicit column distribution (used by the distribution
/// ablation: block columns localize the trailing update but idle the
/// processors that finished their columns; cyclic and block-cyclic trade
/// locality for load balance — the classic dense-LA tension).
pub fn build_with_dist(scale: Scale, dist: DistSpec) -> Built {
    let nv = match scale {
        Scale::Test => 12,
        Scale::Small => 48,
        Scale::Full => 192,
    };
    let mut pb = ProgramBuilder::new("lu");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n), sym(n)], dist);

    // Diagonally dominant initialization keeps the factorization stable.
    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.begin_guard(vec![eq0(idx(i0) - idx(j0))]);
    pb.assign(elem(a, [idx(i0), idx(j0)]), ex(8.0) + ival(idx(i0)).sin());
    pb.end();
    pb.begin_guard(vec![ge0(idx(i0) - idx(j0) - 1)]);
    pb.assign(
        elem(a, [idx(i0), idx(j0)]),
        ival(idx(i0) + idx(j0) * 2).sin() * ex(0.25),
    );
    pb.end();
    pb.begin_guard(vec![ge0(idx(j0) - idx(i0) - 1)]);
    pb.assign(
        elem(a, [idx(i0), idx(j0)]),
        ival(idx(i0) * 2 - idx(j0)).cos() * ex(0.25),
    );
    pb.end();
    pb.end();
    pb.end();

    let k = pb.begin_seq("k", con(0), sym(n) - 2);
    // Scale the pivot column (owned entirely by owner(k)).
    let i1 = pb.begin_par("i1", con(1), sym(n) - 1);
    pb.begin_guard(vec![ge0(idx(i1) - idx(k) - 1)]);
    pb.assign(
        elem(a, [idx(i1), idx(k)]),
        arr(a, [idx(i1), idx(k)]) / arr(a, [idx(k), idx(k)]),
    );
    pb.end();
    pb.end();
    // Trailing update (each column owned cyclically).
    let j2 = pb.begin_par("j2", con(1), sym(n) - 1);
    let i2 = pb.begin_seq("i2", con(1), sym(n) - 1);
    pb.begin_guard(vec![ge0(idx(j2) - idx(k) - 1), ge0(idx(i2) - idx(k) - 1)]);
    pb.assign(
        elem(a, [idx(i2), idx(j2)]),
        arr(a, [idx(i2), idx(j2)]) - arr(a, [idx(i2), idx(k)]) * arr(a, [idx(k), idx(j2)]),
    );
    pb.end();
    pb.end();
    pb.end();
    pb.end(); // k

    Built {
        prog: pb.finish(),
        values: vec![(n, nv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pivot_column_broadcast_uses_counters() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        assert_eq!(st.regions, 1, "{st:?}");
        assert!(st.counter_syncs >= 1, "{st:?}");
        // Fork-join pays 2 barriers per outer iteration.
        let fj = spmd_opt::fork_join(&built.prog, &bind).static_stats();
        assert!(st.barriers <= fj.barriers, "{st:?} vs {fj:?}");
    }
}
