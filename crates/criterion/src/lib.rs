//! Offline stand-in for the `criterion` crate.
//!
//! Implements just enough of criterion's API for this workspace's bench
//! targets to compile and produce useful timing lines: `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros. Statistics are a
//! simple mean over `sample_size` samples; when invoked by `cargo test`
//! (`--test` in the args) each benchmark runs a single sample as a smoke
//! check, mirroring criterion's test mode.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Run `f` once per sample, timing each call.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.elapsed.push(t0.elapsed());
        }
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

fn report(label: &str, elapsed: &[Duration]) {
    if elapsed.is_empty() {
        println!("{label:40} (no samples)");
        return;
    }
    let total: Duration = elapsed.iter().sum();
    let mean = total / elapsed.len() as u32;
    let min = elapsed.iter().min().unwrap();
    let max = elapsed.iter().max().unwrap();
    println!(
        "{label:40} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        elapsed.len()
    );
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn effective_samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size
        }
    }

    /// Run one named benchmark.
    pub fn bench_function(&mut self, name: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_one(&name.to_string(), self.effective_samples(), f);
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

fn run_one(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        elapsed: Vec::new(),
    };
    f(&mut b);
    report(label, &b.elapsed);
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.parent.effective_samples(), f);
    }

    /// Run one benchmark with an input parameter.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.parent.effective_samples(), |b| f(b, input));
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one group name with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_each_sample() {
        let mut c = Criterion::default().sample_size(3);
        // In test mode (`cargo test` passes --test) only 1 sample runs;
        // otherwise 3. Either way the closure must run at least once.
        let mut runs = 0;
        c.bench_function("x", |b| b.iter(|| runs += 1));
        assert!(runs >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("central", 4).to_string(), "central/4");
        assert_eq!(BenchmarkId::from_parameter("lu").to_string(), "lu");
    }
}
