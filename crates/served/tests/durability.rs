//! File-level snapshot durability: the shard-facing corruption matrix.
//!
//! `ineq::snapshot` has byte-level tests (exhaustive bit-flip,
//! truncation, schema); these exercise the same matrix through the
//! *shard lifecycle*: a shard pointed at a damaged snapshot must
//! cold-start cleanly — serve correct plans, report the rejection —
//! and never panic, and torn-write residue (leftover temp files) must
//! be ignored by loaders and swept by the next writer.

use served::{OptimizeRequest, PlanKind, Service, ServiceClient, ServiceConfig};
use std::path::{Path, PathBuf};

const TINY: &str = "program tiny\n\
sym n\n\
array A(n) block\n\
array B(n) block\n\
doall i = 0, n-1\n\
  B(i) = A(i) * 2.0\n\
end\n\
doall j = 0, n-1\n\
  A(j) = B(j) + 1.0\n\
end\n";

fn tiny_request(id: u64) -> OptimizeRequest {
    OptimizeRequest {
        id,
        program: TINY.to_string(),
        nprocs: 4,
        binds: vec![("n".to_string(), 24)],
        plan: PlanKind::Optimized,
        deadline_ms: None,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("beoptd-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Produce a valid snapshot at `dir/shard-0.fme` by running a service
/// to warmth and draining it. Returns the snapshot path.
fn write_valid_snapshot(dir: &Path) -> PathBuf {
    let service = Service::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        nshards: 1,
        snapshot_dir: Some(dir.to_path_buf()),
        snapshot_every: 0,
        ..Default::default()
    })
    .unwrap();
    let client = ServiceClient::new(service.addr.to_string());
    client.optimize(&tiny_request(1)).unwrap();
    service.stop();
    service.wait();
    let snap = dir.join("shard-0.fme");
    assert!(snap.is_file());
    snap
}

/// Start a one-shard service over `dir`, compile once, and return
/// `(warm_hint, entries_loaded, cold_starts, snapshot_rejects,
/// last_reject)` — the shard's verdict on whatever `dir` held.
fn boot_and_probe(dir: &Path) -> (bool, u64, u64, u64, Option<String>) {
    let service = Service::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        nshards: 1,
        snapshot_dir: Some(dir.to_path_buf()),
        snapshot_every: 0,
        ..Default::default()
    })
    .unwrap();
    let client = ServiceClient::new(service.addr.to_string());
    let reply = client.optimize(&tiny_request(1)).unwrap();
    service.stop();
    service.wait();
    let st = &service.stats().shards[0];
    (
        reply.warm_hint,
        st.entries_loaded,
        st.cold_starts,
        st.snapshot_rejects,
        st.last_reject.clone(),
    )
}

#[test]
fn valid_snapshot_rejoins_warm() {
    let dir = tmp_dir("valid");
    write_valid_snapshot(&dir);
    let (warm, loaded, cold, rejects, reject) = boot_and_probe(&dir);
    assert!(warm, "rejoined shard must serve the same program warm");
    assert!(loaded > 0);
    assert_eq!((cold, rejects), (0, 0));
    assert_eq!(reject, None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_snapshot_cold_starts_silently() {
    let dir = tmp_dir("missing");
    let (warm, loaded, cold, rejects, reject) = boot_and_probe(&dir);
    assert!(!warm);
    assert_eq!((loaded, cold, rejects), (0, 1, 0));
    assert_eq!(reject, None, "a missing file is a first boot, not damage");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The corruption matrix: each damage shape must produce a clean,
/// reported cold start — never a panic, never a partial load.
#[test]
fn damaged_snapshots_cold_start_with_a_reported_reason() {
    let damage: &[(&str, fn(&Path))] = &[
        ("truncated", |p| {
            let bytes = std::fs::read(p).unwrap();
            std::fs::write(p, &bytes[..bytes.len() / 2]).unwrap();
        }),
        ("header bit-flip", |p| {
            let mut bytes = std::fs::read(p).unwrap();
            bytes[3] ^= 0x10; // inside the magic
            std::fs::write(p, bytes).unwrap();
        }),
        ("body bit-flip", |p| {
            let mut bytes = std::fs::read(p).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(p, bytes).unwrap();
        }),
        ("schema version from the future", |p| {
            let mut bytes = std::fs::read(p).unwrap();
            bytes[8..12].copy_from_slice(&(ineq::SNAPSHOT_SCHEMA_VERSION + 7).to_le_bytes());
            std::fs::write(p, bytes).unwrap();
        }),
        ("zero-length", |p| {
            std::fs::write(p, b"").unwrap();
        }),
        ("trailing garbage", |p| {
            let mut bytes = std::fs::read(p).unwrap();
            bytes.extend_from_slice(b"junk");
            std::fs::write(p, bytes).unwrap();
        }),
    ];
    for (what, damage_fn) in damage {
        let dir = tmp_dir("matrix");
        let snap = write_valid_snapshot(&dir);
        damage_fn(&snap);
        let (warm, loaded, cold, rejects, reject) = boot_and_probe(&dir);
        assert!(!warm, "{what}: damaged snapshot must not warm anything");
        assert_eq!((loaded, cold, rejects), (0, 1, 1), "{what}");
        assert!(
            reject.is_some(),
            "{what}: the rejection must carry a reason"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Torn-write residue: a leftover temp file (writer killed mid-write)
/// must never be loaded, must not block the real snapshot, and must be
/// swept by the next successful write.
#[test]
fn leftover_temp_files_are_ignored_and_swept() {
    let dir = tmp_dir("tempfile");
    let snap = write_valid_snapshot(&dir);
    let stale = dir.join("shard-0.fme.tmp.12345");
    std::fs::write(&stale, b"half a snapshot, killed mid-write").unwrap();

    // Loading reads only the real snapshot and leaves the residue be.
    let cache = ineq::FmeCache::new();
    assert!(ineq::load_snapshot(&cache, &snap).entries() > 0);
    assert!(stale.is_file(), "loading must not touch the residue");

    // A full service lifecycle over the directory rejoins warm despite
    // the residue, and its drain-time snapshot write sweeps it.
    let (warm, loaded, _, rejects, _) = boot_and_probe(&dir);
    assert!(warm);
    assert!(loaded > 0);
    assert_eq!(rejects, 0);
    assert!(
        !stale.exists(),
        "the next successful write must sweep stale temps"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
