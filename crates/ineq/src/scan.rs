//! Scanning polyhedra with do-loops (Ancourt & Irigoin, PPoPP'91).
//!
//! Given a consistent system and an ordered list of loop variables, this
//! module derives, for each variable, the set of affine lower/upper bound
//! expressions (with divisors) in terms of *outer* variables only — the
//! exact shape a code generator needs to emit a perfectly nested loop that
//! scans the integer points of the polyhedron.

use crate::linexpr::LinExpr;
use crate::rational::{div_ceil, div_floor};
use crate::system::System;
use crate::var::{VarId, VarTable};

/// One bound of a loop variable: `expr / div` with `div > 0`.
///
/// For a lower bound the loop should start at `ceil(expr / div)`, for an
/// upper bound it should stop at `floor(expr / div)`.
#[derive(Clone, Debug)]
pub struct BoundExpr {
    /// Numerator expression over outer variables.
    pub expr: LinExpr,
    /// Positive divisor.
    pub div: i128,
}

impl BoundExpr {
    /// Evaluate as a lower bound (`ceil`).
    pub fn eval_lower(&self, assign: &dyn Fn(VarId) -> i128) -> i128 {
        div_ceil(self.expr.eval_int(assign), self.div)
    }

    /// Evaluate as an upper bound (`floor`).
    pub fn eval_upper(&self, assign: &dyn Fn(VarId) -> i128) -> i128 {
        div_floor(self.expr.eval_int(assign), self.div)
    }
}

/// The complete bound set for one loop variable.
#[derive(Clone, Debug)]
pub struct VarBounds {
    /// The variable being bounded.
    pub var: VarId,
    /// Lower bounds; the loop starts at the max of their ceilings.
    pub lowers: Vec<BoundExpr>,
    /// Upper bounds; the loop stops at the min of their floors.
    pub uppers: Vec<BoundExpr>,
}

impl VarBounds {
    /// The inclusive integer range of `var` under `assign` for the outer
    /// variables; `None` when empty.
    pub fn range(&self, assign: &dyn Fn(VarId) -> i128) -> Option<(i128, i128)> {
        let lo = self
            .lowers
            .iter()
            .map(|b| b.eval_lower(assign))
            .max()
            .unwrap_or(i128::MIN);
        let hi = self
            .uppers
            .iter()
            .map(|b| b.eval_upper(assign))
            .min()
            .unwrap_or(i128::MAX);
        if lo <= hi {
            Some((lo, hi))
        } else {
            None
        }
    }
}

/// Extract the bound expressions of `v` from `sys`. Constraints not
/// involving `v` are ignored; constraints involving `v` must only mention
/// `v` and variables assigned before it (the caller guarantees this by
/// projecting appropriately).
pub fn bounds_of(sys: &System, v: VarId) -> VarBounds {
    let mut lowers = Vec::new();
    let mut uppers = Vec::new();
    for c in sys.constraints() {
        let a = c.expr.coeff(v);
        if a == 0 {
            continue;
        }
        let mut rest = c.expr.clone();
        rest.set_coeff(v, 0);
        use crate::constraint::ConstraintKind::*;
        match (c.kind, a > 0) {
            // a*v + rest >= 0, a > 0  =>  v >= -rest/a
            (GeZero, true) => lowers.push(BoundExpr {
                expr: -rest,
                div: a,
            }),
            // a*v + rest >= 0, a < 0  =>  v <= rest/(-a)
            (GeZero, false) => uppers.push(BoundExpr {
                expr: rest,
                div: -a,
            }),
            (EqZero, up) => {
                let (abs, sign) = (a.abs(), if up { 1 } else { -1 });
                let e = rest.scaled(-sign);
                lowers.push(BoundExpr {
                    expr: e.clone(),
                    div: abs,
                });
                uppers.push(BoundExpr { expr: e, div: abs });
            }
        }
    }
    VarBounds {
        var: v,
        lowers,
        uppers,
    }
}

/// Derive nested-loop bounds for `ordered` (outermost first): for the
/// k-th variable, all variables ordered after it are projected away, so
/// its bounds mention only earlier variables and the free symbolics.
pub fn loop_nest_bounds(sys: &System, vt: &VarTable, ordered: &[VarId]) -> Vec<VarBounds> {
    let mut out = Vec::with_capacity(ordered.len());
    for (k, &v) in ordered.iter().enumerate() {
        let mut proj = sys.clone();
        for &inner in &ordered[k + 1..] {
            proj = proj.eliminate(inner);
        }
        // Also drop any stray variables that are neither v, outer loop
        // vars, nor free symbolics mentioned by the original system.
        let keep: Vec<VarId> = ordered[..=k].to_vec();
        let stray: Vec<VarId> = proj
            .vars()
            .into_iter()
            .filter(|x| !keep.contains(x) && ordered.contains(x))
            .collect();
        for s in stray {
            proj = proj.eliminate(s);
        }
        let _ = vt;
        out.push(bounds_of(&proj, v));
    }
    out
}

/// Enumerate every integer point of the polyhedron described by `sys`
/// over `ordered` variables (outermost first), with `outer` providing
/// values for free symbolics. Exponential; intended for tests, oracles,
/// and the reference interpreter on small spaces.
pub fn enumerate_points(
    sys: &System,
    vt: &VarTable,
    ordered: &[VarId],
    outer: &dyn Fn(VarId) -> i128,
) -> Vec<Vec<i128>> {
    let nests = loop_nest_bounds(sys, vt, ordered);
    let mut out = Vec::new();
    let mut point: Vec<(VarId, i128)> = Vec::new();
    fn rec(
        nests: &[VarBounds],
        depth: usize,
        point: &mut Vec<(VarId, i128)>,
        outer: &dyn Fn(VarId) -> i128,
        sys: &System,
        out: &mut Vec<Vec<i128>>,
    ) {
        let lookup = |point: &Vec<(VarId, i128)>, v: VarId| -> i128 {
            point
                .iter()
                .rev()
                .find(|(pv, _)| *pv == v)
                .map(|(_, x)| *x)
                .unwrap_or_else(|| outer(v))
        };
        if depth == nests.len() {
            // Validate against the original system (bounds are an
            // over-approximation when divisors were involved).
            let assign = |v: VarId| lookup(point, v);
            if sys.constraints().iter().all(|c| c.holds_int(&assign)) {
                out.push(point.iter().map(|(_, x)| *x).collect());
            }
            return;
        }
        let nb = &nests[depth];
        let assign = |v: VarId| lookup(point, v);
        if let Some((lo, hi)) = nb.range(&assign) {
            for x in lo..=hi {
                point.push((nb.var, x));
                rec(nests, depth + 1, point, outer, sys, out);
                point.pop();
            }
        }
    }
    rec(&nests, 0, &mut point, outer, sys, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarKind;

    #[test]
    fn rectangle_bounds() {
        let mut vt = VarTable::new();
        let i = vt.fresh("i", VarKind::LoopIndex);
        let j = vt.fresh("j", VarKind::LoopIndex);
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(1), LinExpr::constant(3));
        s.add_range(LinExpr::var(j), LinExpr::constant(0), LinExpr::constant(1));
        let pts = enumerate_points(&s, &vt, &[i, j], &|_| panic!("no outer vars"));
        assert_eq!(pts.len(), 6);
        assert!(pts.contains(&vec![1, 0]));
        assert!(pts.contains(&vec![3, 1]));
    }

    #[test]
    fn triangle_bounds_depend_on_outer() {
        let mut vt = VarTable::new();
        let i = vt.fresh("i", VarKind::LoopIndex);
        let j = vt.fresh("j", VarKind::LoopIndex);
        // 1 <= i <= 3, 1 <= j <= i
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(1), LinExpr::constant(3));
        s.add_range(LinExpr::var(j), LinExpr::constant(1), LinExpr::var(i));
        let pts = enumerate_points(&s, &vt, &[i, j], &|_| unreachable!());
        assert_eq!(pts.len(), 1 + 2 + 3);
    }

    #[test]
    fn symbolic_outer_bound() {
        let mut vt = VarTable::new();
        let n = vt.fresh("n", VarKind::Symbolic);
        let i = vt.fresh("i", VarKind::LoopIndex);
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(1), LinExpr::var(n));
        let pts = enumerate_points(&s, &vt, &[i], &|v| if v == n { 4 } else { panic!() });
        assert_eq!(pts.len(), 4);
    }

    #[test]
    fn divisor_bounds_round_correctly() {
        let mut vt = VarTable::new();
        let i = vt.fresh("i", VarKind::LoopIndex);
        // 2i >= 3 and 2i <= 9  =>  i in {2,3,4}
        let mut s = System::new();
        s.add_ge(LinExpr::term(i, 2) - LinExpr::constant(3));
        s.add_ge(LinExpr::constant(9) - LinExpr::term(i, 2));
        let b = bounds_of(&s, i);
        let r = b.range(&|_| unreachable!()).unwrap();
        assert_eq!(r, (2, 4));
    }

    #[test]
    fn empty_polyhedron_enumerates_nothing() {
        let mut vt = VarTable::new();
        let i = vt.fresh("i", VarKind::LoopIndex);
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(5), LinExpr::constant(2));
        let pts = enumerate_points(&s, &vt, &[i], &|_| unreachable!());
        assert!(pts.is_empty());
    }
}
