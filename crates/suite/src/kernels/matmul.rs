//! Dense matrix multiply with row-owned output and a replicated right
//! operand — after the decomposition pass there is no inter-processor
//! data flow at all, so every barrier between the init loops and the
//! compute loop is eliminated (the BLAS-3 best case).

use crate::{Built, Scale};
use ir::build::*;
use ir::RedOp;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let nv = match scale {
        Scale::Test => 10,
        Scale::Small => 48,
        Scale::Full => 256,
    };
    let mut pb = ProgramBuilder::new("matmul");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n), sym(n)], dist_block());
    let b = pb.array("B", &[sym(n), sym(n)], dist_repl());
    let c = pb.array("C", &[sym(n), sym(n)], dist_block());

    // A and C row-distributed; B replicated (every processor initializes
    // its copy — here one shared copy written identically, which the
    // analysis treats as a replicated computation).
    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(a, [idx(i0), idx(j0)]),
        ival(idx(i0) + idx(j0) * 2).sin(),
    );
    pb.assign(elem(c, [idx(i0), idx(j0)]), ex(0.0));
    pb.end();
    pb.end();
    // B init: index-partitioned loop writing the replicated array; the
    // paper would replicate it — we let the block-index partition write
    // disjoint rows, and readers need the values of all rows, which is
    // aligned here because the compute loop is also row-partitioned by C.
    let i0b = pb.begin_par("i0b", con(0), sym(n) - 1);
    let j0b = pb.begin_seq("j0b", con(0), sym(n) - 1);
    pb.assign(
        elem(b, [idx(i0b), idx(j0b)]),
        ival(idx(i0b) * 2 - idx(j0b)).cos(),
    );
    pb.end();
    pb.end();

    // C(i,j) += A(i,k) * B(k,j): all reads of A are row-local; reads of
    // B cross rows, so the init(B) → compute barrier must stay.
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    let j = pb.begin_seq("j", con(0), sym(n) - 1);
    let kk = pb.begin_seq("kk", con(0), sym(n) - 1);
    pb.reduce(
        elem(c, [idx(i), idx(j)]),
        RedOp::Add,
        arr(a, [idx(i), idx(kk)]) * arr(b, [idx(kk), idx(j)]),
    );
    pb.end();
    pb.end();
    pb.end();

    // Post-processing chain on C (all aligned → barriers eliminated).
    let i4 = pb.begin_par("i4", con(0), sym(n) - 1);
    let j4 = pb.begin_seq("j4", con(0), sym(n) - 1);
    pb.assign(
        elem(c, [idx(i4), idx(j4)]),
        arr(c, [idx(i4), idx(j4)]) * ex(0.5),
    );
    pb.end();
    pb.end();
    let i5 = pb.begin_par("i5", con(0), sym(n) - 1);
    let j5 = pb.begin_seq("j5", con(0), sym(n) - 1);
    pb.assign(
        elem(a, [idx(i5), idx(j5)]),
        arr(c, [idx(i5), idx(j5)]) + arr(a, [idx(i5), idx(j5)]),
    );
    pb.end();
    pb.end();

    Built {
        prog: pb.finish(),
        values: vec![(n, nv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_phases_lose_their_barriers() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let opt = spmd_opt::optimize(&built.prog, &bind).static_stats();
        let fj = spmd_opt::fork_join(&built.prog, &bind).static_stats();
        assert_eq!(opt.regions, 1);
        assert!(opt.eliminated >= 2, "{opt:?}");
        assert!(opt.barriers < fj.barriers, "{opt:?} vs {fj:?}");
    }
}
