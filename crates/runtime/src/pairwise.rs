//! Point-to-point pairwise synchronization from dependence distance
//! vectors.
//!
//! Where neighbor flags cover |q - p| = 1, pairwise cells cover any
//! small fixed set of processor distances (and identifiable producers):
//! at a pairwise sync point *every* processor posts its own monotonic
//! cell, then waits only for the cells of the processors its wait
//! targets name. The SPMD traversal is replicated, so all processors
//! pass the same pairwise sites in the same order and per-pid post
//! counts stay aligned — a wait for `cell[q - d] >= my own post count`
//! is exactly "producer `q - d` has passed this sync point as often as
//! I have". Only communicating pairs touch each other's cache lines,
//! and loop-carried placements pipeline into a wavefront: processor
//! `q - d` may already be an iteration ahead while `q` catches up.

use crate::fault::{SyncError, WaitPoll, Watchdog};
use crate::spin::{SpinPolicy, SpinWait};
use crate::stats::{SyncKind, SyncStats};
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-processor monotonic post cells for pairwise synchronization.
pub struct PairwiseCells {
    cells: Vec<CachePadded<AtomicU64>>,
    policy: SpinPolicy,
    stats: Option<Arc<SyncStats>>,
}

impl PairwiseCells {
    /// Cells for `n` processors, all at count zero.
    pub fn new(n: usize) -> Self {
        PairwiseCells {
            cells: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            policy: SpinPolicy::auto(),
            stats: None,
        }
    }

    /// Attach instrumentation.
    pub fn with_stats(mut self, stats: Arc<SyncStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Override the spin → yield → park escalation policy.
    pub fn with_policy(mut self, policy: SpinPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.cells.len()
    }

    /// Post: processor `pid` announces it passed a pairwise sync point
    /// (release).
    pub fn post(&self, pid: usize) {
        self.cells[pid].fetch_add(1, Ordering::Release);
        if let Some(s) = &self.stats {
            s.pairwise_post();
        }
    }

    /// Wait until processor `other`'s cell reaches `count` (acquire).
    /// Out-of-range targets (off the ends of the processor line) and
    /// self-waits are trivially satisfied.
    pub fn wait(&self, other: isize, count: u64) {
        if other < 0 || other as usize >= self.cells.len() {
            return;
        }
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        let mut sw = SpinWait::new(self.policy);
        while self.cells[other as usize].load(Ordering::Acquire) < count {
            sw.snooze();
        }
        if let Some(s) = &self.stats {
            s.escalation(sw.effort());
            if let Some(t0) = t0 {
                s.pairwise_wait(t0.elapsed());
            }
        }
    }

    /// As [`PairwiseCells::wait`], but guarded: returns
    /// [`SyncError::DeadlineExceeded`] (attributed to `site`/`pid`)
    /// instead of hanging when the target's post never lands, and bails
    /// out on region poison.
    pub fn wait_until(
        &self,
        other: isize,
        count: u64,
        wd: &Watchdog,
        site: usize,
        pid: usize,
    ) -> Result<(), SyncError> {
        if other < 0 || other as usize >= self.cells.len() {
            return Ok(());
        }
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        let cell = &self.cells[other as usize];
        let effort = wd.guarded_wait(site, pid, SyncKind::Pairwise, count, self.policy, || {
            let cur = cell.load(Ordering::Acquire);
            if cur >= count {
                WaitPoll::Ready
            } else {
                WaitPoll::Pending(cur)
            }
        })?;
        if let Some(s) = &self.stats {
            s.escalation(effort);
            if let Some(t0) = t0 {
                s.pairwise_wait(t0.elapsed());
            }
        }
        Ok(())
    }

    /// Current post count of a processor's cell.
    pub fn count(&self, pid: usize) -> u64 {
        self.cells[pid].load(Ordering::Acquire)
    }

    /// Reset all cells (only between regions).
    pub fn reset(&self) {
        for c in &self.cells {
            c.store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-processor wavefront at distance 2: each processor waits on
    /// `pid - 2` before appending to the log, so within every step the
    /// pair (0,2) and the pair (1,3) are ordered, while 0/1 (no wait
    /// target) proceed freely.
    #[test]
    fn distance_two_wavefront_orders_pairs() {
        let n = 4;
        let c = Arc::new(PairwiseCells::new(n));
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..n)
            .map(|pid| {
                let c = Arc::clone(&c);
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for step in 1..=50u64 {
                        c.wait(pid as isize - 2, step);
                        log.lock().push((step, pid));
                        c.post(pid);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let log = log.lock();
        for step in 1..=50u64 {
            let order: Vec<usize> = log
                .iter()
                .filter(|(s, _)| *s == step)
                .map(|(_, p)| *p)
                .collect();
            let pos = |p: usize| order.iter().position(|&x| x == p).unwrap();
            assert!(pos(0) < pos(2), "step {step}: {order:?}");
            assert!(pos(1) < pos(3), "step {step}: {order:?}");
        }
    }

    #[test]
    fn out_of_range_targets_do_not_block() {
        let c = PairwiseCells::new(2);
        c.wait(-3, u64::MAX);
        c.wait(5, u64::MAX);
    }

    #[test]
    fn guarded_wait_bounds_a_missing_post() {
        use std::time::Duration;
        let wd = Watchdog::new(Duration::from_millis(40));
        let c = PairwiseCells::new(3);
        c.post(1);
        assert_eq!(c.wait_until(1, 1, &wd, 7, 0), Ok(()));
        assert_eq!(c.wait_until(-1, 99, &wd, 7, 0), Ok(()));
        assert_eq!(c.wait_until(3, 99, &wd, 7, 2), Ok(()));
        let err = c.wait_until(2, 1, &wd, 7, 1).unwrap_err();
        assert_eq!(
            err,
            SyncError::DeadlineExceeded {
                site: 7,
                pid: 1,
                kind: SyncKind::Pairwise,
                expected: 1,
                observed: 0,
            }
        );
    }

    #[test]
    fn stats_and_reset() {
        let stats = Arc::new(SyncStats::new());
        let c = PairwiseCells::new(2).with_stats(Arc::clone(&stats));
        c.post(0);
        c.wait(0, 1);
        assert_eq!(stats.pairwise_posts_count(), 1);
        assert_eq!(stats.pairwise_waits_count(), 1);
        c.reset();
        assert_eq!(c.count(0), 0);
    }
}
