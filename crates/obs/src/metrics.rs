//! Per-sync-site metrics: the JSON document behind
//! `beopt --run --metrics-json` and the human-readable per-site table.

use crate::json::Json;
use runtime::stats::StatsSnapshot;
use runtime::telemetry::{SiteSnapshot, WaitHistogram, HIST_BUCKETS};

fn hist_json(hist: &[u64; HIST_BUCKETS]) -> Json {
    // Sparse: only non-empty buckets, as {"floor_ns": count} pairs in
    // bucket order (deterministic).
    let mut j = Json::obj();
    for (k, &c) in hist.iter().enumerate() {
        if c > 0 {
            j = j.set(&WaitHistogram::bucket_floor(k).to_string(), c);
        }
    }
    j
}

fn cell_json(c: &runtime::telemetry::CellSnapshot) -> Json {
    Json::obj()
        .set("ops", c.ops)
        .set("waits", c.waits)
        .set("wait_ns", c.wait_ns)
        .set("max_wait_ns", c.max_wait_ns)
        .set("hist", hist_json(&c.hist))
}

fn totals_json(s: &StatsSnapshot) -> Json {
    Json::obj()
        .set(
            "barrier",
            Json::obj()
                .set("episodes", s.barrier_episodes)
                .set("arrivals", s.barrier_arrivals)
                .set("wait_ns", s.barrier_wait_ns)
                .set("max_wait_ns", s.barrier_max_wait_ns),
        )
        .set(
            "counter",
            Json::obj()
                .set("increments", s.counter_increments)
                .set("waits", s.counter_waits)
                .set("wait_ns", s.counter_wait_ns)
                .set("max_wait_ns", s.counter_max_wait_ns),
        )
        .set(
            "neighbor",
            Json::obj()
                .set("posts", s.neighbor_posts)
                .set("waits", s.neighbor_waits)
                .set("wait_ns", s.neighbor_wait_ns)
                .set("max_wait_ns", s.neighbor_max_wait_ns),
        )
        .set(
            "escalation",
            Json::obj()
                .set("spin_rounds", s.spin_rounds)
                .set("yield_rounds", s.yield_rounds)
                .set("parks", s.parks),
        )
}

/// The metrics document: per-site per-processor wait telemetry plus the
/// run's aggregate [`StatsSnapshot`].
pub fn metrics_json(
    program: &str,
    nprocs: usize,
    sites: &[SiteSnapshot],
    totals: &StatsSnapshot,
) -> Json {
    let site_arr: Vec<Json> = sites
        .iter()
        .map(|s| {
            Json::obj()
                .set("site", s.meta.id)
                .set("slot", s.meta.kind.as_str())
                .set("label", s.meta.label.as_str())
                .set("sync", s.meta.op.as_str())
                .set("total", cell_json(&s.total))
                .set(
                    "per_proc",
                    Json::Arr(s.per_proc.iter().map(cell_json).collect()),
                )
        })
        .collect();
    Json::obj()
        .set("program", program)
        .set("nprocs", nprocs)
        .set("sites", Json::Arr(site_arr))
        .set("totals", totals_json(totals))
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Human-readable per-site wait table (what `beopt --run` prints when
/// metrics are enabled). Sites with no activity are listed with zeros so
/// eliminated slots are visibly free.
pub fn render_site_table(sites: &[SiteSnapshot]) -> String {
    let mut out = String::new();
    out.push_str("--- per-sync-site telemetry ---\n");
    out.push_str(&format!(
        "{:<5} {:<14} {:<34} {:>8} {:>8} {:>12} {:>12}\n",
        "site", "sync", "label", "ops", "waits", "wait", "max-wait"
    ));
    for s in sites {
        out.push_str(&format!(
            "s{:<4} {:<14} {:<34} {:>8} {:>8} {:>12} {:>12}\n",
            s.meta.id,
            s.meta.op,
            s.meta.label,
            s.total.ops,
            s.total.waits,
            fmt_ns(s.total.wait_ns),
            fmt_ns(s.total.max_wait_ns),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::telemetry::{SiteMeta, SiteTelemetry};

    fn sample() -> Vec<SiteSnapshot> {
        let t = SiteTelemetry::new(
            vec![
                SiteMeta {
                    id: 0,
                    kind: "phase-after".into(),
                    label: "after DOALL i [n1]".into(),
                    op: "neighbor flags".into(),
                },
                SiteMeta {
                    id: 1,
                    kind: "region-end".into(),
                    label: "end of region r0".into(),
                    op: "barrier".into(),
                },
            ],
            2,
        );
        t.cell(0, 0).op();
        t.cell(0, 0).wait(1500);
        t.cell(1, 1).op();
        t.cell(1, 1).wait(3_000_000);
        t.snapshot()
    }

    #[test]
    fn metrics_document_carries_histograms() {
        let sites = sample();
        let doc = metrics_json("jacobi", 2, &sites, &StatsSnapshot::default());
        let arr = doc.get("sites").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        let hist = arr[0].get("total").unwrap().get("hist").unwrap();
        // 1500ns lands in the [1024, 2048) bucket.
        assert_eq!(hist.get("1024").unwrap().as_u64(), Some(1));
        let pp = arr[0].get("per_proc").unwrap().as_arr().unwrap();
        assert_eq!(pp.len(), 2);
        assert_eq!(pp[0].get("waits").unwrap().as_u64(), Some(1));
        assert_eq!(pp[1].get("waits").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn totals_carry_escalation_counters() {
        let totals = StatsSnapshot {
            spin_rounds: 12,
            yield_rounds: 3,
            parks: 1,
            ..StatsSnapshot::default()
        };
        let doc = metrics_json("jacobi", 2, &[], &totals);
        let esc = doc.get("totals").unwrap().get("escalation").unwrap();
        assert_eq!(esc.get("spin_rounds").unwrap().as_u64(), Some(12));
        assert_eq!(esc.get("yield_rounds").unwrap().as_u64(), Some(3));
        assert_eq!(esc.get("parks").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn table_lists_every_site() {
        let sites = sample();
        let table = render_site_table(&sites);
        assert!(table.contains("after DOALL i [n1]"));
        assert!(table.contains("end of region r0"));
        assert!(table.contains("3.00ms"));
        assert!(table.contains("1.50us"));
    }
}
