//! Edge cases: more processors than iterations, zero-trip loops, unit
//! problem sizes, and processor counts that do not divide extents.

use barrier_elim::analysis::Bindings;
use barrier_elim::interp::{run_sequential, run_virtual, Mem, ScheduleOrder};
use barrier_elim::ir::build::*;
use barrier_elim::ir::Program;
use barrier_elim::spmd_opt::{fork_join, optimize};

fn check_all(prog: &Program, bind: &Bindings) {
    let oracle = Mem::new(prog, bind);
    run_sequential(prog, bind, &oracle);
    for plan in [fork_join(prog, bind), optimize(prog, bind)] {
        for order in [
            ScheduleOrder::RoundRobin,
            ScheduleOrder::Reverse,
            ScheduleOrder::Random(13),
        ] {
            let mem = Mem::new(prog, bind);
            run_virtual(prog, bind, &plan, &mem, order);
            assert_eq!(
                mem.max_abs_diff(&oracle),
                0.0,
                "P={} {order:?}",
                bind.nprocs
            );
        }
    }
}

fn stencil_prog() -> (Program, barrier_elim::ir::SymId, barrier_elim::ir::SymId) {
    let mut pb = ProgramBuilder::new("edge");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let a = pb.array("A", &[sym(n) + 2], dist_block());
    let b = pb.array("B", &[sym(n) + 2], dist_block());
    let i0 = pb.begin_par("i0", con(0), sym(n) + 1);
    pb.assign(elem(a, [idx(i0)]), ival(idx(i0)).sin());
    pb.end();
    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);
    let i = pb.begin_par("i", con(1), sym(n));
    pb.assign(
        elem(b, [idx(i)]),
        ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
    );
    pb.end();
    let j = pb.begin_par("j", con(1), sym(n));
    pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
    pb.end();
    pb.end();
    (pb.finish(), n, tmax)
}

#[test]
fn more_processors_than_iterations() {
    let (prog, n, tmax) = stencil_prog();
    // 3 interior points, 8 processors.
    let bind = Bindings::new(8).set(n, 3).set(tmax, 4);
    check_all(&prog, &bind);
}

#[test]
fn single_interior_point() {
    let (prog, n, tmax) = stencil_prog();
    let bind = Bindings::new(4).set(n, 1).set(tmax, 3);
    check_all(&prog, &bind);
}

#[test]
fn zero_trip_time_loop() {
    let (prog, n, tmax) = stencil_prog();
    let bind = Bindings::new(4).set(n, 8).set(tmax, 0);
    let oracle = Mem::new(&prog, &bind);
    run_sequential(&prog, &bind, &oracle);
    let plan = optimize(&prog, &bind);
    let mem = Mem::new(&prog, &bind);
    let out = run_virtual(&prog, &bind, &plan, &mem, ScheduleOrder::Reverse);
    assert_eq!(mem.max_abs_diff(&oracle), 0.0);
    // Only the init phase ran; the region end barrier still fires once.
    assert!(out.counts.barriers <= 1);
}

#[test]
fn non_dividing_processor_counts() {
    let (prog, n, tmax) = stencil_prog();
    for p in [3i64, 5, 7] {
        let bind = Bindings::new(p).set(n, 29).set(tmax, 3);
        check_all(&prog, &bind);
    }
}

#[test]
fn single_processor_degenerates_gracefully() {
    let (prog, n, tmax) = stencil_prog();
    let bind = Bindings::new(1).set(n, 16).set(tmax, 3);
    check_all(&prog, &bind);
    // With one processor every pattern is local: all interior syncs can
    // be eliminated or trivially satisfied — still sound either way.
    let st = optimize(&prog, &bind).static_stats();
    assert!(st.barriers >= 1);
}

#[test]
fn cyclic_with_more_processors_than_elements() {
    let mut pb = ProgramBuilder::new("tinycyc");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n)], dist_cyclic());
    let b = pb.array("B", &[sym(n)], dist_cyclic());
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i)]), ival(idx(i) * 2).cos());
    pb.end();
    let j = pb.begin_par("j", con(0), sym(n) - 1);
    pb.assign(elem(b, [idx(j)]), arr(a, [idx(j)]) * ex(3.0));
    pb.end();
    let prog = pb.finish();
    let bind = Bindings::new(8).set(n, 3);
    check_all(&prog, &bind);
}

#[test]
fn guard_that_never_fires() {
    let mut pb = ProgramBuilder::new("deadguard");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n)], dist_block());
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.begin_guard(vec![ge0(idx(i) - sym(n))]); // i >= n: never
    pb.assign(elem(a, [idx(i)]), ex(99.0));
    pb.end();
    pb.assign(elem(a, [idx(i)]), ival(idx(i)));
    pb.end();
    let prog = pb.finish();
    let bind = Bindings::new(4).set(n, 8);
    check_all(&prog, &bind);
    let mem = Mem::new(&prog, &bind);
    run_sequential(&prog, &bind, &mem);
    assert_eq!(mem.array(a).get(&[5]), 5.0);
}

#[test]
fn empty_parallel_loop_body_range() {
    // Parallel loop with an empty range (lo > hi) sandwiched between
    // phases: no work, no crash, syncs still line up.
    let mut pb = ProgramBuilder::new("emptyrange");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n)], dist_block());
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i)]), ex(1.0));
    pb.end();
    let j = pb.begin_par("j", con(5), con(2)); // empty
    pb.assign(elem(a, [idx(j)]), ex(2.0));
    pb.end();
    let k = pb.begin_par("k", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(k)]), arr(a, [idx(k)]) + ex(1.0));
    pb.end();
    let prog = pb.finish();
    let bind = Bindings::new(4).set(n, 8);
    check_all(&prog, &bind);
}
