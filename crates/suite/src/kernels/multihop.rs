//! Multi-hop shift chain: a two-phase time loop whose communication is
//! a fixed shift by *half the array* — exactly two ownership blocks at
//! four processors. Every cross-processor pair sits at |q - p| = 2, so
//! neighbor flags are unsound and the pre-distance-vector optimizer
//! fell off the cliff to `General` (kept the barrier). With the
//! distance-vector classification both the inter-phase site (+2) and
//! the loop bottom (-2, the anti dependence) become single-hop
//! pairwise counters.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (16, 3),
        Scale::Small => (512, 10),
        Scale::Full => (4096, 24),
    };
    let mut pb = ProgramBuilder::new("multihop");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let a = pb.array("A", &[sym(n)], dist_block());
    let b = pb.array("B", &[sym(n)], dist_block());
    // Shift by two ownership blocks at 4 processors.
    let off = nv / 2;

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i0)]), ival(idx(i0) * 11).sin());
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.assign(elem(b, [idx(i)]), arr(a, [idx(i)]) * ex(0.5) + ex(1.0));
    pb.end();
    let j = pb.begin_par("j", con(off), sym(n) - 1);
    pb.assign(elem(a, [idx(j)]), arr(b, [idx(j) - off]) * ex(0.75));
    pb.end();
    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_block_shift_is_pairwise_not_barrier() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        assert_eq!(st.regions, 1, "{st:?}");
        // Both the inter-phase shift (+2) and the carried anti
        // dependence (-2) are out of neighbor reach but exactly
        // expressible as pairwise distances.
        assert!(st.pair_syncs >= 2, "{st:?}");
        assert_eq!(st.neighbor_syncs, 0, "{st:?}");
        assert!(st.barriers <= 2, "{st:?}");
    }
}
