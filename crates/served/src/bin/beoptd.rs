//! `beoptd` — the barrier-elimination optimization daemon.
//!
//! Serves `optimize` / `fork-join` plan requests over newline-delimited
//! JSON on TCP, with a supervised shard pool, persistent checksummed
//! FME-memo snapshots, per-request deadlines, and load shedding.
//!
//! ```text
//! beoptd [--addr HOST:PORT] [--shards N] [--queue-cap N]
//!        [--snapshot-dir DIR] [--snapshot-every N] [--feas-cap N]
//!        [--deadline-ms N]
//! ```

use served::{Service, ServiceConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: beoptd [--addr HOST:PORT] [--shards N] [--queue-cap N]\n\
         \x20             [--snapshot-dir DIR] [--snapshot-every N] [--feas-cap N]\n\
         \x20             [--deadline-ms N]"
    );
    std::process::exit(2)
}

fn main() {
    let mut cfg = ServiceConfig {
        addr: "127.0.0.1:7345".to_string(),
        ..Default::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("beoptd: {flag} needs {what}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = val("an address"),
            "--shards" => cfg.nshards = val("a count").parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => cfg.queue_cap = val("a count").parse().unwrap_or_else(|_| usage()),
            "--snapshot-dir" => cfg.snapshot_dir = Some(val("a directory").into()),
            "--snapshot-every" => {
                cfg.snapshot_every = val("a count").parse().unwrap_or_else(|_| usage())
            }
            "--feas-cap" => cfg.feas_capacity = val("a count").parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => {
                cfg.default_deadline =
                    Duration::from_millis(val("milliseconds").parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("beoptd: unknown flag {other}");
                usage()
            }
        }
    }
    let service = match Service::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("beoptd: cannot start: {e}");
            std::process::exit(1);
        }
    };
    // Tests and scripts scrape this exact line for the bound port.
    // Writes to stdout tolerate a closed pipe: a supervisor that reads
    // the banner and walks away must not bring the daemon down.
    use std::io::Write as _;
    let mut out = std::io::stdout();
    let _ = writeln!(out, "beoptd listening on {}", service.addr);
    let _ = out.flush();
    // Run until a wire `shutdown` op flips the flag; then drain.
    while !service.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(50));
    }
    service.wait();
    let _ = write!(out, "{}", obs::render_service_stats(&service.stats()));
}
