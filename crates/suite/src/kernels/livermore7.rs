//! Livermore kernel 7 (equation-of-state fragment): one wide
//! element-wise parallel loop with short forward-shifted reads, iterated
//! in a time loop. The shifts (up to +6) stay far below the block size,
//! so all carried communication is neighbor-reachable.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (64, 3),
        Scale::Small => (1024, 15),
        Scale::Full => (1 << 17, 60),
    };
    let mut pb = ProgramBuilder::new("livermore7");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let x = pb.array("X", &[sym(n) + 6], dist_block());
    let u = pb.array("U", &[sym(n) + 6], dist_block());
    let y = pb.array("Y", &[sym(n) + 6], dist_block());
    let z = pb.array("Z", &[sym(n) + 6], dist_block());

    let i0 = pb.begin_par("i0", con(0), sym(n) + 5);
    pb.assign(elem(u, [idx(i0)]), ival(idx(i0) * 5).sin());
    pb.assign(elem(y, [idx(i0)]), ival(idx(i0) * 3).cos());
    pb.assign(elem(z, [idx(i0)]), ival(idx(i0)).sin() * ex(0.5));
    pb.end();

    let (r, tq) = (0.5, 0.25);
    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.assign(
        elem(x, [idx(i)]),
        arr(u, [idx(i)])
            + ex(r) * (arr(z, [idx(i)]) + ex(r) * arr(y, [idx(i)]))
            + ex(tq)
                * (arr(u, [idx(i) + 3])
                    + ex(r) * (arr(u, [idx(i) + 2]) + ex(r) * arr(u, [idx(i) + 1])))
            + ex(tq * tq)
                * (arr(u, [idx(i) + 6])
                    + ex(r) * (arr(u, [idx(i) + 5]) + ex(r) * arr(u, [idx(i) + 4]))),
    );
    pb.end();
    // Feed X back into U so the time loop carries communication.
    let i2 = pb.begin_par("i2", con(0), sym(n) - 1);
    pb.assign(
        elem(u, [idx(i2)]),
        arr(x, [idx(i2)]) * ex(0.01) + arr(u, [idx(i2)]) * ex(0.99),
    );
    pb.end();
    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifted_reads_stay_within_neighbor_reach() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        assert_eq!(st.regions, 1);
        assert_eq!(st.barriers, 1, "{st:?}");
        assert!(st.neighbor_syncs >= 1, "{st:?}");
    }
}
