//! A resilient `beoptd` client: capped-exponential backoff on the
//! retryable failure classes, honoring server `retry_after_ms` hints.
//!
//! The retry schedule reuses [`runtime::RetryPolicy`] — the same
//! deterministic capped-exponential ladder the execution plane uses
//! for dropped sync posts — so client behavior under faults is as
//! reproducible as the server's. Retryable: connection failures,
//! `overloaded`, `shard_crashed`, `shutting_down`, and dropped
//! connections (no reply line). Not retryable: `bad_request` and
//! `deadline_exceeded` (the caller's deadline is spent either way).
//!
//! An optional *total deadline* ([`ServiceClient::total_deadline`])
//! bounds the whole call, not just one attempt: cumulative backoff is
//! capped to the remaining budget, the per-attempt socket timeout
//! shrinks with it, and the remainder is propagated to the server as
//! the request's `deadline_ms` — so a permanently-crashing shard
//! yields a terminal [`ClientError::BudgetSpent`] in bounded time
//! instead of sleeping through the full retry ladder.

use crate::proto::{
    decode_reply, encode_request, ErrorCode, ErrorReply, OptimizeReply, OptimizeRequest, Reply,
    Request,
};
use obs::Json;
use runtime::RetryPolicy;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Why a client call ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure on the final attempt.
    Io(std::io::Error),
    /// The server refused the request as malformed (not retried).
    Bad(ErrorReply),
    /// The request missed its deadline (not retried).
    Deadline(ErrorReply),
    /// Every attempt in the retry budget was shed or crashed away.
    Exhausted {
        /// Attempts made (== the policy's budget).
        attempts: u32,
        /// The last structured error, if the server sent one.
        last: Option<ErrorReply>,
    },
    /// The server's reply did not decode.
    Protocol(String),
    /// The client-side total deadline was spent before any attempt
    /// succeeded (terminal — no further retries).
    BudgetSpent {
        /// Attempts made before the budget ran out.
        attempts: u32,
        /// The last structured error, if the server sent one.
        last: Option<ErrorReply>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Bad(e) => write!(f, "bad request: {}", e.message),
            ClientError::Deadline(e) => write!(f, "deadline exceeded: {}", e.message),
            ClientError::Exhausted { attempts, last } => match last {
                Some(e) => write!(
                    f,
                    "retry budget exhausted after {attempts} attempt(s); last: {} ({})",
                    e.code.as_str(),
                    e.message
                ),
                None => write!(f, "retry budget exhausted after {attempts} attempt(s)"),
            },
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::BudgetSpent { attempts, last } => match last {
                Some(e) => write!(
                    f,
                    "client deadline spent after {attempts} attempt(s); last: {} ({})",
                    e.code.as_str(),
                    e.message
                ),
                None => write!(f, "client deadline spent after {attempts} attempt(s)"),
            },
        }
    }
}

impl std::error::Error for ClientError {}

/// A `beoptd` client bound to one server address.
pub struct ServiceClient {
    addr: String,
    /// Retry schedule for retryable failures.
    pub policy: RetryPolicy,
    /// Per-attempt socket read timeout.
    pub read_timeout: Duration,
    /// Whole-call budget. When set, backoff sleeps are capped to the
    /// remaining budget, the per-attempt socket timeout shrinks with
    /// it, and each attempt carries the remainder to the server as the
    /// request `deadline_ms` (never loosening a tighter one already on
    /// the request).
    pub total_deadline: Option<Duration>,
}

impl ServiceClient {
    /// A client with the default retry policy (9 attempts, 5 ms base,
    /// 200 ms cap — the execution plane's recovery ladder).
    pub fn new(addr: impl Into<String>) -> Self {
        ServiceClient {
            addr: addr.into(),
            policy: RetryPolicy::default(),
            read_timeout: Duration::from_secs(30),
            total_deadline: None,
        }
    }

    /// One request/reply exchange on a fresh connection.
    fn exchange(&self, req: &Request) -> Result<Reply, ClientError> {
        self.exchange_timed(req, self.read_timeout)
    }

    fn exchange_timed(&self, req: &Request, read_timeout: Duration) -> Result<Reply, ClientError> {
        let mut stream = TcpStream::connect(&self.addr).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(read_timeout))
            .map_err(ClientError::Io)?;
        let _ = stream.set_nodelay(true);
        let line = encode_request(req);
        stream.write_all(line.as_bytes()).map_err(ClientError::Io)?;
        stream.write_all(b"\n").map_err(ClientError::Io)?;
        let mut reader = BufReader::new(stream);
        let mut reply_line = String::new();
        let n = reader.read_line(&mut reply_line).map_err(ClientError::Io)?;
        if n == 0 {
            // Connection dropped without a reply (server death or an
            // injected transport fault): retryable.
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before reply",
            )));
        }
        decode_reply(reply_line.trim_end()).map_err(ClientError::Protocol)
    }

    /// Compile a request, retrying retryable failures under the
    /// policy's capped-exponential schedule. The sleep before retry
    /// `k` is `max(policy backoff, server retry_after hint)` — capped,
    /// like everything else, by the remaining
    /// [`ServiceClient::total_deadline`] budget when one is set.
    pub fn optimize(&self, req: &OptimizeRequest) -> Result<OptimizeReply, ClientError> {
        let t0 = std::time::Instant::now();
        let mut last: Option<ErrorReply> = None;
        let mut last_io: Option<std::io::Error> = None;
        for attempt in 1..=self.policy.max_attempts {
            if attempt > 1 {
                let mut pause = self.policy.backoff_before(attempt - 1);
                if let Some(hint) = last.as_ref().and_then(|e| e.retry_after_ms) {
                    pause = pause.max(Duration::from_millis(hint));
                }
                if let Some(budget) = self.total_deadline {
                    // Never sleep past the budget; if it is already
                    // spent, fail now instead of burning the rest of
                    // the retry ladder.
                    let remaining = budget.saturating_sub(t0.elapsed());
                    if remaining.is_zero() {
                        return Err(ClientError::BudgetSpent {
                            attempts: attempt - 1,
                            last,
                        });
                    }
                    pause = pause.min(remaining);
                }
                std::thread::sleep(pause);
            }
            // Propagate what is left of the budget: the socket timeout
            // shrinks with it, and the server sees it as the request
            // deadline (keeping a tighter one the caller already set).
            let mut this_req = req.clone();
            let mut read_timeout = self.read_timeout;
            if let Some(budget) = self.total_deadline {
                let remaining = budget.saturating_sub(t0.elapsed());
                if remaining.is_zero() {
                    return Err(ClientError::BudgetSpent {
                        attempts: attempt - 1,
                        last,
                    });
                }
                read_timeout = read_timeout.min(remaining);
                let remaining_ms = (remaining.as_millis() as u64).max(1);
                this_req.deadline_ms = Some(match this_req.deadline_ms {
                    Some(ms) => ms.min(remaining_ms),
                    None => remaining_ms,
                });
            }
            match self.exchange_timed(&Request::Optimize(this_req), read_timeout) {
                Ok(Reply::Optimized(r)) => return Ok(r),
                Ok(Reply::Error(e)) => match e.code {
                    ErrorCode::BadRequest => return Err(ClientError::Bad(e)),
                    ErrorCode::DeadlineExceeded => return Err(ClientError::Deadline(e)),
                    ErrorCode::Overloaded | ErrorCode::ShardCrashed | ErrorCode::ShuttingDown => {
                        last = Some(e);
                        last_io = None;
                    }
                },
                Ok(_) => {
                    return Err(ClientError::Protocol(
                        "unexpected reply kind for optimize".to_string(),
                    ))
                }
                Err(ClientError::Io(e)) => {
                    last_io = Some(e);
                    last = None;
                }
                Err(other) => return Err(other),
            }
        }
        match (last, last_io) {
            (None, Some(e)) => Err(ClientError::Io(e)),
            (last, _) => Err(ClientError::Exhausted {
                attempts: self.policy.max_attempts,
                last,
            }),
        }
    }

    /// Liveness probe (single attempt).
    pub fn ping(&self) -> Result<(), ClientError> {
        match self.exchange(&Request::Ping)? {
            Reply::Ok(_) => Ok(()),
            _ => Err(ClientError::Protocol("unexpected ping reply".to_string())),
        }
    }

    /// Fetch the service stats document (single attempt).
    pub fn stats(&self) -> Result<Json, ClientError> {
        match self.exchange(&Request::Stats)? {
            Reply::Stats(doc) => Ok(doc),
            _ => Err(ClientError::Protocol("unexpected stats reply".to_string())),
        }
    }

    /// Force every shard to snapshot now (single attempt).
    pub fn snapshot_now(&self) -> Result<(), ClientError> {
        match self.exchange(&Request::Snapshot)? {
            Reply::Ok(_) => Ok(()),
            _ => Err(ClientError::Protocol(
                "unexpected snapshot reply".to_string(),
            )),
        }
    }

    /// Ask the service to drain and exit (single attempt).
    pub fn shutdown(&self) -> Result<(), ClientError> {
        match self.exchange(&Request::Shutdown)? {
            Reply::Ok(_) => Ok(()),
            _ => Err(ClientError::Protocol(
                "unexpected shutdown reply".to_string(),
            )),
        }
    }
}
