//! 7-point 3-D stencil sweep (NAS MG smoothing class), block-distributed
//! along the outermost dimension. Same optimization shape as
//! `jacobi2d`: eliminated copy barrier, neighbor flags for the carried
//! ±1-plane reads.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (8, 2),
        Scale::Small => (24, 6),
        Scale::Full => (96, 12),
    };
    let mut pb = ProgramBuilder::new("stencil3d");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let u = pb.array("U", &[sym(n), sym(n), sym(n)], dist_block());
    let v = pb.array("V", &[sym(n), sym(n), sym(n)], dist_block());

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    let k0 = pb.begin_seq("k0", con(0), sym(n) - 1);
    pb.assign(
        elem(u, [idx(i0), idx(j0), idx(k0)]),
        ival(idx(i0) * 7 + idx(j0) * 3 + idx(k0)).sin(),
    );
    pb.assign(elem(v, [idx(i0), idx(j0), idx(k0)]), ex(0.0));
    pb.end();
    pb.end();
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);
    let i = pb.begin_par("i", con(1), sym(n) - 2);
    let j = pb.begin_seq("j", con(1), sym(n) - 2);
    let k = pb.begin_seq("k", con(1), sym(n) - 2);
    pb.assign(
        elem(v, [idx(i), idx(j), idx(k)]),
        (arr(u, [idx(i) - 1, idx(j), idx(k)])
            + arr(u, [idx(i) + 1, idx(j), idx(k)])
            + arr(u, [idx(i), idx(j) - 1, idx(k)])
            + arr(u, [idx(i), idx(j) + 1, idx(k)])
            + arr(u, [idx(i), idx(j), idx(k) - 1])
            + arr(u, [idx(i), idx(j), idx(k) + 1])
            - ex(6.0) * arr(u, [idx(i), idx(j), idx(k)]))
            * ex(0.125)
            + arr(u, [idx(i), idx(j), idx(k)]),
    );
    pb.end();
    pb.end();
    pb.end();
    let i2 = pb.begin_par("i2", con(1), sym(n) - 2);
    let j2 = pb.begin_seq("j2", con(1), sym(n) - 2);
    let k2 = pb.begin_seq("k2", con(1), sym(n) - 2);
    pb.assign(
        elem(u, [idx(i2), idx(j2), idx(k2)]),
        arr(v, [idx(i2), idx(j2), idx(k2)]),
    );
    pb.end();
    pb.end();
    pb.end();
    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_region_one_barrier_neighbor_bottom() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        assert_eq!(st.regions, 1);
        assert_eq!(st.barriers, 1, "{st:?}");
        assert!(st.neighbor_syncs >= 1, "{st:?}");
    }
}
