//! Fuzz-campaign driver for the barrier-elimination correctness
//! tooling.
//!
//! ```text
//! beoracle fuzz    [--count N] [--seed S] [--threads] [--nprocs 1,3,4] [--repro-dir DIR]
//! beoracle mutate  [--count N] [--seed S]
//! beoracle kernels [--threads]
//! ```
//!
//! * `fuzz` — generate `N` random programs and differentially execute
//!   each (sequential vs fork-join vs optimized; virtual interleavings
//!   and, with `--threads`, real threads with both barrier kinds),
//!   validating every schedule race-free. Each failure is dumped as a
//!   repro bundle (program text, explain-pass decision log, timeline
//!   trace) under `--repro-dir` (default `beoracle-repro/`).
//! * `mutate` — for `N` generated programs, delete each sync op of the
//!   optimized schedule in turn and report what the race validator and
//!   the differential oracle caught.
//! * `kernels` — run the differential oracle over every suite kernel.
//!
//! Exits nonzero on any mismatch, race, or uncaught mutant.

use barrier_elim::oracle::{self, DiffConfig};
use barrier_elim::suite::{self, Scale};

fn parse_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|k| args.get(k + 1))
        .cloned()
}

fn parse_u64(args: &[String], name: &str, default: u64) -> u64 {
    parse_opt(args, name)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v}")))
        .unwrap_or(default)
}

fn parse_nprocs(args: &[String]) -> Vec<i64> {
    parse_opt(args, "--nprocs")
        .map(|v| {
            v.split(',')
                .map(|p| p.parse().unwrap_or_else(|_| panic!("bad --nprocs: {v}")))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 3, 4])
}

fn cmd_fuzz(args: &[String]) -> i32 {
    let count = parse_u64(args, "--count", 200);
    let seed = parse_u64(args, "--seed", 0);
    let repro_dir = std::path::PathBuf::from(
        parse_opt(args, "--repro-dir").unwrap_or_else(|| "beoracle-repro".to_string()),
    );
    let cfg = DiffConfig {
        nprocs: parse_nprocs(args),
        threads: parse_flag(args, "--threads"),
        ..DiffConfig::default()
    };
    println!(
        "fuzzing {count} programs from seed {seed} (nprocs {:?}, threads {})",
        cfg.nprocs, cfg.threads
    );
    let s = oracle::fuzz_campaign(seed, count, &cfg);
    for (shape, n) in &s.shape_counts {
        println!("  {shape:?}: {n} programs");
    }
    let repro_nprocs = cfg.nprocs.iter().copied().max().unwrap_or(4);
    for (seed, shape, failures) in &s.failures {
        println!("FAIL seed {seed} ({shape:?}):");
        for f in failures {
            println!("  {f}");
        }
        // Bundle everything a triager needs: program text, the explain
        // pass's decision log, and an adversarial-order timeline.
        let g = oracle::generate(*seed);
        match oracle::dump_repro(&repro_dir, &g, repro_nprocs, failures) {
            Ok(bundle) => println!("  repro bundle: {}", bundle.display()),
            Err(e) => eprintln!("  cannot write repro bundle: {e}"),
        }
    }
    println!("{}/{} programs passed", s.cases - s.failures.len(), s.cases);
    if s.ok() {
        0
    } else {
        1
    }
}

fn mutate_one(
    label: &str,
    prog: &barrier_elim::ir::Program,
    bind: &barrier_elim::analysis::Bindings,
    tol: f64,
) -> u32 {
    let plan = barrier_elim::spmd_opt::optimize(prog, bind);
    let teeth = oracle::mutation_teeth(prog, bind, &plan, tol);
    let flagged = teeth.flagged();
    let diverged = teeth.sites.iter().filter(|t| t.diverged.is_some()).count();
    println!(
        "{label}: {} sites, {flagged} flagged by validator, {diverged} diverged dynamically",
        teeth.sites.len()
    );
    let mut bad = 0;
    for t in &teeth.sites {
        let mark = if t.flagged() { "caught " } else { "MISSED " };
        let dyn_mark = match t.diverged {
            Some(d) => format!("diverged {d:.2e}"),
            None => "no divergence".to_string(),
        };
        println!(
            "  {mark} {:40} {} racing pairs, {dyn_mark}",
            t.site.desc, t.racing_pairs
        );
        if !t.flagged() && t.diverged.is_some() {
            bad += 1;
        }
    }
    if teeth.clean_racing_pairs > 0 {
        println!(
            "  BAD: unmutated plan reports {} races",
            teeth.clean_racing_pairs
        );
        bad += 1;
    }
    bad
}

fn cmd_mutate(args: &[String]) -> i32 {
    let mut bad = 0;
    if parse_flag(args, "--kernels") {
        for def in suite::all() {
            let built = (def.build)(Scale::Test);
            let bind = built.bindings(4);
            bad += mutate_one(def.name, &built.prog, &bind, 1e-9);
        }
    } else {
        let count = parse_u64(args, "--count", 10);
        let seed = parse_u64(args, "--seed", 0);
        for s in seed..seed + count {
            let g = oracle::generate(s);
            let bind = g.bindings(4);
            bad += mutate_one(&format!("seed {s} ({:?})", g.shape), &g.prog, &bind, 0.0);
        }
    }
    if bad == 0 {
        0
    } else {
        println!("{bad} mutants escaped the validator");
        1
    }
}

fn cmd_kernels(args: &[String]) -> i32 {
    let cfg = DiffConfig {
        threads: parse_flag(args, "--threads"),
        tol: 1e-9, // suite reductions reassociate
        ..DiffConfig::default()
    };
    let mut failed = 0;
    for def in suite::all() {
        let built = (def.build)(Scale::Test);
        let r = oracle::check_program(&built.prog, &|p| built.bindings(p), &cfg);
        if r.ok() {
            println!("ok   {}", def.name);
        } else {
            failed += 1;
            println!("FAIL {}:", def.name);
            for f in &r.failures {
                println!("  {f}");
            }
        }
    }
    if failed == 0 {
        0
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("mutate") => cmd_mutate(&args[1..]),
        Some("kernels") => cmd_kernels(&args[1..]),
        _ => {
            eprintln!(
                "usage: beoracle fuzz [--count N] [--seed S] [--threads] [--nprocs 1,3,4] [--repro-dir DIR]\n       beoracle mutate [--count N] [--seed S]\n       beoracle kernels [--threads]"
            );
            2
        }
    };
    std::process::exit(code);
}
