//! Symbolic-sizes mode: the optimizer produces the same schedule shape
//! with *unbound* problem sizes — the "systems of symbolic linear
//! inequalities" capability of the paper's title. (Execution still needs
//! concrete sizes; these tests check the static plans.)

use barrier_elim::analysis::{Bindings, CommMode, CommPattern, CommQuery};
use barrier_elim::spmd_opt::optimize;
use barrier_elim::suite::{self, Scale};

/// Kernels whose plans must be identical with and without size bindings
/// (block distributions + offsets within ±1 → the symbolic structural
/// path decides everything the concrete FME path decides).
const SYMBOLIC_CLEAN: &[&str] = &[
    "jacobi2d",
    "copy_chain",
    "stencil3d",
    "shallow",
    "livermore18",
    "adi",
    "erlebacher",
    "seidel_pipe",
];

#[test]
fn plans_match_concrete_plans_without_bindings() {
    for name in SYMBOLIC_CLEAN {
        let def = suite::by_name(name).unwrap();
        let built = (def.build)(Scale::Test);
        let concrete = built.bindings(4);
        let symbolic = Bindings::new(4); // nothing bound
        let st_c = optimize(&built.prog, &concrete).static_stats();
        let st_s = optimize(&built.prog, &symbolic).static_stats();
        assert_eq!(
            st_c, st_s,
            "{name}: symbolic plan differs from concrete plan"
        );
    }
}

#[test]
fn symbolic_stencil_classifies_as_neighbor() {
    use barrier_elim::ir::build::*;
    let mut pb = ProgramBuilder::new("sym_stencil");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n)], dist_block());
    let b = pb.array("B", &[sym(n)], dist_block());
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i)]), ival(idx(i)).sin());
    pb.end();
    let j = pb.begin_par("j", con(1), sym(n) - 2);
    pb.assign(
        elem(b, [idx(j)]),
        arr(a, [idx(j) - 1]) + arr(a, [idx(j) + 1]),
    );
    pb.end();
    let prog = pb.finish();
    // No value for n at all.
    let q = CommQuery::new(&prog, Bindings::new(8));
    let st = prog.all_statements();
    assert_eq!(
        q.comm_stmts(&st[0], &st[1], CommMode::LoopIndependent),
        CommPattern::Neighbor {
            fwd: true,
            bwd: true
        }
    );
}

#[test]
fn symbolic_aligned_access_is_local() {
    use barrier_elim::ir::build::*;
    let mut pb = ProgramBuilder::new("sym_aligned");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n)], dist_block());
    let b = pb.array("B", &[sym(n)], dist_block());
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i)]), ival(idx(i)).sin());
    pb.end();
    let j = pb.begin_par("j", con(0), sym(n) - 1);
    pb.assign(elem(b, [idx(j)]), arr(a, [idx(j)]));
    pb.end();
    let prog = pb.finish();
    let q = CommQuery::new(&prog, Bindings::new(8));
    let st = prog.all_statements();
    assert_eq!(
        q.comm_stmts(&st[0], &st[1], CommMode::LoopIndependent),
        CommPattern::NoComm
    );
}

#[test]
fn symbolic_long_shift_stays_general() {
    // Offset 5 could cross more than one boundary when the (unknown)
    // block size is small: must stay General symbolically even though a
    // large concrete n would classify it as Neighbor.
    use barrier_elim::ir::build::*;
    let mut pb = ProgramBuilder::new("sym_far");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n) + 5], dist_block());
    let b = pb.array("B", &[sym(n) + 5], dist_block());
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i)]), ival(idx(i)).sin());
    pb.end();
    let j = pb.begin_par("j", con(0), sym(n) - 1);
    pb.assign(elem(b, [idx(j)]), arr(a, [idx(j) + 5]));
    pb.end();
    let prog = pb.finish();
    let q = CommQuery::new(&prog, Bindings::new(8));
    let st = prog.all_statements();
    assert_eq!(
        q.comm_stmts(&st[0], &st[1], CommMode::LoopIndependent),
        CommPattern::General
    );
    // With a concrete (large) size the same access is neighbor-reachable.
    let sym_n = barrier_elim::ir::SymId(0);
    let qc = CommQuery::new(&prog, Bindings::new(8).set(sym_n, 1024));
    assert_eq!(
        qc.comm_stmts(&st[0], &st[1], CommMode::LoopIndependent),
        // The consumer reads a higher-owned element: data flows downward.
        CommPattern::Neighbor {
            fwd: false,
            bwd: true
        }
    );
}

#[test]
fn different_symbolic_extents_stay_conservative() {
    use barrier_elim::ir::build::*;
    let mut pb = ProgramBuilder::new("sym_mixed");
    let n = pb.sym("n");
    let m = pb.sym("m");
    let a = pb.array("A", &[sym(n)], dist_block());
    let b = pb.array("B", &[sym(m)], dist_block());
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i)]), ival(idx(i)).sin());
    pb.end();
    let j = pb.begin_par("j", con(0), sym(n) - 1);
    pb.assign(elem(b, [idx(j)]), arr(a, [idx(j)]));
    pb.end();
    let prog = pb.finish();
    let q = CommQuery::new(&prog, Bindings::new(8));
    let st = prog.all_statements();
    // Owner functions may differ (different block sizes): conservative.
    assert_eq!(
        q.comm_stmts(&st[0], &st[1], CommMode::LoopIndependent),
        CommPattern::General
    );
}
