//! Pivot-plus-shift: each time step writes a pivot row owned by one
//! identifiable processor (`X[t, ·]`, a `Producer1` pattern) and a
//! shifted vector (`B`, a `Neighbor` pattern), and the consumer phase
//! reads both across a single sync site. Regression kernel for the
//! `Neighbor ⊔ Producer1` lattice cliff: the join used to collapse to
//! `General` and keep a barrier every step; now it fuses into one
//! pairwise wait set naming the +1 distance *and* the pivot owner's
//! cell.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (16, 3),
        Scale::Small => (256, 12),
        Scale::Full => (1024, 32),
    };
    let mut pb = ProgramBuilder::new("pivot_shift");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let a = pb.array("A", &[sym(n)], dist_block());
    let b = pb.array("B", &[sym(n)], dist_block());
    let x = pb.array("X", &[sym(n), sym(n)], dist_block());

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i0)]), ival(idx(i0) * 29).sin());
    pb.end();

    let t = pb.begin_seq("t", con(0), sym(tmax) - 1);
    // Shift producer.
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.assign(elem(b, [idx(i)]), arr(a, [idx(i)]) * ex(0.5) + ex(1.0));
    pb.end();
    // Pivot row t: written entirely by owner(t) — the write subscript
    // of the distributed dimension depends only on the sequential
    // loop, which is what makes the producer identifiable.
    let j = pb.begin_par("j", con(0), sym(n) - 1);
    pb.assign(elem(x, [idx(t), idx(j)]), ival(idx(t) * 7 + idx(j)).sin());
    pb.end();
    // Consumer: one-cell shift of B plus the pivot row broadcast.
    let k = pb.begin_par("k", con(1), sym(n) - 1);
    pb.assign(
        elem(a, [idx(k)]),
        arr(b, [idx(k) - 1]) * ex(0.5) + arr(x, [idx(t), idx(k)]) * ex(0.25),
    );
    pb.end();
    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pivot_and_shift_fuse_to_pairwise() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        assert_eq!(st.regions, 1, "{st:?}");
        assert!(st.pair_syncs >= 1, "{st:?}");
        // The per-step inter-phase barrier is gone.
        assert!(st.barriers <= 1, "{st:?}");
    }

    /// The fused wait set names both halves: the +1 shift distance and
    /// the pivot row's owner as a producer target.
    #[test]
    fn fused_site_carries_distance_and_producer() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let plan = spmd_opt::optimize(&built.prog, &bind);
        let found = spmd_opt::sync_sites(&built.prog, &plan)
            .iter()
            .any(|s| match &s.op {
                spmd_opt::SyncOp::PairCounter { dists, producers } => {
                    dists.contains(1) && !producers.is_empty()
                }
                _ => false,
            });
        assert!(found, "no fused pairwise site with dist +1 and a producer");
    }
}
