//! In-place 2-D Gauss-Seidel relaxation, rows distributed: the update of
//! row `i` needs the *new* row `i-1` and the *old* row `i+1`, which
//! makes every barrier replaceable by neighbor flags and turns the time
//! loop into a wavefront pipeline across processors.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (12, 2),
        Scale::Small => (48, 6),
        Scale::Full => (256, 12),
    };
    let mut pb = ProgramBuilder::new("seidel_pipe");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let x = pb.array("X", &[sym(n), sym(n)], dist_block());

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(x, [idx(i0), idx(j0)]),
        ival(idx(i0) * 23 + idx(j0)).sin(),
    );
    pb.end();
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);
    // Sweep rows sequentially (the recurrence direction), columns in
    // parallel — each row phase belongs to owner(i).
    let i = pb.begin_seq("i", con(1), sym(n) - 2);
    let j = pb.begin_par("j", con(1), sym(n) - 2);
    // Vertical Gauss-Seidel: new row i-1, old row i+1, old self. (The
    // horizontal terms would carry a dependence inside the DOALL and are
    // Jacobi-split in the classic parallelization.)
    pb.assign(
        elem(x, [idx(i), idx(j)]),
        ex(0.25)
            * (arr(x, [idx(i) - 1, idx(j)])
                + arr(x, [idx(i) + 1, idx(j)])
                + ex(2.0) * arr(x, [idx(i), idx(j)])),
    );
    pb.end();
    pb.end();
    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_pipelines_with_neighbor_flags() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        assert_eq!(st.regions, 1, "{st:?}");
        assert!(st.neighbor_syncs >= 1, "{st:?}");
        // Fork-join pays one barrier per row per time step at run time;
        // the optimized schedule pays at most the region-end barrier.
        assert!(st.barriers <= 2, "{st:?}");
    }
}
