//! Property test: the optimizer is sound on *random* affine programs.
//!
//! A generated program is a time loop around a sequence of parallel
//! loops; each loop writes one array with an affine subscript and reads
//! other arrays at random offsets, under random distributions. By
//! construction no `DOALL` carries a dependence (a loop never reads the
//! array it writes), which `check_parallel_loops` re-verifies. The
//! optimized schedule must reproduce the sequential semantics under
//! adversarial virtual interleavings for every generated program.

use barrier_elim::analysis::check_parallel_loops;
use barrier_elim::interp::{run_sequential, run_virtual, Mem, ScheduleOrder};
use barrier_elim::ir::build::*;
use barrier_elim::ir::Program;
use barrier_elim::spmd_opt::optimize;
use barrier_elim::suite::Built;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct LoopSpec {
    /// Which array (mod #arrays) the loop writes.
    writes: u8,
    /// Subscript offset of the write.
    woff: i8,
    /// (array, offset) pairs read.
    reads: Vec<(u8, i8)>,
}

#[derive(Debug, Clone)]
struct ProgSpec {
    narrays: u8,
    dists: Vec<u8>,
    loops: Vec<LoopSpec>,
    timesteps: u8,
}

fn spec_strategy() -> impl Strategy<Value = ProgSpec> {
    let loop_spec = (
        0u8..4,
        -2i8..=2,
        proptest::collection::vec((0u8..4, -2i8..=2), 1..3),
    )
        .prop_map(|(writes, woff, reads)| LoopSpec {
            writes,
            woff,
            reads,
        });
    (
        2u8..4,
        proptest::collection::vec(0u8..3, 4),
        proptest::collection::vec(loop_spec, 1..5),
        1u8..4,
    )
        .prop_map(|(narrays, dists, loops, timesteps)| ProgSpec {
            narrays,
            dists,
            loops,
            timesteps,
        })
}

/// Materialize a spec as a program (returns `None` for degenerate specs
/// where a loop would read the array it writes).
fn build_program(spec: &ProgSpec) -> Option<Built> {
    let na = spec.narrays as usize;
    let mut pb = ProgramBuilder::new("random");
    let n = pb.sym("n");
    let arrays: Vec<_> = (0..na)
        .map(|k| {
            let dist = match spec.dists[k] {
                0 => dist_block(),
                1 => dist_cyclic(),
                _ => dist_repl(),
            };
            // Pad the extent so offsets in [-2, 2] stay in bounds.
            pb.array(format!("A{k}"), &[sym(n) + 4], dist)
        })
        .collect();

    // Deterministic init.
    let i0 = pb.begin_par("i0", con(0), sym(n) + 3);
    for (k, &a) in arrays.iter().enumerate() {
        pb.assign(elem(a, [idx(i0)]), ival(idx(i0) * (2 * k as i64 + 3)).sin());
    }
    pb.end();

    let _t = pb.begin_seq("t", con(0), con(spec.timesteps as i64 - 1));
    for (k, l) in spec.loops.iter().enumerate() {
        let w = arrays[l.writes as usize % na];
        let i = pb.begin_par(&format!("i{}", k + 1), con(2), sym(n) + 1);
        let mut rhs = ex(0.1);
        let mut has_read = false;
        for &(r, off) in &l.reads {
            let ra = arrays[r as usize % na];
            if ra == w {
                continue; // would carry a dependence inside the DOALL
            }
            has_read = true;
            rhs = rhs + arr(ra, [idx(i) + off as i64]) * ex(0.4);
        }
        if !has_read {
            rhs = rhs + ival(idx(i)).cos();
        }
        pb.assign(elem(w, [idx(i) + l.woff as i64]), rhs);
        pb.end();
    }
    pb.end();

    Some(Built {
        prog: pb.finish(),
        values: vec![(n, 24)],
    })
}

fn exercise(prog: &Program, built: &Built, nprocs: i64) {
    let bind = built.bindings(nprocs);
    // Generated loops must really be parallel.
    assert!(
        check_parallel_loops(prog, &bind).is_empty(),
        "generator produced an invalid DOALL"
    );
    let oracle = Mem::new(prog, &bind);
    run_sequential(prog, &bind, &oracle);
    let plan = optimize(prog, &bind);
    for order in [
        ScheduleOrder::RoundRobin,
        ScheduleOrder::Reverse,
        ScheduleOrder::Random(99),
    ] {
        let mem = Mem::new(prog, &bind);
        run_virtual(prog, &bind, &plan, &mem, order);
        let diff = mem.max_abs_diff(&oracle);
        assert!(
            diff == 0.0,
            "optimized schedule diverged by {diff:e} under {order:?} (P={nprocs})\n{}",
            barrier_elim::ir::pretty::pretty(prog)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimizer_is_sound_on_random_affine_programs(spec in spec_strategy()) {
        if let Some(built) = build_program(&spec) {
            let prog = built.prog.clone();
            for nprocs in [2i64, 4, 5] {
                exercise(&prog, &built, nprocs);
            }
        }
    }

    /// The optimizer never *increases* the dynamic barrier count by more
    /// than the merged bottom barriers (monotonicity sanity).
    #[test]
    fn optimizer_reduces_or_matches_barriers(spec in spec_strategy()) {
        if let Some(built) = build_program(&spec) {
            let bind = built.bindings(4);
            let mem1 = Mem::new(&built.prog, &bind);
            let base = run_virtual(
                &built.prog, &bind,
                &barrier_elim::spmd_opt::fork_join(&built.prog, &bind),
                &mem1, ScheduleOrder::RoundRobin,
            );
            let mem2 = Mem::new(&built.prog, &bind);
            let opt = run_virtual(
                &built.prog, &bind,
                &optimize(&built.prog, &bind),
                &mem2, ScheduleOrder::RoundRobin,
            );
            // Region merging may introduce one bottom barrier per time
            // loop, but never more than the baseline plus that.
            prop_assert!(
                opt.counts.barriers <= base.counts.barriers + spec.timesteps as u64,
                "opt {} vs base {}",
                opt.counts.barriers, base.counts.barriers
            );
        }
    }

    /// The optimizer never increases the number of dynamic sync points
    /// vs the fork-join baseline on the oracle's generated programs
    /// (which, unlike the specs above, include pipelines, broadcasts,
    /// and guarded serial sections). A sync point is one dispatch, one
    /// barrier episode, one counter increment, or one all-processor
    /// neighbor post round (`posts / P` — every processor posts exactly
    /// once per neighbor sync point).
    #[test]
    fn optimizer_never_adds_dynamic_sync_points(seed in 0u64..u64::MAX) {
        let g = barrier_elim::oracle::generate(seed);
        for nprocs in [1u64, 3, 4, 8] {
            let bind = g.bindings(nprocs as i64);
            let sync_points = |plan| {
                let mem = Mem::new(&g.prog, &bind);
                let c = run_virtual(&g.prog, &bind, &plan, &mem, ScheduleOrder::RoundRobin)
                    .counts;
                assert_eq!(c.neighbor_posts % nprocs, 0);
                c.dispatches + c.barriers + c.counter_increments + c.neighbor_posts / nprocs
            };
            let base = sync_points(barrier_elim::spmd_opt::fork_join(&g.prog, &bind));
            let opt = sync_points(optimize(&g.prog, &bind));
            prop_assert!(
                opt <= base,
                "seed {seed} ({:?}, P={nprocs}): optimized {opt} sync points vs fork-join {base}",
                g.shape
            );
        }
    }
}
