//! Correctness tooling for the barrier-elimination optimizer: a seeded
//! random program generator, a differential execution oracle, a static
//! schedule race validator, and a sync-deletion mutation tester.
//!
//! The pieces compose into two campaigns:
//!
//! * **Fuzzing** ([`fuzz_campaign`]): generate programs with
//!   cross-processor dependences ([`gen`]), run each through the
//!   sequential interpreter, the fork-join schedule, and the optimized
//!   schedule under adversarial virtual interleavings and (optionally)
//!   real threads, diffing final memory and dynamic sync counts
//!   ([`diff`]), and validate every schedule race-free ([`validate`]).
//! * **Mutation testing** ([`mutate`]): delete single sync ops from
//!   known-good schedules and prove the validator flags the hole —
//!   including every hole the differential oracle can observe.
//!
//! The `beoracle` binary in the workspace root drives both from the
//! command line.

pub mod chaos;
pub mod diff;
pub mod gen;
pub mod mutate;
pub mod repro;
pub mod service_chaos;
pub mod validate;

pub use chaos::{
    chaos_check, degrade_check, droppable_posts, injection_schedule, recovery_check,
    recovery_check_with, ChaosConfig, ChaosInjector, ChaosReport, DegradeCheckReport, DegradedRun,
    DropCandidate, DropSpec, KillMode, KillPidChaos, RecoveredTooth, RecoveryCheckReport,
    ToothOutcome,
};
pub use diff::{check_program, plan_diverges, CaseResult, DiffConfig};
pub use gen::{generate, GenProgram, Shape};
pub use mutate::{delete, mutation_teeth, sites, MutationSite, TeethReport};
pub use repro::dump_repro;
pub use service_chaos::{
    service_chaos_check, service_chaos_json, SeededServiceChaos, ServiceChaosCase,
    ServiceChaosConfig, ServiceChaosReport,
};
pub use validate::{validate, Race, RaceReport};

/// Outcome of a seeded fuzz campaign.
#[derive(Debug, Default)]
pub struct CampaignSummary {
    /// Programs checked.
    pub cases: usize,
    /// `(seed, shape, failures)` for every failing program.
    pub failures: Vec<(u64, Shape, Vec<String>)>,
    /// How many programs of each shape were drawn.
    pub shape_counts: Vec<(Shape, usize)>,
}

impl CampaignSummary {
    /// True when every program passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run the differential oracle over `count` generated programs
/// starting at `seed0`.
pub fn fuzz_campaign(seed0: u64, count: u64, cfg: &DiffConfig) -> CampaignSummary {
    let mut summary = CampaignSummary::default();
    for seed in seed0..seed0 + count {
        let g = generate(seed);
        summary.cases += 1;
        match summary.shape_counts.iter_mut().find(|(s, _)| *s == g.shape) {
            Some((_, n)) => *n += 1,
            None => summary.shape_counts.push((g.shape, 1)),
        }
        let r = check_program(&g.prog, &|p| g.bindings(p), cfg);
        if !r.ok() {
            summary.failures.push((seed, g.shape, r.failures));
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_is_clean() {
        let cfg = DiffConfig {
            nprocs: vec![3],
            random_orders: 1,
            ..DiffConfig::default()
        };
        let s = fuzz_campaign(0, 6, &cfg);
        assert_eq!(s.cases, 6);
        assert!(s.ok(), "{:?}", s.failures);
    }
}
