//! Acceptance tests for the correctness-tooling subsystem (`oracle`):
//! the differential execution oracle, the schedule race validator, and
//! the sync-deletion mutation tester.

use barrier_elim::oracle::{self, DiffConfig};
use barrier_elim::spmd_opt::{fork_join, optimize};
use barrier_elim::suite::{self, Scale};

/// Suite reductions may reassociate; generated programs use only
/// order-independent reductions and must match exactly.
const KERNEL_TOL: f64 = 1e-9;

/// The differential oracle finds no mismatch on 200 fixed-seed
/// generated programs, across the virtual backend (P ∈ {1, 3, 4},
/// round-robin + reverse + random interleavings) and the real-thread
/// backend (central and tree barriers), with every schedule validating
/// race-free along the way.
#[test]
fn differential_oracle_is_clean_on_200_generated_programs() {
    let cfg = DiffConfig {
        nprocs: vec![1, 3, 4],
        threads: true,
        thread_nprocs: 4,
        ..DiffConfig::default()
    };
    let s = oracle::fuzz_campaign(0, 200, &cfg);
    assert_eq!(s.cases, 200);
    assert!(s.ok(), "failures: {:#?}", s.failures);
    assert_eq!(
        s.shape_counts.len(),
        6,
        "all six program shapes should be drawn in 200 seeds: {:?}",
        s.shape_counts
    );
}

/// Every suite kernel passes the same differential check (virtual
/// backends; the real-thread path is exercised by the generated
/// programs above and by `tests/real_threads.rs`).
#[test]
fn differential_oracle_is_clean_on_suite_kernels() {
    let cfg = DiffConfig {
        tol: KERNEL_TOL,
        ..DiffConfig::default()
    };
    let mut failures = Vec::new();
    for def in suite::all() {
        let built = (def.build)(Scale::Test);
        let r = oracle::check_program(&built.prog, &|p| built.bindings(p), &cfg);
        if !r.ok() {
            failures.push((def.name, r.failures));
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}

/// Mutation teeth: across known-good optimized schedules, deleting any
/// single *required* sync op is caught by the race validator. Checked
/// in three parts on every schedule:
///
/// * the unmutated schedule validates race-free;
/// * every mutant whose divergence the differential oracle can observe
///   under adversarial interleavings is also flagged statically
///   (required ⊆ flagged);
/// * every interior deletion (phase-`after`, seq-`bottom`/`after`) is
///   flagged. Only trailing region-end barriers — unobservable because
///   both executors join at region exit anyway — may go unflagged.
#[test]
fn deleting_any_required_sync_op_is_flagged_by_the_validator() {
    // ≥ 10 known-good optimized schedules: suite kernels whose placed
    // synchronization is exact at Test scale, plus generated programs.
    let kernels = [
        "jacobi2d",
        "stencil3d",
        "redblack",
        "fdtd",
        "cg_dense",
        "tomcatv_mesh",
        "livermore7",
        "mgrid",
        "seidel_pipe",
        "workvec",
        "transpose",
        "tred2",
    ];
    let mut schedules = 0usize;
    let mut interior_sites = 0usize;
    let mut check = |label: &str,
                     prog: &barrier_elim::ir::Program,
                     bind: &barrier_elim::analysis::Bindings,
                     tol: f64| {
        let plan = optimize(prog, bind);
        let teeth = oracle::mutation_teeth(prog, bind, &plan, tol);
        assert_eq!(
            teeth.clean_racing_pairs, 0,
            "{label}: unmutated schedule must be race-free"
        );
        assert!(
            teeth.validator_covers_divergence(),
            "{label}: a dynamically-diverging mutant escaped the validator: {:#?}",
            teeth.sites
        );
        assert!(
            teeth.all_interior_flagged(),
            "{label}: an interior sync deletion went unflagged: {:#?}",
            teeth.sites
        );
        schedules += 1;
        interior_sites += teeth.sites.iter().filter(|s| !s.site.region_end).count();
    };
    for name in kernels {
        let built = (suite::by_name(name).unwrap().build)(Scale::Test);
        let bind = built.bindings(4);
        check(name, &built.prog, &bind, KERNEL_TOL);
    }
    for seed in 0..8u64 {
        let g = oracle::generate(seed);
        let bind = g.bindings(4);
        check(&format!("gen seed {seed}"), &g.prog, &bind, 0.0);
    }
    assert!(schedules >= 10, "only {schedules} schedules checked");
    assert!(
        interior_sites >= 30,
        "only {interior_sites} interior sync sites mutated"
    );
}

/// The validator accepts both the fork-join and the optimized schedule
/// of every suite kernel at several processor counts — the fork-join
/// plan is the trivially-sound baseline, so flagging it would be a
/// validator false positive.
#[test]
fn validator_accepts_known_good_schedules_at_many_processor_counts() {
    for def in suite::all() {
        let built = (def.build)(Scale::Test);
        for p in [1, 3, 4, 8] {
            let bind = built.bindings(p);
            for (label, plan) in [
                ("fork-join", fork_join(&built.prog, &bind)),
                ("optimized", optimize(&built.prog, &bind)),
            ] {
                let r = oracle::validate(&built.prog, &bind, &plan);
                assert!(
                    r.is_race_free(),
                    "{} ({label}, P={p}): {} racing pairs, first: {:?}",
                    def.name,
                    r.num_racing_pairs,
                    r.races.first()
                );
            }
        }
    }
}
