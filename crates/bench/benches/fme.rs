//! Criterion benches for the Fourier-Motzkin core: feasibility queries
//! of the three shapes the communication analysis issues most.

use criterion::{criterion_group, criterion_main, Criterion};
use ineq::{LinExpr, System, VarKind, VarTable};

/// Aligned-access query: block partitions of producer and consumer with
/// identical subscripts plus p != q — infeasible.
fn aligned_query() -> (VarTable, System) {
    let mut vt = VarTable::new();
    let p = vt.fresh("p", VarKind::Processor);
    let q = vt.fresh("q", VarKind::Processor);
    let i = vt.fresh("i", VarKind::LoopIndex);
    let j = vt.fresh("j", VarKind::LoopIndex);
    let mut s = System::new();
    let b = 16i128; // block size
    for v in [p, q] {
        s.add_range(LinExpr::var(v), LinExpr::constant(0), LinExpr::constant(7));
    }
    for v in [i, j] {
        s.add_range(
            LinExpr::var(v),
            LinExpr::constant(0),
            LinExpr::constant(127),
        );
    }
    // p*b <= i <= p*b + b - 1 ; q*b <= j <= q*b + b - 1 ; i == j ; q >= p+1
    s.add_ge(LinExpr::var(i) - LinExpr::term(p, b));
    s.add_ge(LinExpr::term(p, b) + LinExpr::constant(b - 1) - LinExpr::var(i));
    s.add_ge(LinExpr::var(j) - LinExpr::term(q, b));
    s.add_ge(LinExpr::term(q, b) + LinExpr::constant(b - 1) - LinExpr::var(j));
    s.add_eq(LinExpr::var(i) - LinExpr::var(j));
    s.add_ge(LinExpr::var(q) - LinExpr::var(p) - LinExpr::constant(1));
    (vt, s)
}

/// Neighbor query: same but the consumer reads `j - 1` and we ask for
/// far communication (infeasible) — the workhorse classification test.
fn neighbor_far_query() -> (VarTable, System) {
    let (vt, mut s) = {
        let mut vt = VarTable::new();
        let p = vt.fresh("p", VarKind::Processor);
        let q = vt.fresh("q", VarKind::Processor);
        let i = vt.fresh("i", VarKind::LoopIndex);
        let j = vt.fresh("j", VarKind::LoopIndex);
        let mut s = System::new();
        let b = 16i128;
        for v in [p, q] {
            s.add_range(LinExpr::var(v), LinExpr::constant(0), LinExpr::constant(7));
        }
        for v in [i, j] {
            s.add_range(
                LinExpr::var(v),
                LinExpr::constant(1),
                LinExpr::constant(127),
            );
        }
        s.add_ge(LinExpr::var(i) - LinExpr::term(p, b));
        s.add_ge(LinExpr::term(p, b) + LinExpr::constant(b - 1) - LinExpr::var(i));
        s.add_ge(LinExpr::var(j) - LinExpr::term(q, b));
        s.add_ge(LinExpr::term(q, b) + LinExpr::constant(b - 1) - LinExpr::var(j));
        // element equality with shift: i == j - 1
        s.add_eq(LinExpr::var(i) - LinExpr::var(j) + LinExpr::constant(1));
        // far: q - p >= 2
        s.add_ge(LinExpr::var(q) - LinExpr::var(p) - LinExpr::constant(2));
        (vt, s)
    };
    s.dedup();
    (vt, s)
}

fn bench_fme(c: &mut Criterion) {
    let (vt1, s1) = aligned_query();
    c.bench_function("fme_aligned_infeasible", |b| {
        b.iter(|| {
            assert!(!s1.is_consistent(&vt1));
        })
    });
    let (vt2, s2) = neighbor_far_query();
    c.bench_function("fme_neighbor_far_infeasible", |b| {
        b.iter(|| {
            assert!(!s2.is_consistent(&vt2));
        })
    });
}

fn bench_comm_query(c: &mut Criterion) {
    // A full end-to-end communication classification on the jacobi pair.
    let def = suite::by_name("jacobi2d").unwrap();
    let built = (def.build)(suite::Scale::Small);
    let bind = built.bindings(8);
    let query = analysis::CommQuery::new(&built.prog, bind);
    let stmts = built.prog.all_statements();
    c.bench_function("comm_classify_stencil_pair", |b| {
        b.iter(|| {
            query.comm_stmts(
                &stmts[stmts.len() - 2],
                &stmts[stmts.len() - 1],
                analysis::CommMode::LoopIndependent,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fme, bench_comm_query
}
criterion_main!(benches);
