//! Canonicalization and memoization of FME queries.
//!
//! Communication analysis asks the same structural questions over and
//! over: statement pairs produced from structurally identical code (copy
//! chains, initialization loops, stencil sweeps) translate to `System`s
//! that differ only in which `VarId`s the pair-translation happened to
//! allocate. This module maps a `System` to a *canonical form* — sorted
//! constraints, gcd-normalized coefficients (already guaranteed by
//! normalization on `push`), and variables renamed to `(scan_rank,
//! ordinal)` — so isomorphic systems share one cache entry.
//!
//! Keys are exact structural values, not 64-bit digests: a hash collision
//! in a feasibility cache would silently flip a verdict, and "never
//! unsound" is the contract of this whole crate.
//!
//! The cached verdict is exactly what [`System::feasibility`] would
//! compute, because that scan re-sorts into the same canonical constraint
//! order before every elimination step and breaks every pivot tie by that
//! order; two systems with equal canonical forms therefore take identical
//! elimination paths. Cached and uncached runs are bitwise
//! indistinguishable (the differential suite in `tests/` holds this).

use crate::constraint::{Constraint, ConstraintKind};
use crate::linexpr::LinExpr;
use crate::rational::Overflow;
use crate::system::{Feasibility, System};
use crate::var::{VarId, VarTable};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Fast non-cryptographic hasher (the rustc `FxHash` recurrence) for
/// memo keys. Canonical keys are long `i128` buffers; the default
/// SipHash costs enough per query to erase the memoization win on
/// small systems, and these tables never face adversarial keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
    fn write(&mut self, bytes: &[u8]) {
        // Integer slices (the canonical key buffers) arrive as one raw
        // byte slice; consume a word at a time, not a byte at a time.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = 0u64;
            for &b in rem {
                last = (last << 8) | b as u64;
            }
            self.add(last);
        }
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// The table-independent canonical form of a [`System`].
///
/// Two systems have equal canonical forms iff one can be renamed onto the
/// other by a bijection that preserves each variable's scan rank and the
/// relative id order within a rank — exactly the invariance under which
/// the guarded feasibility scan is deterministic.
///
/// The form is a single flat `i128` buffer (constraints sorted, each as
/// `[nterms << 8 | kind, constant, (rank << 32 | ordinal, coeff)...]`) so
/// key construction, hashing, and equality touch one contiguous
/// allocation — this sits on the hot path of every memoized query.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CanonicalSystem {
    contradictory: bool,
    count: u32,
    flat: Vec<i128>,
}

impl CanonicalSystem {
    /// Number of constraints in the canonical form.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True if the form has no constraints.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Decompose into raw parts for the snapshot codec.
    pub(crate) fn parts(&self) -> (bool, u32, &[i128]) {
        (self.contradictory, self.count, &self.flat)
    }

    /// Reassemble from snapshot parts. The codec validates the buffer's
    /// structural integrity before calling this; a corrupted buffer
    /// that slips through yields a key that simply never matches a live
    /// query (wrong flat encoding), never an unsound verdict for a
    /// *different* system.
    pub(crate) fn from_parts(contradictory: bool, count: u32, flat: Vec<i128>) -> Self {
        CanonicalSystem {
            contradictory,
            count,
            flat,
        }
    }
}

/// `(variable id, rank << 32 | ordinal)` rows sorted by id, so term
/// encoding is one binary search with no [`VarTable`] access.
fn ord_table(used: &[VarId], vt: &VarTable) -> Vec<(u32, i128)> {
    let mut t: Vec<(u32, i128)> = used
        .iter()
        .enumerate()
        .map(|(k, v)| (v.0, ((vt.kind(*v).scan_rank() as i128) << 32) | k as i128))
        .collect();
    t.sort_unstable_by_key(|e| e.0);
    t
}

/// Encode `sys` into the flat canonical buffer, numbering variables via
/// `table` (from [`ord_table`] over a `(scan_rank, id)`-sorted var list
/// that contains every variable of `sys`).
fn encode_flat(sys: &System, table: &[(u32, i128)]) -> (u32, Vec<i128>) {
    let ord = |v: VarId| -> i128 {
        let k = table
            .binary_search_by_key(&v.0, |e| e.0)
            .expect("encode_flat: variable missing from the ordinal map");
        table[k].1
    };
    let cons = sys.constraints();
    let mut buf: Vec<i128> = Vec::with_capacity(cons.len() * 8);
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(cons.len());
    let mut terms: Vec<(i128, i128)> = Vec::new();
    for c in cons {
        terms.clear();
        for (v, k) in c.expr.terms() {
            terms.push((ord(v), k));
        }
        terms.sort_unstable();
        let kind = match c.kind {
            ConstraintKind::GeZero => 0i128,
            ConstraintKind::EqZero => 1i128,
        };
        let start = buf.len();
        buf.push(((terms.len() as i128) << 8) | kind);
        buf.push(c.expr.constant_term());
        for &(p, k) in &terms {
            buf.push(p);
            buf.push(k);
        }
        spans.push((start, buf.len() - start));
    }
    spans.sort_by(|&(s1, l1), &(s2, l2)| buf[s1..s1 + l1].cmp(&buf[s2..s2 + l2]));
    let mut flat = Vec::with_capacity(buf.len());
    for &(s, l) in &spans {
        flat.extend_from_slice(&buf[s..s + l]);
    }
    (spans.len() as u32, flat)
}

/// Canonicalize `sys`: returns the canonical form plus the variable map
/// (`map[ordinal]` is the original [`VarId`] with that canonical number).
pub fn canonicalize(sys: &System, vt: &VarTable) -> (CanonicalSystem, Vec<VarId>) {
    let mut used: Vec<VarId> = Vec::new();
    for c in sys.constraints() {
        for (v, _) in c.expr.terms() {
            used.push(v);
        }
    }
    used.sort_unstable_by_key(|v| (vt.kind(*v).scan_rank(), v.0));
    used.dedup();
    let (count, flat) = encode_flat(sys, &ord_table(&used, vt));
    (
        CanonicalSystem {
            contradictory: sys.is_contradictory(),
            count,
            flat,
        },
        used,
    )
}

/// Rebuild a concrete [`System`] from a flat canonical buffer using
/// `map` to translate ordinals back to this query's [`VarId`]s.
fn decode(flat: &[i128], map: &[VarId]) -> System {
    let mut sys = System::new();
    let mut i = 0;
    while i < flat.len() {
        let head = flat[i];
        let kind = (head & 0xff) as u8;
        let n = (head >> 8) as usize;
        let mut e = LinExpr::constant(flat[i + 1]);
        for t in 0..n {
            let packed = flat[i + 2 + 2 * t];
            let coef = flat[i + 3 + 2 * t];
            e.set_coeff(map[(packed & 0xffff_ffff) as usize], coef);
        }
        i += 2 + 2 * n;
        let c = match kind {
            0 => Constraint::ge_zero(e),
            _ => Constraint::eq_zero(e),
        };
        sys.push(c);
    }
    sys
}

/// Snapshot of an [`FmeCache`]'s counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FmeCacheStats {
    /// Feasibility queries answered from the cache.
    pub feas_hits: u64,
    /// Feasibility queries that ran the full FME scan.
    pub feas_misses: u64,
    /// Elimination queries answered from the cache.
    pub elim_hits: u64,
    /// Elimination queries computed fresh.
    pub elim_misses: u64,
    /// Scans that gave up (overflow / budget) and answered `Unknown`.
    pub unknown_verdicts: u64,
    /// Largest live constraint count any scan reached.
    pub peak_constraints: usize,
    /// Distinct canonical systems currently memoized.
    pub entries: usize,
    /// Nanoseconds spent building canonical keys (cache overhead).
    pub canon_ns: u64,
    /// Nanoseconds spent in actual feasibility scans (cache misses).
    pub scan_ns: u64,
    /// Nanoseconds of scan work skipped by hits (each hit credits the
    /// cost its class's original scan paid).
    pub saved_ns: u64,
    /// Total nanoseconds spent inside cached feasibility queries.
    pub query_ns: u64,
    /// Feasibility memo entries evicted by the second-chance clock.
    pub feas_evictions: u64,
    /// Feasibility memo capacity (entries are evicted, not refused,
    /// once the table is full).
    pub feas_capacity: usize,
}

impl FmeCacheStats {
    /// Hit rate over all feasibility queries, in `[0, 1]`.
    pub fn feas_hit_rate(&self) -> f64 {
        let total = self.feas_hits + self.feas_misses;
        if total == 0 {
            0.0
        } else {
            self.feas_hits as f64 / total as f64
        }
    }
}

/// Default feasibility-memo capacity (entries; evicted beyond this).
pub const FEAS_MEMO_CAP: usize = 1 << 20;
const ELIM_MEMO_CAP: usize = 1 << 12;

/// One memoized feasibility verdict with its second-chance bit.
struct FeasSlot {
    f: Feasibility,
    cost: u64,
    referenced: bool,
}

/// The bounded feasibility memo: a hash map for lookups plus a clock
/// ring over the same (shared) keys for second-chance eviction. A hit
/// sets the entry's `referenced` bit; when the table is full, the clock
/// hand sweeps forward clearing bits and evicts the first entry it
/// finds unreferenced — so the working set of a long-lived compile
/// service survives one-off queries instead of the table silently
/// refusing new entries.
#[derive(Default)]
struct FeasTable {
    map: FxMap<std::sync::Arc<CanonicalSystem>, FeasSlot>,
    ring: Vec<std::sync::Arc<CanonicalSystem>>,
    hand: usize,
    cap: usize,
    evictions: u64,
}

impl FeasTable {
    fn with_capacity(cap: usize) -> Self {
        FeasTable {
            cap,
            ..Default::default()
        }
    }

    fn get(&mut self, key: &CanonicalSystem) -> Option<(Feasibility, u64)> {
        let slot = self.map.get_mut(key)?;
        slot.referenced = true;
        Some((slot.f, slot.cost))
    }

    /// Advance the clock hand to a victim slot: clear `referenced` bits
    /// as it sweeps, evict the first unreferenced entry. Terminates
    /// within two laps (the first lap clears every bit).
    fn evict_one(&mut self) -> usize {
        loop {
            self.hand = (self.hand + 1) % self.ring.len();
            let key = self.ring[self.hand].clone();
            let slot = self.map.get_mut(&*key).expect("clock ring key not in map");
            if slot.referenced {
                slot.referenced = false;
            } else {
                self.map.remove(&*key);
                self.evictions += 1;
                return self.hand;
            }
        }
    }

    fn insert(&mut self, key: CanonicalSystem, f: Feasibility, cost: u64) {
        if self.cap == 0 {
            return;
        }
        if let Some(slot) = self.map.get_mut(&key) {
            slot.f = f;
            slot.cost = cost;
            slot.referenced = true;
            return;
        }
        let key = std::sync::Arc::new(key);
        if self.map.len() >= self.cap {
            let victim = self.evict_one();
            self.ring[victim] = key.clone();
        } else {
            self.ring.push(key.clone());
        }
        // A fresh entry enters referenced, buying one full clock lap
        // before it becomes an eviction candidate.
        self.map.insert(
            key,
            FeasSlot {
                f,
                cost,
                referenced: true,
            },
        );
    }
}

/// A shared, thread-safe memo for FME feasibility and elimination
/// queries, keyed on [`CanonicalSystem`]s.
///
/// Counters are atomics so parallel workers can record hits without
/// serializing; note they are *not* deterministic across runs when
/// workers race for the same key, which is why they surface through
/// stdout/bench telemetry and never through the byte-stable explain
/// document.
pub struct FmeCache {
    feas: Mutex<FeasTable>,
    elim: Mutex<FxMap<(CanonicalSystem, u8, u32), Vec<i128>>>,
    feas_hits: AtomicU64,
    feas_misses: AtomicU64,
    elim_hits: AtomicU64,
    elim_misses: AtomicU64,
    unknown_verdicts: AtomicU64,
    peak_constraints: AtomicUsize,
    canon_ns: AtomicU64,
    scan_ns: AtomicU64,
    saved_ns: AtomicU64,
    query_ns: AtomicU64,
}

impl Default for FmeCache {
    fn default() -> Self {
        Self::with_feas_capacity(FEAS_MEMO_CAP)
    }
}

impl FmeCache {
    /// An empty cache with the default feasibility-memo capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache whose feasibility memo holds at most `cap`
    /// entries, evicting second-chance victims beyond that. `cap == 0`
    /// disables feasibility memoization entirely (every query scans).
    pub fn with_feas_capacity(cap: usize) -> Self {
        FmeCache {
            feas: Mutex::new(FeasTable::with_capacity(cap)),
            elim: Mutex::new(FxMap::default()),
            feas_hits: AtomicU64::new(0),
            feas_misses: AtomicU64::new(0),
            elim_hits: AtomicU64::new(0),
            elim_misses: AtomicU64::new(0),
            unknown_verdicts: AtomicU64::new(0),
            peak_constraints: AtomicUsize::new(0),
            canon_ns: AtomicU64::new(0),
            scan_ns: AtomicU64::new(0),
            saved_ns: AtomicU64::new(0),
            query_ns: AtomicU64::new(0),
        }
    }

    /// Clone out every memoized feasibility entry `(canonical form,
    /// verdict, original scan cost in ns)` — the payload a persistent
    /// snapshot carries across process restarts.
    pub fn export_feas(&self) -> Vec<(CanonicalSystem, Feasibility, u64)> {
        let memo = self.feas.lock().unwrap();
        memo.ring
            .iter()
            .filter_map(|k| {
                let slot = memo.map.get(k)?;
                Some(((**k).clone(), slot.f, slot.cost))
            })
            .collect()
    }

    /// Seed the feasibility memo from previously exported entries (a
    /// restarted shard rejoining from its persisted snapshot). Entries
    /// beyond capacity evict as usual; preloading counts toward neither
    /// hits nor misses.
    pub fn preload_feas(
        &self,
        entries: impl IntoIterator<Item = (CanonicalSystem, Feasibility, u64)>,
    ) {
        let mut memo = self.feas.lock().unwrap();
        for (key, f, cost) in entries {
            memo.insert(key, f, cost);
        }
    }

    /// Memoized [`System::feasibility`]. Answers from the cache when an
    /// isomorphic system has been scanned before; otherwise runs the
    /// guarded scan and records the verdict.
    pub fn feasibility(&self, sys: &System, vt: &VarTable) -> Feasibility {
        if sys.is_contradictory() {
            return Feasibility::Infeasible;
        }
        let tq = std::time::Instant::now();
        let f = self.feasibility_timed(sys, vt);
        self.query_ns
            .fetch_add(tq.elapsed().as_nanos() as u64, Ordering::Relaxed);
        f
    }

    fn feasibility_timed(&self, sys: &System, vt: &VarTable) -> Feasibility {
        // Level 1: key on the raw system — cheapest possible hit.
        let t0 = std::time::Instant::now();
        let (key, _) = canonicalize(sys, vt);
        self.canon_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if let Some((f, cost)) = self.feas.lock().unwrap().get(&key) {
            self.feas_hits.fetch_add(1, Ordering::Relaxed);
            self.saved_ns.fetch_add(cost, Ordering::Relaxed);
            return f;
        }
        // Level 2: key on the scan's own reduced normal form. Distinct
        // raw systems frequently collapse to one reduced form (unit
        // equalities substituted away, duplicates and dominated rows
        // dropped), and the verdict is a pure function of it — so this
        // catches hits level 1 cannot, at reduce (not scan) cost.
        let t1 = std::time::Instant::now();
        let mut reduced = sys.clone();
        let peak0 = reduced.len();
        if reduced.reduce_for_scan(vt).is_err() {
            self.feas_misses.fetch_add(1, Ordering::Relaxed);
            let cost = t1.elapsed().as_nanos() as u64;
            self.scan_ns.fetch_add(cost, Ordering::Relaxed);
            self.peak_constraints.fetch_max(peak0, Ordering::Relaxed);
            self.unknown_verdicts.fetch_add(1, Ordering::Relaxed);
            self.feas
                .lock()
                .unwrap()
                .insert(key, Feasibility::Unknown, cost);
            return Feasibility::Unknown;
        }
        let t2 = std::time::Instant::now();
        let (rkey, _) = canonicalize(&reduced, vt);
        self.canon_ns
            .fetch_add(t2.elapsed().as_nanos() as u64, Ordering::Relaxed);
        {
            let mut memo = self.feas.lock().unwrap();
            if let Some((f, cost)) = memo.get(&rkey) {
                // Remember the raw key too so the next identical query
                // hits at level 1. The recorded cost stays the loop-only
                // cost this hit actually saved.
                memo.insert(key, f, cost);
                drop(memo);
                self.feas_hits.fetch_add(1, Ordering::Relaxed);
                self.saved_ns.fetch_add(cost, Ordering::Relaxed);
                return f;
            }
        }
        self.feas_misses.fetch_add(1, Ordering::Relaxed);
        let t3 = std::time::Instant::now();
        let (f, loop_peak) = reduced.scan_reduced(vt);
        let loop_cost = t3.elapsed().as_nanos() as u64;
        let full_cost = t1.elapsed().as_nanos() as u64;
        self.scan_ns.fetch_add(full_cost, Ordering::Relaxed);
        self.peak_constraints
            .fetch_max(peak0.max(loop_peak), Ordering::Relaxed);
        if f == Feasibility::Unknown {
            self.unknown_verdicts.fetch_add(1, Ordering::Relaxed);
        }
        let mut memo = self.feas.lock().unwrap();
        memo.insert(key, f, full_cost);
        memo.insert(rkey, f, loop_cost);
        f
    }

    /// Memoized single-variable elimination. The system is brought into
    /// canonical constraint order first, so the projected result is a
    /// pure function of the canonical form and can be replayed for any
    /// isomorphic system.
    pub fn eliminate(&self, sys: &System, vt: &VarTable, v: VarId) -> Result<System, Overflow> {
        if sys.is_contradictory() {
            return Ok(System::contradiction());
        }
        let (key, map) = canonicalize(sys, vt);
        let Some(ord) = map.iter().position(|x| *x == v) else {
            // `v` does not occur: elimination is the identity.
            return Ok(decode(&key.flat, &map));
        };
        let ekey = (key, vt.kind(v).scan_rank(), ord as u32);
        if let Some(stored) = self.elim.lock().unwrap().get(&ekey) {
            self.elim_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(decode(stored, &map));
        }
        self.elim_misses.fetch_add(1, Ordering::Relaxed);
        let mut sorted = sys.clone();
        sorted.canonical_sort(vt);
        let out = sorted.try_eliminate_owned(v)?;
        if out.is_contradictory() {
            return Ok(System::contradiction());
        }
        let (_, encoded) = encode_flat(&out, &ord_table(&map, vt));
        let result = decode(&encoded, &map);
        let mut memo = self.elim.lock().unwrap();
        if memo.len() < ELIM_MEMO_CAP {
            memo.insert(ekey, encoded);
        }
        Ok(result)
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> FmeCacheStats {
        let (entries, feas_evictions, feas_capacity) = {
            let memo = self.feas.lock().unwrap();
            (memo.map.len(), memo.evictions, memo.cap)
        };
        FmeCacheStats {
            feas_hits: self.feas_hits.load(Ordering::Relaxed),
            feas_misses: self.feas_misses.load(Ordering::Relaxed),
            elim_hits: self.elim_hits.load(Ordering::Relaxed),
            elim_misses: self.elim_misses.load(Ordering::Relaxed),
            unknown_verdicts: self.unknown_verdicts.load(Ordering::Relaxed),
            peak_constraints: self.peak_constraints.load(Ordering::Relaxed),
            entries,
            canon_ns: self.canon_ns.load(Ordering::Relaxed),
            scan_ns: self.scan_ns.load(Ordering::Relaxed),
            saved_ns: self.saved_ns.load(Ordering::Relaxed),
            query_ns: self.query_ns.load(Ordering::Relaxed),
            feas_evictions,
            feas_capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarKind;

    fn chain(vt: &mut VarTable, tag: &str) -> (System, VarId) {
        // 0 <= i <= 5, j == i + 10, j <= 12  (feasible)
        let i = vt.fresh(format!("i{tag}"), VarKind::LoopIndex);
        let j = vt.fresh(format!("j{tag}"), VarKind::LoopIndex);
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(0), LinExpr::constant(5));
        s.add_eq(LinExpr::var(j) - LinExpr::var(i) - LinExpr::constant(10));
        s.add_ge(LinExpr::constant(12) - LinExpr::var(j));
        (s, j)
    }

    #[test]
    fn isomorphic_systems_share_a_canonical_form() {
        let mut vt = VarTable::new();
        let (a, _) = chain(&mut vt, "a");
        let (b, _) = chain(&mut vt, "b");
        let (ka, ma) = canonicalize(&a, &vt);
        let (kb, mb) = canonicalize(&b, &vt);
        assert_eq!(ka, kb);
        assert_ne!(ma, mb, "distinct vars, same shape");
    }

    #[test]
    fn different_ranks_do_not_collide() {
        let mut vt = VarTable::new();
        let i = vt.fresh("i", VarKind::LoopIndex);
        let p = vt.fresh("p", VarKind::Processor);
        let mut a = System::new();
        a.add_ge(LinExpr::var(i) - LinExpr::constant(1));
        let mut b = System::new();
        b.add_ge(LinExpr::var(p) - LinExpr::constant(1));
        assert_ne!(canonicalize(&a, &vt).0, canonicalize(&b, &vt).0);
    }

    #[test]
    fn cache_hits_on_isomorphic_queries_and_agrees_with_direct_scan() {
        let mut vt = VarTable::new();
        let (a, _) = chain(&mut vt, "a");
        let (b, _) = chain(&mut vt, "b");
        let cache = FmeCache::new();
        let fa = cache.feasibility(&a, &vt);
        let fb = cache.feasibility(&b, &vt);
        assert_eq!(fa, a.feasibility(&vt));
        assert_eq!(fb, b.feasibility(&vt));
        assert_eq!(fa, fb);
        let st = cache.stats();
        assert_eq!(st.feas_misses, 1);
        assert_eq!(st.feas_hits, 1);
        // The single scan memoizes the raw form and its reduced normal
        // form (distinct here: the unit equality substitutes away).
        assert_eq!(st.entries, 2);
        assert!(st.feas_hit_rate() > 0.49 && st.feas_hit_rate() < 0.51);
    }

    #[test]
    fn memoized_eliminate_replays_for_isomorphic_systems() {
        let mut vt = VarTable::new();
        let (a, ja) = chain(&mut vt, "a");
        let (b, jb) = chain(&mut vt, "b");
        let cache = FmeCache::new();
        let ea = cache.eliminate(&a, &vt, ja).unwrap();
        let eb = cache.eliminate(&b, &vt, jb).unwrap();
        assert_eq!(cache.stats().elim_misses, 1);
        assert_eq!(cache.stats().elim_hits, 1);
        // The replayed projection is the renamed image of the computed one.
        assert_eq!(
            canonicalize(&ea, &vt).0,
            canonicalize(&eb, &vt).0,
            "replayed elimination must match"
        );
        // And it matches what the unmemoized (canonically sorted)
        // elimination produces.
        let mut direct = a.clone();
        direct.canonical_sort(&vt);
        let direct = direct.try_eliminate_owned(ja).unwrap();
        assert_eq!(canonicalize(&ea, &vt).0, canonicalize(&direct, &vt).0);
    }

    /// Distinct (non-isomorphic) systems to fill the memo with: each
    /// tag gets a different constant bound, which survives
    /// canonicalization.
    fn distinct_system(vt: &mut VarTable, tag: i128) -> System {
        let i = vt.fresh(format!("e{tag}"), VarKind::LoopIndex);
        let mut s = System::new();
        s.add_range(
            LinExpr::var(i),
            LinExpr::constant(0),
            LinExpr::constant(100 + tag),
        );
        s
    }

    #[test]
    fn capacity_is_enforced_by_eviction_not_refusal() {
        let mut vt = VarTable::new();
        let cache = FmeCache::with_feas_capacity(8);
        for t in 0..40 {
            cache.feasibility(&distinct_system(&mut vt, t), &vt);
        }
        let st = cache.stats();
        assert!(st.entries <= 8, "capacity exceeded: {}", st.entries);
        assert_eq!(st.feas_capacity, 8);
        assert!(st.feas_evictions > 0, "nothing was evicted: {st:?}");
        // Entries keep being admitted after the table first filled: the
        // *latest* system must be resident (a refuse-at-cap policy
        // would have dropped it).
        let last = distinct_system(&mut vt, 39);
        let hits0 = cache.stats().feas_hits;
        cache.feasibility(&last, &vt);
        assert_eq!(
            cache.stats().feas_hits,
            hits0 + 1,
            "latest entry not resident"
        );
    }

    #[test]
    fn second_chance_protects_the_hot_entry() {
        let mut vt = VarTable::new();
        let cache = FmeCache::with_feas_capacity(4);
        let hot = distinct_system(&mut vt, 1000);
        cache.feasibility(&hot, &vt); // miss: resident + referenced
        for t in 0..32 {
            cache.feasibility(&distinct_system(&mut vt, t), &vt);
            // Re-touch the hot entry so its referenced bit survives
            // every clock sweep.
            cache.feasibility(&hot, &vt);
        }
        let st = cache.stats();
        assert!(st.feas_evictions >= 28, "{st:?}");
        let hits0 = st.feas_hits;
        cache.feasibility(&hot, &vt);
        assert_eq!(
            cache.stats().feas_hits,
            hits0 + 1,
            "hot entry was evicted despite constant touches"
        );
    }

    #[test]
    fn zero_capacity_disables_memoization_without_breaking_queries() {
        let mut vt = VarTable::new();
        let cache = FmeCache::with_feas_capacity(0);
        let s = distinct_system(&mut vt, 7);
        let direct = s.feasibility(&vt);
        assert_eq!(cache.feasibility(&s, &vt), direct);
        assert_eq!(cache.feasibility(&s, &vt), direct);
        let st = cache.stats();
        assert_eq!(st.feas_hits, 0);
        assert_eq!(st.feas_misses, 2);
        assert_eq!(st.entries, 0);
    }

    #[test]
    fn export_and_preload_round_trip_preserves_verdicts() {
        let mut vt = VarTable::new();
        let cache = FmeCache::new();
        let (a, _) = chain(&mut vt, "a");
        let fa = cache.feasibility(&a, &vt);
        let entries = cache.export_feas();
        assert!(!entries.is_empty());
        let fresh = FmeCache::new();
        fresh.preload_feas(entries);
        assert_eq!(fresh.stats().entries, cache.stats().entries);
        assert_eq!(fresh.feasibility(&a, &vt), fa);
        let st = fresh.stats();
        assert_eq!(st.feas_hits, 1, "preloaded verdict must hit: {st:?}");
        assert_eq!(st.feas_misses, 0);
    }

    #[test]
    fn unknown_verdicts_are_counted() {
        let mut vt = VarTable::new();
        let vs: Vec<VarId> = (0..6)
            .map(|k| vt.fresh(format!("x{k}"), VarKind::LoopIndex))
            .collect();
        let big: Vec<i128> = (0..6).map(|k| (1i128 << 64) + 2 * k + 1).collect();
        let mut s = System::new();
        for w in 0..5 {
            s.add_ge(LinExpr::term(vs[w], big[w]) - LinExpr::term(vs[w + 1], big[w + 1]));
            s.add_ge(
                LinExpr::term(vs[w + 1], big[w + 1] + 2) - LinExpr::term(vs[w], big[w] + 2)
                    + LinExpr::constant(1),
            );
        }
        let cache = FmeCache::new();
        assert_eq!(cache.feasibility(&s, &vt), Feasibility::Unknown);
        assert_eq!(cache.stats().unknown_verdicts, 1);
        // Cached replay gives the same (conservative) answer.
        assert_eq!(cache.feasibility(&s, &vt), Feasibility::Unknown);
        assert_eq!(cache.stats().feas_hits, 1);
    }
}
