//! Figure: example transformations — prints the source, the fork-join
//! schedule, and the optimized SPMD schedule for the stencil
//! (`jacobi2d`) and the pipelined (`adi`) kernels, mirroring the paper's
//! code-transformation figures.

use spmd_bench::instance;
use spmd_opt::render_plan;
use suite::Scale;

fn show(name: &str) {
    let def = suite::by_name(name).expect("kernel exists");
    let (built, bind) = instance(&def, Scale::Test, 4);
    println!("==================================================================");
    println!("{} — {}", def.name, def.desc);
    println!("==================================================================\n");
    println!("--- source ---\n{}", ir::pretty::pretty(&built.prog));
    let fj = spmd_opt::fork_join(&built.prog, &bind);
    println!(
        "--- fork-join schedule ---\n{}",
        render_plan(&built.prog, &fj)
    );
    let (opt, log) = spmd_opt::optimize_logged(&built.prog, &bind);
    println!(
        "--- optimized SPMD schedule ---\n{}",
        render_plan(&built.prog, &opt)
    );
    println!("--- greedy decisions ---");
    for d in log {
        println!(
            "  s{:<3} {:<28} placed: {:<14} {}",
            d.site,
            d.label,
            d.placed_str(),
            d.reason
        );
    }
    println!();
}

fn main() {
    show("jacobi2d");
    show("adi");
    show("lu");
}
