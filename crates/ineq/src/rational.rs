//! Exact rational arithmetic on `i128`.
//!
//! Used wherever the inequality machinery needs to *evaluate* affine
//! expressions exactly (sample points, bound expressions with divisors,
//! verification oracles). The Fourier-Motzkin core itself works on integer
//! coefficients and never leaves `i128`.
//!
//! Nothing in this module panics on overflow: every operation that can
//! exceed `i128` returns `Result<_, Overflow>` (or `Option`), and
//! comparison is computed exactly in 256 bits so `Ord` is total. Callers
//! on the analysis hot path map [`Overflow`] to the conservative
//! `Unknown` feasibility verdict (keep the barrier); callers on oracle
//! paths may `expect` it, which turns a pathological *test input* into a
//! loud failure without ever aborting optimization of a real program.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Neg;

/// Marker for arithmetic overflow in exact integer/rational computation.
///
/// The FME elimination chain multiplies coefficients pairwise, so deep
/// chains can exceed `i128` even for modest inputs. Overflow is not an
/// error in the analysis: it propagates outward as the `Unknown`
/// feasibility verdict, which keeps the barrier (always sound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Overflow;

impl fmt::Display for Overflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exact-arithmetic overflow")
    }
}

/// Greatest common divisor of two integers (always non-negative).
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    // The only input whose |.| does not fit in i128 is i128::MIN, and
    // gcd(MIN, 0) = |MIN| which would overflow; clamp that single case.
    i128::try_from(a).unwrap_or(i128::MAX)
}

/// Least common multiple, or `None` on overflow.
pub fn checked_lcm(a: i128, b: i128) -> Option<i128> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    (a / gcd(a, b))
        .checked_mul(b)
        .map(|m| m.unsigned_abs())?
        .try_into()
        .ok()
}

/// Floor division that rounds toward negative infinity.
pub fn div_floor(a: i128, b: i128) -> i128 {
    debug_assert!(b != 0);
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division that rounds toward positive infinity.
pub fn div_ceil(a: i128, b: i128) -> i128 {
    debug_assert!(b != 0);
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Unsigned 128×128 → 256-bit multiply: returns `(hi, lo)`.
fn umul256(a: u128, b: u128) -> (u128, u128) {
    const M: u128 = (1u128 << 64) - 1;
    let (a0, a1) = (a & M, a >> 64);
    let (b0, b1) = (b & M, b >> 64);
    let ll = a0 * b0;
    let hl = a1 * b0;
    let lh = a0 * b1;
    let hh = a1 * b1;
    let mid = (ll >> 64) + (hl & M) + (lh & M);
    let lo = (mid << 64) | (ll & M);
    let hi = hh + (hl >> 64) + (lh >> 64) + (mid >> 64);
    (hi, lo)
}

/// Signed 128×128 → 256-bit multiply: `(hi, lo)` in two's complement.
fn imul256(a: i128, b: i128) -> (i128, u128) {
    let neg = (a < 0) != (b < 0) && a != 0 && b != 0;
    let (hi, lo) = umul256(a.unsigned_abs(), b.unsigned_abs());
    if neg {
        let nlo = lo.wrapping_neg();
        let nhi = (!hi).wrapping_add((lo == 0) as u128);
        (nhi as i128, nlo)
    } else {
        (hi as i128, lo)
    }
}

/// An exact rational number with `i128` numerator and denominator.
///
/// Invariants: denominator is strictly positive and `gcd(num, den) == 1`.
/// Arithmetic never panics on overflow: the `checked_*` methods return
/// `Err(Overflow)` instead, and `Ord::cmp` is computed exactly in 256
/// bits. (`new` still asserts a nonzero denominator — that is a logic
/// error, not a magnitude problem.)
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational `num / den`. Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g != 0 { (num / g, den / g) } else { (0, 1) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// The integer `n` as a rational.
    pub const fn int(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Zero.
    pub const fn zero() -> Self {
        Rational { num: 0, den: 1 }
    }

    /// One.
    pub const fn one() -> Self {
        Rational { num: 1, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// True if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> i128 {
        div_floor(self.num, self.den)
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> i128 {
        div_ceil(self.num, self.den)
    }

    /// Sign: -1, 0, or 1.
    pub fn signum(&self) -> i128 {
        self.num.signum()
    }

    /// Approximate value as `f64` (for reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Multiplicative inverse. Panics if zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// `self + rhs`, or `Err(Overflow)`.
    pub fn checked_add(self, rhs: Rational) -> Result<Rational, Overflow> {
        // Use the lcm of the denominators, not their product, so sums of
        // same-denominator values never grow the representation.
        let den = checked_lcm(self.den, rhs.den).ok_or(Overflow)?;
        let a = self.num.checked_mul(den / self.den).ok_or(Overflow)?;
        let b = rhs.num.checked_mul(den / rhs.den).ok_or(Overflow)?;
        Ok(Rational::new(a.checked_add(b).ok_or(Overflow)?, den))
    }

    /// `self - rhs`, or `Err(Overflow)`.
    pub fn checked_sub(self, rhs: Rational) -> Result<Rational, Overflow> {
        self.checked_add(rhs.checked_neg()?)
    }

    /// `self * rhs`, or `Err(Overflow)`.
    pub fn checked_mul(self, rhs: Rational) -> Result<Rational, Overflow> {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(rhs.num / g2).ok_or(Overflow)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1).ok_or(Overflow)?;
        Ok(Rational::new(num, den))
    }

    /// `self / rhs`, or `Err(Overflow)`. Panics if `rhs` is zero.
    pub fn checked_div(self, rhs: Rational) -> Result<Rational, Overflow> {
        self.checked_mul(rhs.recip())
    }

    /// `-self`, or `Err(Overflow)` (only `i128::MIN` numerators overflow).
    pub fn checked_neg(self) -> Result<Rational, Overflow> {
        Ok(Rational {
            num: self.num.checked_neg().ok_or(Overflow)?,
            den: self.den,
        })
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::int(n)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::int(n as i128)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.checked_neg().expect("negating i128::MIN rational")
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d with b,d > 0  <=>  a*d vs c*b, computed exactly in
        // 256 bits so no coefficient magnitude can panic here.
        let (lh, ll) = imul256(self.num, other.den);
        let (rh, rl) = imul256(other.num, self.den);
        lh.cmp(&rh).then(ll.cmp(&rl))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(i128::MIN, 2), 2);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(checked_lcm(4, 6), Some(12));
        assert_eq!(checked_lcm(0, 6), Some(0));
        assert_eq!(checked_lcm(-4, 6), Some(12));
        assert_eq!(checked_lcm(i128::MAX, i128::MAX - 1), None);
    }

    #[test]
    fn div_floor_ceil() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(7, -2), -4);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_ceil(7, -2), -3);
        assert_eq!(div_floor(6, 3), 2);
        assert_eq!(div_ceil(6, 3), 2);
    }

    #[test]
    fn normalization() {
        let r = Rational::new(6, -4);
        assert_eq!(r.numer(), -3);
        assert_eq!(r.denom(), 2);
        assert_eq!(Rational::new(0, -7), Rational::zero());
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a.checked_add(b), Ok(Rational::new(5, 6)));
        assert_eq!(a.checked_sub(b), Ok(Rational::new(1, 6)));
        assert_eq!(a.checked_mul(b), Ok(Rational::new(1, 6)));
        assert_eq!(a.checked_div(b), Ok(Rational::new(3, 2)));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn overflow_is_reported_not_panicked() {
        let big = Rational::int(i128::MAX);
        assert_eq!(big.checked_add(Rational::one()), Err(Overflow));
        assert_eq!(big.checked_mul(Rational::int(2)), Err(Overflow));
        // Huge coprime denominators: the sum itself overflows.
        let a = Rational::new(1, i128::MAX);
        let b = Rational::new(1, i128::MAX - 1);
        assert_eq!(a.checked_add(b), Err(Overflow));
    }

    #[test]
    fn cmp_is_exact_at_extreme_magnitudes() {
        // Cross-multiplication here exceeds i128; the 256-bit compare
        // must still order these correctly instead of panicking.
        let a = Rational::new(i128::MAX, i128::MAX - 1); // slightly > 1
        let b = Rational::new(i128::MAX - 2, i128::MAX - 1); // slightly < 1
        assert!(a > b);
        assert!(a > Rational::one());
        assert!(b < Rational::one());
        let c = Rational::new(-i128::MAX, 3);
        assert!(c < b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::int(5).floor(), 5);
        assert_eq!(Rational::int(5).ceil(), 5);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }
}
