//! 2-D Jacobi relaxation — the paper's motivating stencil class.
//!
//! Structure per time step: a 5-point stencil phase `B <- avg(A)` and a
//! copy-back phase `A <- B`, both parallel over block-distributed rows.
//!
//! Expected optimization: the two phases merge into one SPMD region with
//! the enclosing time loop; the inter-phase barrier is *eliminated*
//! (aligned), and the loop-carried barrier is replaced by *neighbor*
//! post/wait flags (±1 row reads). Exactly one barrier remains (region
//! end) per run instead of `2 × tmax`.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (12, 3),
        Scale::Small => (64, 10),
        Scale::Full => (512, 30),
    };
    let mut pb = ProgramBuilder::new("jacobi2d");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let a = pb.array("A", &[sym(n), sym(n)], dist_block());
    let b = pb.array("B", &[sym(n), sym(n)], dist_block());

    // Initialization (parallel, contributes fork-join barriers too).
    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(a, [idx(i0), idx(j0)]),
        ival(idx(i0) * 31 + idx(j0)).sin(),
    );
    pb.assign(elem(b, [idx(i0), idx(j0)]), ex(0.0));
    pb.end();
    pb.end();

    // Time sweep.
    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);
    let i = pb.begin_par("i", con(1), sym(n) - 2);
    let j = pb.begin_seq("j", con(1), sym(n) - 2);
    pb.assign(
        elem(b, [idx(i), idx(j)]),
        ex(0.25)
            * (arr(a, [idx(i) - 1, idx(j)])
                + arr(a, [idx(i) + 1, idx(j)])
                + arr(a, [idx(i), idx(j) - 1])
                + arr(a, [idx(i), idx(j) + 1])),
    );
    pb.end();
    pb.end();
    let i2 = pb.begin_par("i2", con(1), sym(n) - 2);
    let j2 = pb.begin_seq("j2", con(1), sym(n) - 2);
    pb.assign(elem(a, [idx(i2), idx(j2)]), arr(b, [idx(i2), idx(j2)]));
    pb.end();
    pb.end();
    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizer_leaves_one_barrier_and_uses_neighbor_flags() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let plan = spmd_opt::optimize(&built.prog, &bind);
        let st = plan.static_stats();
        assert_eq!(st.regions, 1, "{st:?}");
        assert_eq!(st.barriers, 1, "{st:?}");
        assert!(st.neighbor_syncs >= 1, "{st:?}");
    }
}
