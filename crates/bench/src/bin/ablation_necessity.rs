//! Ablation A4 — tightness of the placement: strip each placed
//! synchronization individually and check whether some adversarial
//! virtual interleaving then produces wrong results. A high "necessary"
//! fraction means the optimizer is not leaving easy eliminations on the
//! table (the complement of the soundness tests, which check it never
//! removes too much).

use interp::{run_sequential, run_virtual, Mem, ScheduleOrder};
use spmd_bench::{instance, Table};
use spmd_opt::{RItem, SpmdProgram, SyncOp, TopItem};
use suite::Scale;

/// Collect the number of non-`None` sync slots.
fn count_slots(plan: &SpmdProgram) -> usize {
    let mut n = 0;
    visit_slots(&mut plan.clone(), &mut |_s| n += 1);
    n
}

/// Visit every non-`None` sync slot mutably, in a stable order.
fn visit_slots(plan: &mut SpmdProgram, f: &mut impl FnMut(&mut SyncOp)) {
    fn items(list: &mut [RItem], f: &mut impl FnMut(&mut SyncOp)) {
        for it in list {
            match it {
                RItem::Phase(p) => {
                    if p.after.is_some() {
                        f(&mut p.after);
                    }
                }
                RItem::Seq {
                    body,
                    bottom,
                    after,
                    ..
                } => {
                    items(body, f);
                    if bottom.is_some() {
                        f(bottom);
                    }
                    if after.is_some() {
                        f(after);
                    }
                }
            }
        }
    }
    fn top(list: &mut [TopItem], f: &mut impl FnMut(&mut SyncOp)) {
        for it in list {
            match it {
                TopItem::SerialStmt(_) => {}
                TopItem::MasterLoop { body, .. } => top(body, f),
                TopItem::Region(r) => {
                    items(&mut r.items, f);
                    if r.end.is_some() {
                        f(&mut r.end);
                    }
                }
            }
        }
    }
    top(&mut plan.items, f);
}

/// Strip the k-th non-`None` slot.
fn strip_slot(plan: &SpmdProgram, k: usize) -> SpmdProgram {
    let mut out = plan.clone();
    let mut idx = 0;
    visit_slots(&mut out, &mut |s| {
        if idx == k {
            *s = SyncOp::None;
        }
        idx += 1;
    });
    out
}

fn main() {
    let nprocs = 4;
    println!(
        "Ablation: how many placed syncs are demonstrably necessary? (P = {nprocs}, Test scale)\n"
    );
    println!("A sync is counted necessary when stripping it makes some of 6 adversarial");
    println!("virtual orders diverge from the sequential semantics. Syncs not caught are");
    println!("either schedule-lucky or genuinely conservative placements.\n");
    let mut t = Table::new(&[
        "program",
        "placed syncs",
        "demonstrably necessary",
        "fraction",
    ]);
    let orders = [
        ScheduleOrder::Reverse,
        ScheduleOrder::RoundRobin,
        ScheduleOrder::Random(1),
        ScheduleOrder::Random(7),
        ScheduleOrder::Random(31),
        ScheduleOrder::Random(101),
    ];
    for def in suite::all() {
        let (built, bind) = instance(&def, Scale::Test, nprocs);
        let plan = spmd_opt::optimize(&built.prog, &bind);
        let oracle = Mem::new(&built.prog, &bind);
        run_sequential(&built.prog, &bind, &oracle);
        let n = count_slots(&plan);
        let mut necessary = 0;
        for k in 0..n {
            let stripped = strip_slot(&plan, k);
            let mut diverged = false;
            for order in orders {
                let mem = Mem::new(&built.prog, &bind);
                run_virtual(&built.prog, &bind, &stripped, &mem, order);
                if mem.max_abs_diff(&oracle) > 1e-9 {
                    diverged = true;
                    break;
                }
            }
            if diverged {
                necessary += 1;
            }
        }
        t.row(vec![
            def.name.to_string(),
            n.to_string(),
            necessary.to_string(),
            if n > 0 {
                format!("{:.0}%", 100.0 * necessary as f64 / n as f64)
            } else {
                "-".into()
            },
        ]);
    }
    print!("{}", t.render());
}
