//! Counter synchronization — the paper's flexible event variables.
//!
//! "Processors defining (producing) values can increment a counter, and
//! processors accessing (consuming) the values wait until the counter is
//! incremented to the proper value." Unlike full barriers, only the
//! processors actually involved in the communication pay for the
//! synchronization, and only one synchronization happens per pair of
//! communicating processors.

use crate::stats::SyncStats;
use crossbeam::utils::{Backoff, CachePadded};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A bank of monotonically increasing synchronization counters.
pub struct Counters {
    c: Vec<CachePadded<AtomicU64>>,
    stats: Option<Arc<SyncStats>>,
}

impl Counters {
    /// A bank of `n` counters, all starting at zero.
    pub fn new(n: usize) -> Self {
        Counters {
            c: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            stats: None,
        }
    }

    /// Attach instrumentation.
    pub fn with_stats(mut self, stats: Arc<SyncStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Number of counters in the bank.
    pub fn len(&self) -> usize {
        self.c.len()
    }

    /// True if the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.c.is_empty()
    }

    /// Producer side: increment counter `id` (release ordering — the
    /// produced data becomes visible to waiters).
    pub fn increment(&self, id: usize) {
        self.c[id].fetch_add(1, Ordering::Release);
        if let Some(s) = &self.stats {
            s.counter_increment();
        }
    }

    /// Consumer side: block until counter `id` reaches at least `v`
    /// (acquire ordering).
    pub fn wait_ge(&self, id: usize, v: u64) {
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        let backoff = Backoff::new();
        while self.c[id].load(Ordering::Acquire) < v {
            if backoff.is_completed() {
                std::thread::yield_now();
            } else {
                backoff.snooze();
            }
        }
        if let (Some(s), Some(t0)) = (&self.stats, t0) {
            s.counter_wait(t0.elapsed());
        }
    }

    /// Current value of counter `id`.
    pub fn value(&self, id: usize) -> u64 {
        self.c[id].load(Ordering::Acquire)
    }

    /// Reset every counter to zero (only between regions, never while
    /// other processors may be waiting).
    pub fn reset(&self) {
        for c in &self.c {
            c.store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_consumer_ordering() {
        let c = Arc::new(Counters::new(1));
        let data = Arc::new(AtomicU64::new(0));
        let consumer = {
            let c = Arc::clone(&c);
            let data = Arc::clone(&data);
            std::thread::spawn(move || {
                c.wait_ge(0, 1);
                // Release/acquire on the counter publishes the data.
                assert_eq!(data.load(Ordering::Relaxed), 42);
            })
        };
        data.store(42, Ordering::Relaxed);
        c.increment(0);
        consumer.join().unwrap();
    }

    #[test]
    fn wait_for_multiple_increments() {
        let c = Arc::new(Counters::new(2));
        let n_producers = 4;
        let handles: Vec<_> = (0..n_producers)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    c.increment(1);
                })
            })
            .collect();
        c.wait_ge(1, n_producers as u64);
        assert_eq!(c.value(1), n_producers as u64);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn stats_count_operations() {
        let stats = Arc::new(SyncStats::new());
        let c = Counters::new(1).with_stats(Arc::clone(&stats));
        c.increment(0);
        c.wait_ge(0, 1);
        assert_eq!(stats.counter_increments_count(), 1);
        assert_eq!(stats.counter_waits_count(), 1);
    }

    #[test]
    fn reset_zeroes() {
        let c = Counters::new(3);
        c.increment(2);
        c.reset();
        assert_eq!(c.value(2), 0);
    }
}
