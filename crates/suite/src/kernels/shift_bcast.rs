//! Shift-plus-broadcast: one produced array is consumed both as a
//! one-cell shift (a `Neighbor` pattern) and as a single-element
//! broadcast of `B[0]` across the same sync site. Regression kernel
//! for the lattice cliff where any join past `Neighbor` degraded
//! straight to `General` and kept a spurious barrier every time step:
//! the broadcast's exact owner distances ({+1,+2,+3} at four
//! processors) fuse with the shift's +1 into one pairwise wait set.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (16, 3),
        Scale::Small => (512, 10),
        Scale::Full => (4096, 24),
    };
    let mut pb = ProgramBuilder::new("shift_bcast");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let a = pb.array("A", &[sym(n)], dist_block());
    let b = pb.array("B", &[sym(n)], dist_block());
    let c = pb.array("C", &[sym(n)], dist_block());
    let d = pb.array("D", &[sym(n)], dist_block());

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i0)]), ival(idx(i0) * 19).sin());
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);
    // Producer phase: B, including the broadcast element B[0].
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.assign(elem(b, [idx(i)]), arr(a, [idx(i)]) * ex(0.5) + ex(1.0));
    pb.end();
    // Consumer phase: a one-cell shift of B and a broadcast of B[0],
    // conflicting with the producer phase across one sync site.
    let j = pb.begin_par("j", con(1), sym(n) - 1);
    pb.assign(elem(c, [idx(j)]), arr(b, [idx(j) - 1]) + ex(0.125));
    pb.assign(
        elem(d, [idx(j)]),
        arr(b, [con(0)]) * ex(0.25) + arr(a, [idx(j)]),
    );
    pb.end();
    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The regression: before distance-vector sync, the Neighbor ⊔
    /// Producer1 join at the producer phase's sync site collapsed to
    /// General and kept a barrier every time step.
    #[test]
    fn neighbor_join_broadcast_fuses_instead_of_keeping_a_barrier() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        assert_eq!(st.regions, 1, "{st:?}");
        assert!(st.pair_syncs >= 1, "{st:?}");
        // The carried anti/flow spectrum at the loop bottom spans all
        // six distances at P=4 — wider than the pairwise fan-in budget,
        // so that barrier stays (correctly); the inter-phase spurious
        // barrier is the one that must be gone.
        assert!(st.barriers <= 2, "{st:?}");
    }

    /// The fused wait set carries the shift distance and every
    /// broadcast owner distance.
    #[test]
    fn fused_site_carries_shift_and_broadcast_distances() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let plan = spmd_opt::optimize(&built.prog, &bind);
        let found = spmd_opt::sync_sites(&built.prog, &plan)
            .iter()
            .any(|s| match &s.op {
                spmd_opt::SyncOp::PairCounter { dists, .. } => {
                    dists.contains(1) && dists.contains(2) && dists.contains(3)
                }
                _ => false,
            });
        assert!(found, "no fused pairwise site with dists {{+1,+2,+3}}");
    }
}
