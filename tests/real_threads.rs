//! Real-thread execution of every kernel matches the sequential oracle,
//! and the runtime instrumentation agrees with the schedule-derived
//! dynamic counts.

use barrier_elim::interp::{run_parallel, run_sequential, Mem};
use barrier_elim::runtime::Team;
use barrier_elim::spmd_opt::{fork_join, optimize};
use barrier_elim::suite::{self, Scale};
use std::sync::Arc;

const TOL: f64 = 1e-9;

#[test]
fn every_kernel_runs_correctly_on_real_threads() {
    let nprocs = 4;
    let team = Team::new(nprocs);
    for def in suite::all() {
        let built = (def.build)(Scale::Test);
        let bind = Arc::new(built.bindings(nprocs as i64));
        let prog = Arc::new(built.prog);
        let oracle = Mem::new(&prog, &bind);
        run_sequential(&prog, &bind, &oracle);

        for (label, plan) in [
            ("fork-join", fork_join(&prog, &bind)),
            ("optimized", optimize(&prog, &bind)),
        ] {
            let mem = Arc::new(Mem::new(&prog, &bind));
            let out = run_parallel(&prog, &bind, &plan, &mem, &team);
            let diff = mem.max_abs_diff(&oracle);
            assert!(
                diff <= TOL,
                "{} ({label}): diverged by {diff:e}",
                def.name
            );
            assert_eq!(
                out.stats.barrier_episodes, out.counts.barriers,
                "{} ({label}): instrumented barrier count mismatch",
                def.name
            );
            assert_eq!(
                out.stats.counter_increments, out.counts.counter_increments,
                "{} ({label}): instrumented counter count mismatch",
                def.name
            );
            assert_eq!(
                out.stats.neighbor_posts, out.counts.neighbor_posts,
                "{} ({label}): instrumented neighbor count mismatch",
                def.name
            );
        }
    }
}

#[test]
fn optimized_never_executes_more_barriers_than_fork_join() {
    let nprocs = 4;
    let team = Team::new(nprocs);
    for def in suite::all() {
        // `transpose` gains a loop-bottom barrier from region merging; it
        // is the documented worst case.
        if def.name == "transpose" {
            continue;
        }
        let built = (def.build)(Scale::Test);
        let bind = Arc::new(built.bindings(nprocs as i64));
        let prog = Arc::new(built.prog);
        let run = |plan| {
            let mem = Arc::new(Mem::new(&prog, &bind));
            run_parallel(&prog, &bind, &plan, &mem, &team)
        };
        let base = run(fork_join(&prog, &bind));
        let opt = run(optimize(&prog, &bind));
        assert!(
            opt.counts.barriers <= base.counts.barriers,
            "{}: {} vs {}",
            def.name,
            opt.counts.barriers,
            base.counts.barriers
        );
    }
}

#[test]
fn virtual_and_real_dynamic_counts_agree() {
    let nprocs = 4;
    let team = Team::new(nprocs);
    for name in ["jacobi2d", "adi", "lu", "tomcatv_mesh"] {
        let def = suite::by_name(name).unwrap();
        let built = (def.build)(Scale::Test);
        let bind = Arc::new(built.bindings(nprocs as i64));
        let prog = Arc::new(built.prog);
        let plan = optimize(&prog, &bind);
        let mem = Arc::new(Mem::new(&prog, &bind));
        let real = run_parallel(&prog, &bind, &plan, &mem, &team);
        let vmem = Mem::new(&prog, &bind);
        let virt = barrier_elim::interp::run_virtual(
            &prog,
            &bind,
            &plan,
            &vmem,
            barrier_elim::interp::ScheduleOrder::RoundRobin,
        );
        assert_eq!(real.counts, virt.counts, "{name}");
    }
}

#[test]
fn tree_barrier_executor_matches_central() {
    use barrier_elim::interp::{run_parallel_with, BarrierKind};
    let nprocs = 4;
    let team = Team::new(nprocs);
    for name in ["jacobi2d", "lu", "shallow"] {
        let def = suite::by_name(name).unwrap();
        let built = (def.build)(Scale::Test);
        let bind = Arc::new(built.bindings(nprocs as i64));
        let prog = Arc::new(built.prog);
        let plan = optimize(&prog, &bind);
        let oracle = Mem::new(&prog, &bind);
        run_sequential(&prog, &bind, &oracle);
        for kind in [BarrierKind::Central, BarrierKind::Tree] {
            let mem = Arc::new(Mem::new(&prog, &bind));
            let out = run_parallel_with(&prog, &bind, &plan, &mem, &team, kind);
            assert!(
                mem.max_abs_diff(&oracle) < 1e-9,
                "{name} with {kind:?} diverged"
            );
            assert_eq!(out.stats.barrier_episodes, out.counts.barriers);
        }
    }
}
