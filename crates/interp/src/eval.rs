//! Expression evaluation and (filtered) subtree execution.

use crate::mem::Mem;
use crate::trace::{AccessKind, Target};
use analysis::Bindings;
use ir::{AffAtom, Affine, Assign, Expr, LhsRef, LoopId, Node, NodeId, Program, RedOp, ScalarId};

/// Current loop-index values (indexed by `LoopId`).
pub struct Env {
    vals: Vec<i64>,
    bound: Vec<bool>,
}

impl Env {
    /// Fresh environment with no loop bound.
    pub fn new(prog: &Program) -> Self {
        Env {
            vals: vec![0; prog.num_loops as usize],
            bound: vec![false; prog.num_loops as usize],
        }
    }

    /// Bind a loop index.
    #[inline]
    pub fn set(&mut self, l: LoopId, v: i64) {
        self.vals[l.0 as usize] = v;
        self.bound[l.0 as usize] = true;
    }

    /// Unbind a loop index.
    #[inline]
    pub fn clear(&mut self, l: LoopId) {
        self.bound[l.0 as usize] = false;
    }

    /// Value of a loop index, if bound.
    #[inline]
    pub fn get(&self, l: LoopId) -> Option<i64> {
        if self.bound[l.0 as usize] {
            Some(self.vals[l.0 as usize])
        } else {
            None
        }
    }

    /// Snapshot of the bound loops (for event payloads).
    pub fn snapshot(&self) -> Vec<(LoopId, i64)> {
        (0..self.vals.len())
            .filter(|&k| self.bound[k])
            .map(|k| (LoopId(k as u32), self.vals[k]))
            .collect()
    }

    /// Restore from a snapshot (clearing everything else).
    pub fn restore(&mut self, snap: &[(LoopId, i64)]) {
        self.bound.iter_mut().for_each(|b| *b = false);
        for &(l, v) in snap {
            self.set(l, v);
        }
    }
}

/// Evaluate an affine expression; panics on unbound atoms (an
/// interpreter bug, not a user error).
pub fn eval_affine(bind: &Bindings, env: &Env, e: &Affine) -> i64 {
    try_eval_affine(bind, env, e).expect("unbound atom in affine expression")
}

/// Evaluate an affine expression, `None` when an atom is unbound.
pub fn try_eval_affine(bind: &Bindings, env: &Env, e: &Affine) -> Option<i64> {
    let mut acc = e.constant_term();
    for (a, c) in e.terms() {
        let v = match a {
            AffAtom::Sym(s) => bind.get(s)?,
            AffAtom::Loop(l) => env.get(l)?,
        };
        acc += c * v;
    }
    Some(acc)
}

/// Evaluate a value expression as processor `pid` (private arrays route
/// to the processor's own copy).
pub fn eval_expr(
    prog: &Program,
    bind: &Bindings,
    mem: &Mem,
    env: &Env,
    e: &Expr,
    pid: usize,
) -> f64 {
    match e {
        Expr::Lit(v) => *v,
        Expr::Idx(a) => eval_affine(bind, env, a) as f64,
        Expr::Scalar(s) => {
            if !prog.scalar(*s).privatizable {
                mem.trace(pid, Target::Scalar(*s), AccessKind::Read);
            }
            mem.get_scalar(*s)
        }
        Expr::Elem(a, subs) => {
            let idx: Vec<i64> = subs.iter().map(|s| eval_affine(bind, env, s)).collect();
            let st = mem.array_view(*a, pid);
            if !mem.is_private(*a) {
                mem.trace(
                    pid,
                    Target::Elem(*a, st.flat_offset(&idx) as u64),
                    AccessKind::Read,
                );
            }
            st.get(&idx)
        }
        Expr::Bin(op, l, r) => op.apply(
            eval_expr(prog, bind, mem, env, l, pid),
            eval_expr(prog, bind, mem, env, r, pid),
        ),
        Expr::Un(op, a) => op.apply(eval_expr(prog, bind, mem, env, a, pid)),
    }
}

/// Per-processor reduction partials: inside parallel phases, scalar
/// reductions accumulate here and are flushed atomically at phase end.
#[derive(Default)]
pub struct RedAcc {
    active: bool,
    parts: Vec<(ScalarId, RedOp, f64)>,
}

impl RedAcc {
    /// Inactive accumulator (reductions apply directly to memory).
    pub fn inactive() -> Self {
        Self::default()
    }

    /// Active accumulator for a parallel phase.
    pub fn active() -> Self {
        RedAcc {
            active: true,
            parts: Vec::new(),
        }
    }

    fn accumulate(&mut self, s: ScalarId, op: RedOp, v: f64) {
        if let Some(p) = self
            .parts
            .iter_mut()
            .find(|(ps, pop, _)| *ps == s && *pop == op)
        {
            p.2 = op.apply(p.2, v);
        } else {
            self.parts.push((s, op, op.apply(op.identity(), v)));
        }
    }

    /// Flush processor `pid`'s partials into shared memory (atomic per
    /// scalar).
    pub fn flush(&mut self, mem: &Mem, pid: usize) {
        for (s, op, v) in self.parts.drain(..) {
            mem.trace(pid, Target::Scalar(s), AccessKind::Reduce);
            mem.reduce_scalar(s, op, v);
        }
    }
}

fn exec_assign(
    prog: &Program,
    bind: &Bindings,
    mem: &Mem,
    env: &Env,
    a: &Assign,
    red: &mut RedAcc,
    pid: usize,
) {
    let v = eval_expr(prog, bind, mem, env, &a.rhs, pid);
    let trace_scalar = |s: ScalarId, kind: AccessKind| {
        if !prog.scalar(s).privatizable {
            mem.trace(pid, Target::Scalar(s), kind);
        }
    };
    match (&a.lhs, a.reduction) {
        (LhsRef::Scalar(s), None) => {
            trace_scalar(*s, AccessKind::Write);
            mem.set_scalar(*s, v);
        }
        (LhsRef::Scalar(s), Some(op)) => {
            if red.active {
                red.accumulate(*s, op, v);
            } else {
                // Non-atomic read-modify-write (serial / master context).
                trace_scalar(*s, AccessKind::Read);
                trace_scalar(*s, AccessKind::Write);
                mem.set_scalar(*s, op.apply(mem.get_scalar(*s), v));
            }
        }
        (LhsRef::Elem(arr, subs), redop) => {
            let idx: Vec<i64> = subs.iter().map(|s| eval_affine(bind, env, s)).collect();
            let st = mem.array_view(*arr, pid);
            let shared = !mem.is_private(*arr);
            let target = Target::Elem(*arr, st.flat_offset(&idx) as u64);
            match redop {
                None => {
                    if shared {
                        mem.trace(pid, target, AccessKind::Write);
                    }
                    st.set(&idx, v);
                }
                Some(op) => {
                    if shared {
                        // Element reductions are a non-atomic RMW.
                        mem.trace(pid, target, AccessKind::Read);
                        mem.trace(pid, target, AccessKind::Write);
                    }
                    st.set(&idx, op.apply(st.get(&idx), v));
                }
            }
        }
    }
}

/// Execute a subtree with an optional per-statement ownership filter
/// (used by the general "scan" execution mode of distributed phases) and
/// a reduction accumulator.
pub fn exec_node(
    prog: &Program,
    bind: &Bindings,
    mem: &Mem,
    env: &mut Env,
    node: NodeId,
    filter: Option<&dyn Fn(&Env) -> bool>,
    red: &mut RedAcc,
    pid: usize,
) {
    match prog.node(node) {
        Node::Assign(a) => {
            if let Some(f) = filter {
                if !f(env) {
                    return;
                }
            }
            exec_assign(prog, bind, mem, env, a, red, pid);
        }
        Node::Guard(g) => {
            for c in &g.conds {
                if !c.holds(&|atom| match atom {
                    AffAtom::Sym(s) => bind.get(s).expect("unbound symbolic in guard"),
                    AffAtom::Loop(l) => env.get(l).expect("unbound loop in guard"),
                }) {
                    return;
                }
            }
            for &child in &g.body {
                exec_node(prog, bind, mem, env, child, filter, red, pid);
            }
        }
        Node::Loop(l) => {
            let lo = eval_affine(bind, env, &l.lo);
            let hi = eval_affine(bind, env, &l.hi);
            for i in lo..=hi {
                env.set(l.id, i);
                for &child in &l.body {
                    exec_node(prog, bind, mem, env, child, filter, red, pid);
                }
            }
            env.clear(l.id);
        }
    }
}

/// Execute a subtree with plain sequential semantics (parallel loops run
/// like sequential ones, reductions apply directly).
pub fn exec_subtree_seq(
    prog: &Program,
    bind: &Bindings,
    mem: &Mem,
    env: &mut Env,
    node: NodeId,
    pid: usize,
) {
    let mut red = RedAcc::inactive();
    exec_node(prog, bind, mem, env, node, None, &mut red, pid);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::build::*;

    #[test]
    fn sequential_jacobi_matches_hand_computation() {
        let mut pb = ProgramBuilder::new("j");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(1), sym(n) - 2);
        pb.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(2).set(n, 6);
        let mem = Mem::new(&prog, &bind);
        mem.fill(a, |s| s[0] as f64);
        crate::run_sequential(&prog, &bind, &mem);
        for k in 1..5 {
            assert_eq!(mem.array(b).get(&[k]), k as f64);
        }
        assert_eq!(mem.array(b).get(&[0]), 0.0);
    }

    #[test]
    fn guard_restricts_execution() {
        let mut pb = ProgramBuilder::new("g");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.begin_guard(vec![eq0(idx(i) - 3)]);
        pb.assign(elem(a, [idx(i)]), ex(9.0));
        pb.end();
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(2).set(n, 6);
        let mem = Mem::new(&prog, &bind);
        crate::run_sequential(&prog, &bind, &mem);
        for k in 0..6 {
            let expect = if k == 3 { 9.0 } else { 0.0 };
            assert_eq!(mem.array(a).get(&[k as i64]), expect);
        }
    }

    #[test]
    fn reduction_direct_and_accumulated_agree() {
        let mut pb = ProgramBuilder::new("r");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_repl());
        let s = pb.scalar("s", 0.0);
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.reduce(svar(s), ir::RedOp::Add, arr(a, [idx(i)]));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(2).set(n, 10);
        let mem = Mem::new(&prog, &bind);
        mem.fill(a, |sub| sub[0] as f64);
        crate::run_sequential(&prog, &bind, &mem);
        assert_eq!(mem.get_scalar(s), 45.0);

        // Accumulated path.
        let mem2 = Mem::new(&prog, &bind);
        mem2.fill(a, |sub| sub[0] as f64);
        let mut env = Env::new(&prog);
        let mut red = RedAcc::active();
        exec_node(
            &prog,
            &bind,
            &mem2,
            &mut env,
            prog.body[0],
            None,
            &mut red,
            0,
        );
        assert_eq!(mem2.get_scalar(s), 0.0, "not flushed yet");
        red.flush(&mem2, 0);
        assert_eq!(mem2.get_scalar(s), 45.0);
    }

    #[test]
    fn filter_skips_instances() {
        let mut pb = ProgramBuilder::new("f");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(a, [idx(i)]), ex(1.0));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(2).set(n, 8);
        let mem = Mem::new(&prog, &bind);
        let mut env = Env::new(&prog);
        let mut red = RedAcc::inactive();
        let il = prog.expect_loop(prog.body[0]).id;
        let filter = |env: &Env| env.get(il).unwrap() % 2 == 0;
        exec_node(
            &prog,
            &bind,
            &mem,
            &mut env,
            prog.body[0],
            Some(&filter),
            &mut red,
            0,
        );
        for k in 0..8i64 {
            assert_eq!(mem.array(a).get(&[k]), if k % 2 == 0 { 1.0 } else { 0.0 });
        }
    }
}
