//! Table 3 — the headline result: **dynamic barriers executed at run
//! time**, fork-join baseline versus optimized, measured by executing
//! both schedules with 8 virtual processors. The paper reports an
//! average reduction of 29% with several programs improving by orders of
//! magnitude.

use interp::Mem;
use spmd_bench::{instance, pct_reduction, Table};
use suite::Scale;

fn main() {
    let nprocs = 8;
    let mut t = Table::new(&[
        "program",
        "barriers (base)",
        "barriers (opt)",
        "counters",
        "neighbor posts",
        "pair posts",
        "% barriers removed",
    ]);
    let mut reductions = Vec::new();
    let (mut sum_base, mut sum_opt) = (0u64, 0u64);
    for def in suite::all() {
        let (built, bind) = instance(&def, Scale::Small, nprocs);
        let base_plan = spmd_opt::fork_join(&built.prog, &bind);
        let opt_plan = spmd_opt::optimize(&built.prog, &bind);
        let base = spmd_bench::dyn_counts(&built.prog, &bind, &base_plan);
        let opt = spmd_bench::dyn_counts(&built.prog, &bind, &opt_plan);
        // Sanity: both schedules produce the sequential answer.
        let oracle = Mem::new(&built.prog, &bind);
        interp::run_sequential(&built.prog, &bind, &oracle);
        let mem = Mem::new(&built.prog, &bind);
        interp::run_virtual(
            &built.prog,
            &bind,
            &opt_plan,
            &mem,
            interp::ScheduleOrder::Reverse,
        );
        assert!(
            mem.max_abs_diff(&oracle) < 1e-6,
            "{}: optimized schedule diverged",
            def.name
        );
        let red = pct_reduction(base.barriers, opt.barriers);
        reductions.push(red);
        sum_base += base.barriers;
        sum_opt += opt.barriers;
        t.row(vec![
            def.name.to_string(),
            base.barriers.to_string(),
            opt.barriers.to_string(),
            opt.counter_increments.to_string(),
            opt.neighbor_posts.to_string(),
            opt.pair_posts.to_string(),
            format!("{red:.1}%"),
        ]);
    }
    println!("Table 3: dynamic barriers executed (P = {nprocs}, Small scale)\n");
    print!("{}", t.render());
    let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!("\nmean per-program barrier reduction: {mean:.1}%  (paper: 29% average)");
    println!(
        "aggregate barrier reduction: {:.1}%  ({sum_base} -> {sum_opt})",
        pct_reduction(sum_base, sum_opt)
    );
}
