//! End-to-end tests for the observability subsystem: golden snapshots
//! of the explain pass for every shipped kernel, Chrome-trace shape
//! checks, per-site telemetry attribution, and byte-level determinism
//! of the decision log.
//!
//! Regenerate the goldens with
//! `UPDATE_GOLDEN=1 cargo test --test observability`.

use barrier_elim::analysis::Bindings;
use barrier_elim::frontend;
use barrier_elim::interp::{
    run_parallel_observed, run_virtual_traced, Mem, ObserveOptions, ScheduleOrder,
};
use barrier_elim::ir::{Program, SymId};
use barrier_elim::obs::{self, Json, TraceBuilder};
use barrier_elim::runtime::Team;
use barrier_elim::spmd_opt::{fork_join, optimize_logged, placed_str, sync_sites};
use std::sync::Arc;

fn load(kernel: &str) -> Program {
    let src = std::fs::read_to_string(format!("kernels/{kernel}")).unwrap();
    frontend::parse(&src).unwrap_or_else(|e| panic!("{kernel}: {e}"))
}

fn bind_by_name(prog: &Program, nprocs: i64, sets: &[(&str, i64)]) -> Bindings {
    let mut b = Bindings::new(nprocs);
    for (name, v) in sets {
        let pos = prog
            .syms
            .iter()
            .position(|s| &s.name == name)
            .unwrap_or_else(|| panic!("sym {name} missing"));
        b.bind(SymId(pos as u32), *v);
    }
    b
}

const KERNELS: &[(&str, &[(&str, i64)])] = &[
    ("jacobi.be", &[("n", 48), ("tmax", 4)]),
    ("pipeline.be", &[("n", 16), ("tmax", 3)]),
    ("broadcast.be", &[("n", 12)]),
    ("shallow.be", &[("n", 12), ("tmax", 2)]),
    ("private_gather.be", &[("n", 10)]),
];

fn explain_doc(kernel: &str, sets: &[(&str, i64)], nprocs: i64) -> (Program, Json) {
    let prog = load(kernel);
    let bind = bind_by_name(&prog, nprocs, sets);
    let (plan, log) = optimize_logged(&prog, &bind);
    let base = fork_join(&prog, &bind);
    let doc = obs::explain_json(&prog, nprocs, &plan, &base, &log);
    (prog, doc)
}

// --- golden snapshots of the explain pass -------------------------------

fn check_explain_golden(kernel: &str, sets: &[(&str, i64)]) {
    let (_, doc) = explain_doc(kernel, sets, 4);
    let actual = doc.to_string_pretty();
    let path = format!(
        "tests/golden/explain_{}.json",
        kernel.trim_end_matches(".be")
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e} (run with UPDATE_GOLDEN=1 to create)"));
    assert_eq!(
        actual, expected,
        "{kernel}: explain output drifted from {path}; rerun with UPDATE_GOLDEN=1 if intended"
    );
}

#[test]
fn explain_golden_jacobi() {
    check_explain_golden("jacobi.be", &[("n", 48), ("tmax", 4)]);
}

#[test]
fn explain_golden_pipeline() {
    check_explain_golden("pipeline.be", &[("n", 16), ("tmax", 3)]);
}

#[test]
fn explain_golden_broadcast() {
    check_explain_golden("broadcast.be", &[("n", 12)]);
}

#[test]
fn explain_golden_shallow() {
    check_explain_golden("shallow.be", &[("n", 12), ("tmax", 2)]);
}

#[test]
fn explain_golden_private_gather() {
    check_explain_golden("private_gather.be", &[("n", 10)]);
}

// --- decision-log structure and determinism -----------------------------

/// Every sync the optimizer actually placed is explained by a decision
/// whose `placed` matches the plan, and every baseline barrier has at
/// least as many decisions accounting for it.
#[test]
fn decisions_account_for_every_placed_sync_and_baseline_barrier() {
    for (kernel, sets) in KERNELS {
        let prog = load(kernel);
        let bind = bind_by_name(&prog, 4, sets);
        let (plan, log) = optimize_logged(&prog, &bind);
        let sites = sync_sites(&prog, &plan);
        for d in &log {
            let site = &sites[d.site];
            assert_eq!(site.label, d.label, "{kernel}: site label mismatch");
            assert_eq!(
                placed_str(&site.op),
                d.placed_str(),
                "{kernel}: decision at s{} disagrees with the plan",
                d.site
            );
        }
        // A decision may explain an eliminated slot, but every slot that
        // kept some sync must be explained.
        let explained: Vec<usize> = log.iter().map(|d| d.site).collect();
        for s in &sites {
            if !matches!(s.op, barrier_elim::spmd_opt::SyncOp::None) {
                assert!(
                    explained.contains(&s.id),
                    "{kernel}: sync at s{} ({}) placed without a decision",
                    s.id,
                    s.label
                );
            }
        }
        let base_barriers = fork_join(&prog, &bind).static_stats().barriers;
        assert!(
            log.len() >= base_barriers,
            "{kernel}: {} decisions cannot cover {base_barriers} baseline barriers",
            log.len()
        );
    }
}

#[test]
fn explain_json_is_byte_identical_across_runs() {
    for (kernel, sets) in KERNELS {
        let (_, a) = explain_doc(kernel, sets, 4);
        let (_, b) = explain_doc(kernel, sets, 4);
        assert_eq!(
            a.to_string_pretty(),
            b.to_string_pretty(),
            "{kernel}: decision log is not deterministic"
        );
    }
}

// --- Chrome-trace shape -------------------------------------------------

/// The trace document must be parseable JSON with, per processor track:
/// one thread-name metadata record, non-decreasing timestamps, and
/// strictly balanced B/E span nesting.
#[test]
fn virtual_trace_is_valid_chrome_trace_json() {
    let prog = load("jacobi.be");
    let bind = bind_by_name(&prog, 4, &[("n", 48), ("tmax", 4)]);
    let (plan, _) = optimize_logged(&prog, &bind);
    let mem = Mem::new(&prog, &bind);
    let (_, spans) = run_virtual_traced(&prog, &bind, &plan, &mem, ScheduleOrder::Reverse);
    assert!(!spans.is_empty());
    let mut tb = TraceBuilder::new(&prog.name, 4);
    tb.extend(spans);
    let text = tb.to_json().to_string_compact();

    let doc = obs::parse(&text).expect("trace must round-trip through the JSON parser");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let mut meta_tracks = Vec::new();
    let mut last_ts = vec![0u64; 4];
    let mut depth = vec![0i64; 4];
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        let tid = ev.get("tid").and_then(Json::as_u64).expect("tid") as usize;
        assert!(tid < 4, "unknown track {tid}");
        match ph {
            "M" => meta_tracks.push(tid),
            "B" | "E" => {
                let ts = ev.get("ts").and_then(Json::as_u64).expect("ts");
                assert!(
                    ts >= last_ts[tid],
                    "timestamps must be non-decreasing per track"
                );
                last_ts[tid] = ts;
                depth[tid] += if ph == "B" { 1 } else { -1 };
                assert!(depth[tid] >= 0, "E without a matching B on track {tid}");
                assert!(
                    ev.get("name").and_then(Json::as_str).is_some(),
                    "span without a name"
                );
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    meta_tracks.sort_unstable();
    assert_eq!(meta_tracks, vec![0, 1, 2, 3], "one thread name per track");
    assert!(depth.iter().all(|&d| d == 0), "unbalanced spans");
}

// --- per-site telemetry -------------------------------------------------

/// Real-thread telemetry cells line up with the canonical site walk:
/// ids are dense, labels match, eliminated slots record nothing, and
/// sync work is attributed where the plan placed it.
#[test]
fn real_thread_telemetry_attributes_waits_to_canonical_sites() {
    let prog = Arc::new(load("jacobi.be"));
    let bind = Arc::new(bind_by_name(&prog, 4, &[("n", 48), ("tmax", 4)]));
    let (plan, _) = optimize_logged(&prog, &bind);
    let sites = sync_sites(&prog, &plan);
    let mem = Arc::new(Mem::new(&prog, &bind));
    let team = Team::new(4);
    let out = run_parallel_observed(
        &prog,
        &bind,
        &plan,
        &mem,
        &team,
        &ObserveOptions {
            telemetry: true,
            ..ObserveOptions::default()
        },
    );
    assert_eq!(out.sites.len(), sites.len());
    for (snap, site) in out.sites.iter().zip(&sites) {
        assert_eq!(snap.meta.id, site.id);
        assert_eq!(snap.meta.label, site.label);
        assert_eq!(snap.meta.op, placed_str(&site.op));
        if matches!(site.op, barrier_elim::spmd_opt::SyncOp::None) {
            assert_eq!(
                snap.total.ops, 0,
                "eliminated slot s{} recorded ops",
                site.id
            );
        } else {
            assert!(
                snap.total.ops > 0,
                "live sync s{} recorded nothing",
                site.id
            );
            // The histogram must account for every recorded wait.
            let hist_total: u64 = snap.total.hist.iter().sum();
            assert_eq!(hist_total, snap.total.waits);
            assert!(snap.total.max_wait_ns <= snap.total.wait_ns);
        }
    }
    // The metrics document built from these snapshots parses and keeps
    // the site ordering.
    let doc = obs::metrics_json(&prog.name, 4, &out.sites, &out.stats);
    let text = doc.to_string_pretty();
    let parsed = obs::parse(&text).expect("metrics JSON must parse");
    let ids: Vec<u64> = parsed
        .get("sites")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|s| s.get("site").and_then(Json::as_u64).unwrap())
        .collect();
    assert_eq!(ids, (0..sites.len() as u64).collect::<Vec<_>>());
}
