//! Criterion benches for the execution backends: virtual simulation and
//! real-thread execution of the two schedules (the per-figure speedup
//! binaries do the full sweeps; this tracks regressions).

use criterion::{criterion_group, criterion_main, Criterion};
use interp::{run_parallel, run_virtual, Mem, ScheduleOrder};
use runtime::Team;
use std::sync::Arc;
use suite::Scale;

fn bench_virtual(c: &mut Criterion) {
    let def = suite::by_name("jacobi2d").unwrap();
    let built = (def.build)(Scale::Test);
    let bind = built.bindings(4);
    let fj = spmd_opt::fork_join(&built.prog, &bind);
    let opt = spmd_opt::optimize(&built.prog, &bind);
    c.bench_function("virtual_jacobi_fork_join", |b| {
        b.iter(|| {
            let mem = Mem::new(&built.prog, &bind);
            run_virtual(&built.prog, &bind, &fj, &mem, ScheduleOrder::RoundRobin)
        })
    });
    c.bench_function("virtual_jacobi_optimized", |b| {
        b.iter(|| {
            let mem = Mem::new(&built.prog, &bind);
            run_virtual(&built.prog, &bind, &opt, &mem, ScheduleOrder::RoundRobin)
        })
    });
}

fn bench_real(c: &mut Criterion) {
    let p = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(4);
    let def = suite::by_name("jacobi2d").unwrap();
    let built = (def.build)(Scale::Small);
    let bind = Arc::new(built.bindings(p as i64));
    let prog = Arc::new(built.prog);
    let team = Team::new(p);
    let fj = spmd_opt::fork_join(&prog, &bind);
    let opt = spmd_opt::optimize(&prog, &bind);
    c.bench_function("real_jacobi_fork_join", |b| {
        b.iter(|| {
            let mem = Arc::new(Mem::new(&prog, &bind));
            run_parallel(&prog, &bind, &fj, &mem, &team)
        })
    });
    c.bench_function("real_jacobi_optimized", |b| {
        b.iter(|| {
            let mem = Arc::new(Mem::new(&prog, &bind));
            run_parallel(&prog, &bind, &opt, &mem, &team)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_virtual, bench_real
}
criterion_main!(benches);
