//! Fortran-flavoured pretty printer for programs (used by the example
//! figures and debugging output).

use crate::decl::ScalarId;
use crate::expr::{AffAtom, Affine, BinOp, Expr, UnOp};
use crate::node::{CmpOp, LhsRef, LoopKind, Node};
use crate::program::{NodeId, Program};
use std::fmt::Write;

/// Render an affine expression with program names.
pub fn affine_str(p: &Program, e: &Affine) -> String {
    let mut s = String::new();
    let mut first = true;
    for (a, c) in e.terms() {
        let name = match a {
            AffAtom::Loop(l) => p.loop_name(l).to_string(),
            AffAtom::Sym(sy) => p.sym(sy).name.clone(),
        };
        if first {
            match c {
                1 => write!(s, "{name}").unwrap(),
                -1 => write!(s, "-{name}").unwrap(),
                _ => write!(s, "{c}*{name}").unwrap(),
            }
            first = false;
        } else if c > 0 {
            if c == 1 {
                write!(s, "+{name}").unwrap();
            } else {
                write!(s, "+{c}*{name}").unwrap();
            }
        } else if c == -1 {
            write!(s, "-{name}").unwrap();
        } else {
            write!(s, "{c}*{name}").unwrap();
        }
    }
    let k = e.constant_term();
    if first {
        write!(s, "{k}").unwrap();
    } else if k > 0 {
        write!(s, "+{k}").unwrap();
    } else if k < 0 {
        write!(s, "{k}").unwrap();
    }
    s
}

fn scalar_name(p: &Program, s: ScalarId) -> &str {
    &p.scalar(s).name
}

/// Render a value expression.
pub fn expr_str(p: &Program, e: &Expr) -> String {
    match e {
        Expr::Lit(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{:.1}", v)
            } else {
                format!("{v}")
            }
        }
        Expr::Idx(a) => affine_str(p, a),
        Expr::Scalar(s) => scalar_name(p, *s).to_string(),
        Expr::Elem(a, subs) => {
            let subs: Vec<String> = subs.iter().map(|s| affine_str(p, s)).collect();
            format!("{}({})", p.array(*a).name, subs.join(","))
        }
        Expr::Bin(op, l, r) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Min => return format!("MIN({}, {})", expr_str(p, l), expr_str(p, r)),
                BinOp::Max => return format!("MAX({}, {})", expr_str(p, l), expr_str(p, r)),
            };
            format!("({} {} {})", expr_str(p, l), sym, expr_str(p, r))
        }
        Expr::Un(op, a) => {
            let f = match op {
                UnOp::Neg => return format!("(-{})", expr_str(p, a)),
                UnOp::Sqrt => "SQRT",
                UnOp::Abs => "ABS",
                UnOp::Exp => "EXP",
                UnOp::Sin => "SIN",
                UnOp::Cos => "COS",
            };
            format!("{}({})", f, expr_str(p, a))
        }
    }
}

fn node_str(p: &Program, id: NodeId, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match p.node(id) {
        Node::Loop(l) => {
            let kw = match l.kind {
                LoopKind::Seq => "DO",
                LoopKind::Par => "DOALL",
            };
            writeln!(
                out,
                "{pad}{kw} {} = {}, {}",
                l.name,
                affine_str(p, &l.lo),
                affine_str(p, &l.hi)
            )
            .unwrap();
            for &c in &l.body {
                node_str(p, c, indent + 1, out);
            }
            writeln!(out, "{pad}ENDDO").unwrap();
        }
        Node::Guard(g) => {
            let conds: Vec<String> = g
                .conds
                .iter()
                .map(|c| {
                    let op = match c.op {
                        CmpOp::Eq => "==",
                        CmpOp::Ge => ">=",
                        CmpOp::Le => "<=",
                    };
                    format!("{} {} 0", affine_str(p, &c.expr), op)
                })
                .collect();
            writeln!(out, "{pad}IF ({}) THEN", conds.join(" .AND. ")).unwrap();
            for &c in &g.body {
                node_str(p, c, indent + 1, out);
            }
            writeln!(out, "{pad}ENDIF").unwrap();
        }
        Node::Assign(a) => {
            let lhs = match &a.lhs {
                LhsRef::Elem(arr, subs) => {
                    let subs: Vec<String> = subs.iter().map(|s| affine_str(p, s)).collect();
                    format!("{}({})", p.array(*arr).name, subs.join(","))
                }
                LhsRef::Scalar(s) => scalar_name(p, *s).to_string(),
            };
            match a.reduction {
                None => writeln!(out, "{pad}{lhs} = {}", expr_str(p, &a.rhs)).unwrap(),
                Some(op) => {
                    let f = match op {
                        crate::node::RedOp::Add => format!("{lhs} + {}", expr_str(p, &a.rhs)),
                        crate::node::RedOp::Max => {
                            format!("MAX({lhs}, {})", expr_str(p, &a.rhs))
                        }
                        crate::node::RedOp::Min => {
                            format!("MIN({lhs}, {})", expr_str(p, &a.rhs))
                        }
                    };
                    writeln!(out, "{pad}{lhs} = {f}").unwrap();
                }
            }
        }
    }
}

/// Render the whole program in a Fortran-like syntax.
pub fn pretty(p: &Program) -> String {
    let mut out = String::new();
    writeln!(out, "PROGRAM {}", p.name).unwrap();
    for a in &p.arrays {
        let exts: Vec<String> = a.extents.iter().map(|e| affine_str(p, e)).collect();
        writeln!(
            out,
            "  REAL {}({})  ! dist {}",
            a.name,
            exts.join(","),
            a.dist
        )
        .unwrap();
    }
    for s in &p.scalars {
        writeln!(
            out,
            "  REAL {}{}",
            s.name,
            if s.privatizable { "  ! private" } else { "" }
        )
        .unwrap();
    }
    for &id in &p.body {
        node_str(p, id, 1, &mut out);
    }
    writeln!(out, "END").unwrap();
    out
}

/// Render a single subtree (used when printing SPMD regions).
pub fn pretty_node(p: &Program, id: NodeId, indent: usize) -> String {
    let mut out = String::new();
    node_str(p, id, indent, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use crate::build::*;

    #[test]
    fn prints_jacobi_like_source() {
        let mut p = ProgramBuilder::new("jacobi");
        let n = p.sym("n");
        let a = p.array("A", &[sym(n) + 2], dist_block());
        let b = p.array("B", &[sym(n) + 2], dist_block());
        let i = p.begin_par("i", con(1), sym(n));
        p.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        p.end();
        let prog = p.finish();
        let s = super::pretty(&prog);
        assert!(s.contains("DOALL i = 1, n"), "got:\n{s}");
        assert!(s.contains("B(i) = (0.5 * (A(i-1) + A(i+1)))"), "got:\n{s}");
        assert!(s.contains("REAL A(n+2)"), "got:\n{s}");
    }
}
