//! Coarse safety diagnostics for privatizable arrays.
//!
//! The front end (Tu & Padua's analysis, which the paper lists as the
//! complementary technique) is assumed to have *proved* that every read
//! of a privatizable array is preceded by a write of the same element in
//! the same region instance. This module cannot reproduce that proof,
//! but it catches the two mistakes that actually break the per-processor
//! copy model at run time:
//!
//! 1. a privatizable array read before any textual write;
//! 2. a privatizable array written by a *distributed* loop (each
//!    processor fills only its owned part of its own copy) and then read
//!    by a phase with a *different* partition — the reader would see the
//!    unfilled parts of its copy.
//!
//! Writes from replicated phases (the §2.3 pattern) fill every copy
//! completely and are always safe to read afterwards.

use crate::bindings::Bindings;
use crate::partition::{stmt_partition, LoopPartition, StmtPartition};
use ir::{AffAtom, ArrayId, LhsRef, Node, Program};
use std::collections::HashMap;

/// What last defined each privatizable array, in textual order.
#[derive(Clone, PartialEq, Debug)]
enum DefState {
    /// Not yet written.
    Undefined,
    /// Filled completely on every processor (replicated/master writer).
    Complete,
    /// Filled partially per processor by a distributed phase with this
    /// partition signature.
    Partial(String),
}

/// A canonical description of *which elements of the iteration space a
/// processor owns*, independent of loop identities: two phases with the
/// same signature assign index `x` to the same processor.
fn partition_signature(p: &StmtPartition) -> String {
    let sub_sig = |loop_id: &ir::LoopId, sub: &ir::Affine| -> String {
        let coef = sub.coeff(AffAtom::Loop(*loop_id));
        let mut rest = sub.clone();
        rest.set_coeff(AffAtom::Loop(*loop_id), 0);
        if rest.is_constant() {
            format!("{coef}x+{}", rest.constant_term())
        } else {
            // Owner varies with outer loops: keep the full shape.
            format!("{sub:?}")
        }
    };
    match p {
        StmtPartition::Master => "master".to_string(),
        StmtPartition::Replicated => "replicated".to_string(),
        StmtPartition::Distributed(l, lp) => match lp {
            LoopPartition::BlockOwner { block, sub, .. } => {
                format!("block({block},{})", sub_sig(l, sub))
            }
            LoopPartition::CyclicOwner { sub, .. } => {
                format!("cyclic({})", sub_sig(l, sub))
            }
            LoopPartition::BlockCyclicOwner { block, sub, .. } => {
                format!("blockcyclic({block},{})", sub_sig(l, sub))
            }
            LoopPartition::BlockIndex { lo, block, .. } => {
                format!("blockindex({lo},{block})")
            }
            LoopPartition::SymbolicBlockOwner { extent, sub, .. } => {
                format!("symblock({extent:?},{})", sub_sig(l, sub))
            }
            LoopPartition::Unknown => "unknown".to_string(),
        },
    }
}

/// Check the privatizable arrays of a program; returns human-readable
/// warnings (empty = no problems found by this coarse analysis).
pub fn check_privatizable(prog: &Program, bind: &Bindings) -> Vec<String> {
    let mut warnings = Vec::new();
    let mut state: HashMap<ArrayId, DefState> = prog
        .arrays
        .iter()
        .enumerate()
        .filter(|(_, a)| a.privatizable)
        .map(|(k, _)| (ArrayId(k as u32), DefState::Undefined))
        .collect();
    if state.is_empty() {
        return warnings;
    }

    for stmt in prog.all_statements() {
        let Node::Assign(a) = prog.node(stmt.node) else {
            continue;
        };
        let part = stmt_partition(prog, bind, &stmt);
        let sig = partition_signature(&part);

        // Reads first (the RHS executes before the write lands).
        for (arr, _) in a.rhs.array_reads() {
            let Some(st) = state.get(&arr) else { continue };
            let name = &prog.array(arr).name;
            match st {
                DefState::Undefined => {
                    warnings.push(format!("private array {name} read before any write"))
                }
                DefState::Complete => {}
                DefState::Partial(wsig) => {
                    if *wsig != sig {
                        warnings.push(format!(
                            "private array {name} written by a distributed phase \
                             ({wsig}) but read under a different partition ({sig}); \
                             readers would see unfilled parts of their copy"
                        ));
                    }
                }
            }
        }

        if let LhsRef::Elem(arr, _) = &a.lhs {
            if let Some(st) = state.get_mut(arr) {
                *st = match part {
                    StmtPartition::Replicated => DefState::Complete,
                    StmtPartition::Master => DefState::Partial("master".into()),
                    StmtPartition::Distributed(..) => DefState::Partial(sig.clone()),
                };
            }
        }
    }
    warnings.sort();
    warnings.dedup();
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::build::*;

    #[test]
    fn replicated_writer_then_distributed_reader_is_clean() {
        let mut pb = ProgramBuilder::new("ok");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let d = pb.private_array("D", &[sym(n)]);
        let j = pb.begin_par("j", con(0), sym(n) - 1);
        pb.assign(elem(d, [idx(j)]), ival(idx(j)).sin());
        pb.end();
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(a, [idx(i)]), arr(d, [idx(i)]));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 16);
        assert!(check_privatizable(&prog, &bind).is_empty());
    }

    #[test]
    fn read_before_write_warns() {
        let mut pb = ProgramBuilder::new("rbw");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let d = pb.private_array("D", &[sym(n)]);
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(a, [idx(i)]), arr(d, [idx(i)]));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 16);
        let w = check_privatizable(&prog, &bind);
        assert_eq!(w.len(), 1, "{w:?}");
        assert!(w[0].contains("before any write"));
    }

    #[test]
    fn distributed_writer_with_mismatched_reader_warns() {
        let mut pb = ProgramBuilder::new("mis");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_cyclic());
        let d = pb.private_array("D", &[sym(n)]);
        // Writer distributed by A's block partition (D gets partially
        // filled per processor)…
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(a, [idx(i)]), ival(idx(i)).sin());
        pb.assign(elem(d, [idx(i)]), arr(a, [idx(i)]));
        pb.end();
        // …reader distributed cyclically: different elements.
        let j = pb.begin_par("j", con(0), sym(n) - 1);
        pb.assign(elem(b, [idx(j)]), arr(d, [idx(j)]));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 16);
        let w = check_privatizable(&prog, &bind);
        assert_eq!(w.len(), 1, "{w:?}");
        assert!(w[0].contains("different partition"), "{w:?}");
    }

    #[test]
    fn matching_distributed_writer_and_reader_is_clean() {
        let mut pb = ProgramBuilder::new("match");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let d = pb.private_array("D", &[sym(n)]);
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(a, [idx(i)]), ival(idx(i)).sin());
        pb.assign(elem(d, [idx(i)]), arr(a, [idx(i)]));
        pb.end();
        let j = pb.begin_par("j", con(0), sym(n) - 1);
        pb.assign(elem(b, [idx(j)]), arr(d, [idx(j)]) + arr(a, [idx(j)]));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 16);
        assert!(check_privatizable(&prog, &bind).is_empty());
    }
}
