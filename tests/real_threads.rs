//! Real-thread execution of every kernel matches the sequential oracle,
//! and the runtime instrumentation agrees with the schedule-derived
//! dynamic counts.

use barrier_elim::interp::{run_parallel, run_sequential, Mem};
use barrier_elim::runtime::Team;
use barrier_elim::spmd_opt::{fork_join, optimize};
use barrier_elim::suite::{self, Scale};
use std::sync::Arc;

const TOL: f64 = 1e-9;

#[test]
fn every_kernel_runs_correctly_on_real_threads() {
    let nprocs = 4;
    let team = Team::new(nprocs);
    for def in suite::all() {
        let built = (def.build)(Scale::Test);
        let bind = Arc::new(built.bindings(nprocs as i64));
        let prog = Arc::new(built.prog);
        let oracle = Mem::new(&prog, &bind);
        run_sequential(&prog, &bind, &oracle);

        for (label, plan) in [
            ("fork-join", fork_join(&prog, &bind)),
            ("optimized", optimize(&prog, &bind)),
        ] {
            let mem = Arc::new(Mem::new(&prog, &bind));
            let out = run_parallel(&prog, &bind, &plan, &mem, &team);
            let diff = mem.max_abs_diff(&oracle);
            assert!(diff <= TOL, "{} ({label}): diverged by {diff:e}", def.name);
            assert_eq!(
                out.stats.barrier_episodes, out.counts.barriers,
                "{} ({label}): instrumented barrier count mismatch",
                def.name
            );
            assert_eq!(
                out.stats.counter_increments, out.counts.counter_increments,
                "{} ({label}): instrumented counter count mismatch",
                def.name
            );
            assert_eq!(
                out.stats.neighbor_posts, out.counts.neighbor_posts,
                "{} ({label}): instrumented neighbor count mismatch",
                def.name
            );
        }
    }
}

#[test]
fn optimized_never_executes_more_barriers_than_fork_join() {
    let nprocs = 4;
    let team = Team::new(nprocs);
    for def in suite::all() {
        // `transpose` gains a loop-bottom barrier from region merging; it
        // is the documented worst case.
        if def.name == "transpose" {
            continue;
        }
        let built = (def.build)(Scale::Test);
        let bind = Arc::new(built.bindings(nprocs as i64));
        let prog = Arc::new(built.prog);
        let run = |plan| {
            let mem = Arc::new(Mem::new(&prog, &bind));
            run_parallel(&prog, &bind, &plan, &mem, &team)
        };
        let base = run(fork_join(&prog, &bind));
        let opt = run(optimize(&prog, &bind));
        assert!(
            opt.counts.barriers <= base.counts.barriers,
            "{}: {} vs {}",
            def.name,
            opt.counts.barriers,
            base.counts.barriers
        );
    }
}

#[test]
fn virtual_and_real_dynamic_counts_agree() {
    let nprocs = 4;
    let team = Team::new(nprocs);
    for name in ["jacobi2d", "adi", "lu", "tomcatv_mesh"] {
        let def = suite::by_name(name).unwrap();
        let built = (def.build)(Scale::Test);
        let bind = Arc::new(built.bindings(nprocs as i64));
        let prog = Arc::new(built.prog);
        let plan = optimize(&prog, &bind);
        let mem = Arc::new(Mem::new(&prog, &bind));
        let real = run_parallel(&prog, &bind, &plan, &mem, &team);
        let vmem = Mem::new(&prog, &bind);
        let virt = barrier_elim::interp::run_virtual(
            &prog,
            &bind,
            &plan,
            &vmem,
            barrier_elim::interp::ScheduleOrder::RoundRobin,
        );
        assert_eq!(real.counts, virt.counts, "{name}");
    }
}

// ---------------------------------------------------------------------------
// Primitive stress hammers: many epochs, odd team sizes, team of one.
// Each hammer asserts an ordering property that fails if the primitive
// ever releases a waiter early.
// ---------------------------------------------------------------------------

mod hammer {
    use barrier_elim::runtime::{
        BarrierEpoch, CentralBarrier, Counters, NeighborFlags, TreeBarrier,
    };
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const EPOCHS: u64 = 800;

    /// Every thread bumps its own slot, crosses the barrier, and then
    /// observes everyone else's slot at the same epoch. A second barrier
    /// keeps fast threads from bumping again while slow ones still read.
    fn barrier_hammer(
        n: usize,
        wait: impl Fn(usize, &mut (BarrierEpoch, usize)) + Send + Sync + 'static,
    ) {
        let wait = Arc::new(wait);
        let slots: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let handles: Vec<_> = (0..n)
            .map(|pid| {
                let wait = Arc::clone(&wait);
                let slots = Arc::clone(&slots);
                std::thread::spawn(move || {
                    let mut state = (BarrierEpoch::default(), 0usize);
                    for k in 1..=EPOCHS {
                        slots[pid].store(k, Ordering::Release);
                        wait(pid, &mut state);
                        for (q, s) in slots.iter().enumerate() {
                            let v = s.load(Ordering::Acquire);
                            assert_eq!(v, k, "epoch {k}: pid {pid} saw slot {q} at {v}");
                        }
                        wait(pid, &mut state);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn central_barrier_epochs_odd_teams() {
        for n in [1usize, 3, 5, 7] {
            let b = Arc::new(CentralBarrier::new(n));
            barrier_hammer(n, move |_pid, state| b.wait(&mut state.0));
        }
    }

    #[test]
    fn tree_barrier_epochs_odd_teams() {
        // Non-power-of-two sizes exercise the wrap-around dissemination
        // partners; 1 and 8 cover the degenerate and full-tree cases.
        for n in [1usize, 3, 5, 6, 7, 8] {
            let b = Arc::new(TreeBarrier::new(n));
            barrier_hammer(n, move |pid, state| b.wait(pid, &mut state.1));
        }
    }

    /// Chained producer/consumer line: thread `p` may take step `k` only
    /// after thread `p - 1` has. Any early release breaks the per-step
    /// total order.
    #[test]
    fn counter_chain_orders_steps() {
        for n in [1usize, 3, 5] {
            let c = Arc::new(Counters::new(n));
            let steps: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
            let handles: Vec<_> = (0..n)
                .map(|pid| {
                    let c = Arc::clone(&c);
                    let steps = Arc::clone(&steps);
                    std::thread::spawn(move || {
                        for k in 1..=EPOCHS {
                            if pid > 0 {
                                c.wait_ge(pid - 1, k);
                                assert!(
                                    steps[pid - 1].load(Ordering::Acquire) >= k,
                                    "pid {pid} released before upstream step {k}"
                                );
                            }
                            steps[pid].store(k, Ordering::Release);
                            c.increment(pid);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            for p in 0..n {
                assert_eq!(c.value(p), EPOCHS);
            }
        }
    }

    /// Many producers, one consumer, many rounds: the consumer waits for
    /// all of round `k`'s increments, checks every producer's cell, and
    /// acks on a second counter before producers may start round `k + 1`.
    #[test]
    fn counter_fan_in_rounds() {
        let producers = 4usize;
        let rounds = 300u64;
        let c = Arc::new(Counters::new(2));
        let cells: Arc<Vec<AtomicU64>> =
            Arc::new((0..producers).map(|_| AtomicU64::new(0)).collect());
        let mut handles: Vec<_> = (0..producers)
            .map(|p| {
                let c = Arc::clone(&c);
                let cells = Arc::clone(&cells);
                std::thread::spawn(move || {
                    for k in 1..=rounds {
                        cells[p].store(k, Ordering::Release);
                        c.increment(0);
                        c.wait_ge(1, k);
                    }
                })
            })
            .collect();
        handles.push({
            let c = Arc::clone(&c);
            let cells = Arc::clone(&cells);
            std::thread::spawn(move || {
                for k in 1..=rounds {
                    c.wait_ge(0, k * producers as u64);
                    for (p, cell) in cells.iter().enumerate() {
                        assert_eq!(cell.load(Ordering::Acquire), k, "producer {p}, round {k}");
                    }
                    c.increment(1);
                }
            })
        });
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Stencil-style relaxation: each thread waits for both neighbors to
    /// reach its epoch before advancing, so no two adjacent threads are
    /// ever more than one epoch apart.
    #[test]
    fn neighbor_flags_bounded_skew() {
        for n in [1usize, 3, 5, 7] {
            let f = Arc::new(NeighborFlags::new(n));
            let epochs_done: Arc<Vec<AtomicU64>> =
                Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
            let handles: Vec<_> = (0..n)
                .map(|pid| {
                    let f = Arc::clone(&f);
                    let done = Arc::clone(&epochs_done);
                    std::thread::spawn(move || {
                        for k in 1..=EPOCHS {
                            f.post(pid);
                            f.wait(pid as isize - 1, k);
                            f.wait(pid as isize + 1, k);
                            if pid > 0 {
                                assert!(done[pid - 1].load(Ordering::Acquire) + 1 >= k);
                            }
                            if pid + 1 < n {
                                assert!(done[pid + 1].load(Ordering::Acquire) + 1 >= k);
                            }
                            done[pid].store(k, Ordering::Release);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            for p in 0..n {
                assert_eq!(f.epoch(p), EPOCHS);
            }
        }
    }

    /// Forward pipeline across odd team sizes: within every step the
    /// processors must log in strictly increasing pid order.
    #[test]
    fn neighbor_flags_pipeline_odd_teams() {
        for n in [1usize, 3, 5] {
            let f = Arc::new(NeighborFlags::new(n));
            let log = Arc::new(std::sync::Mutex::new(Vec::new()));
            let handles: Vec<_> = (0..n)
                .map(|pid| {
                    let f = Arc::clone(&f);
                    let log = Arc::clone(&log);
                    std::thread::spawn(move || {
                        for step in 1..=200u64 {
                            f.wait(pid as isize - 1, step);
                            log.lock().unwrap().push((step, pid));
                            f.post(pid);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let log = log.lock().unwrap();
            for step in 1..=200u64 {
                let order: Vec<usize> = log
                    .iter()
                    .filter(|(s, _)| *s == step)
                    .map(|(_, p)| *p)
                    .collect();
                assert_eq!(order, (0..n).collect::<Vec<_>>(), "n={n}, step {step}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Schedule exploration: drive the primitives through seeded random arrival
// orders. A turnstile forces each episode's waiters to *enter* their blocking
// call in a chosen permutation, so over many seeds every arrival interleaving
// (first-arriver releases, last-arriver releases, producer-last, …) is
// exercised. Any lost wakeup or stale-sense hang fails the run; the harness
// also checks generation monotonicity across `Counters::reset`.
// ---------------------------------------------------------------------------

mod schedule_exploration {
    use barrier_elim::runtime::{BarrierEpoch, CentralBarrier, Counters, TreeBarrier};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier as StdBarrier};

    fn xorshift64(mut x: u64) -> u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }

    /// Seeded Fisher–Yates permutation of `0..n`.
    fn permutation(seed: u64, n: usize) -> Vec<usize> {
        let mut s = xorshift64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1));
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            s = xorshift64(s);
            p.swap(i, (s as usize) % (i + 1));
        }
        p
    }

    /// Spin (yielding) until it is `rank`'s turn at the turnstile, then
    /// pass it on. Callers bump the turnstile *before* their blocking
    /// wait, so the turnstile orders arrival entry without deadlocking
    /// on the wait itself.
    fn turnstile(turn: &AtomicU64, target: u64) {
        while turn.load(Ordering::Acquire) != target {
            std::thread::yield_now();
        }
        turn.fetch_add(1, Ordering::AcqRel);
    }

    fn seed_count() -> u64 {
        std::env::var("BE_SCHED_SEEDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1500)
    }

    #[test]
    fn randomized_arrival_orders_never_lose_a_wakeup() {
        let n = 4usize;
        let seeds = seed_count();
        let central = Arc::new(CentralBarrier::new(n));
        let tree = Arc::new(TreeBarrier::with_radix(n, 4));
        let counters = Arc::new(Counters::new(n));
        let turn = Arc::new(AtomicU64::new(0));
        let slots: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let data: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        // Workers and the coordinator rendezvous here between seeds so
        // the coordinator can reset the primitives safely.
        let fence = Arc::new(StdBarrier::new(n + 1));

        let workers: Vec<_> = (0..n)
            .map(|pid| {
                let central = Arc::clone(&central);
                let tree = Arc::clone(&tree);
                let counters = Arc::clone(&counters);
                let turn = Arc::clone(&turn);
                let slots = Arc::clone(&slots);
                let data = Arc::clone(&data);
                let fence = Arc::clone(&fence);
                std::thread::spawn(move || {
                    for seed in 0..seeds {
                        fence.wait();
                        // Fresh local stamps each seed: the coordinator
                        // reset the barriers at the end of the last one.
                        let mut bl = BarrierEpoch::default();
                        let mut tl = 0usize;
                        let tag = seed + 1;

                        // Episode 0: central barrier, seeded entry order.
                        let perm = permutation(seed * 3, n);
                        let rank = perm.iter().position(|&q| q == pid).unwrap() as u64;
                        slots[pid].store(tag, Ordering::Release);
                        turnstile(&turn, seed * 3 * n as u64 + rank);
                        central.wait(&mut bl);
                        for (q, s) in slots.iter().enumerate() {
                            let v = s.load(Ordering::Acquire);
                            assert_eq!(
                                v, tag,
                                "seed {seed}: central released pid {pid} while slot {q} = {v}"
                            );
                        }
                        central.wait(&mut bl);

                        // Episode 1: 4-ary tree barrier, fresh order.
                        let perm = permutation(seed * 3 + 1, n);
                        let rank = perm.iter().position(|&q| q == pid).unwrap() as u64;
                        slots[pid].store(tag + seeds, Ordering::Release);
                        turnstile(&turn, (seed * 3 + 1) * n as u64 + rank);
                        tree.wait(pid, &mut tl);
                        for (q, s) in slots.iter().enumerate() {
                            let v = s.load(Ordering::Acquire);
                            assert_eq!(
                                v,
                                tag + seeds,
                                "seed {seed}: tree released pid {pid} while slot {q} = {v}"
                            );
                        }
                        tree.wait(pid, &mut tl);

                        // Episode 2: counter handoff; the producer's slot
                        // in the entry order varies per seed, so waiters
                        // both pre-block (producer last) and fast-path
                        // (producer first).
                        let perm = permutation(seed * 3 + 2, n);
                        let producer = (seed as usize) % n;
                        let rank = perm.iter().position(|&q| q == pid).unwrap() as u64;
                        turnstile(&turn, (seed * 3 + 2) * n as u64 + rank);
                        if pid == producer {
                            data[producer].store(tag, Ordering::Relaxed);
                            counters.increment(producer);
                        } else {
                            counters.wait_ge(producer, 1);
                            // Release/acquire on the counter publishes
                            // the producer's data.
                            let v = data[producer].load(Ordering::Relaxed);
                            assert_eq!(v, tag, "seed {seed}: pid {pid} woke before the post");
                        }

                        fence.wait();
                    }
                })
            })
            .collect();

        // Coordinator: reset between seeds and check generation
        // monotonicity on `Counters::reset`.
        for seed in 0..seeds {
            assert_eq!(
                counters.generation(),
                seed,
                "generation must move by exactly 1 per reset"
            );
            fence.wait(); // release the workers into seed `seed`
            fence.wait(); // wait for them to finish it
            central.reset();
            tree.reset();
            counters.reset();
        }
        assert_eq!(counters.generation(), seeds);
        for w in workers {
            w.join().unwrap();
        }
    }
}

#[test]
fn tree_barrier_executor_matches_central() {
    use barrier_elim::interp::{run_parallel_with, BarrierKind};
    let nprocs = 4;
    let team = Team::new(nprocs);
    for name in ["jacobi2d", "lu", "shallow"] {
        let def = suite::by_name(name).unwrap();
        let built = (def.build)(Scale::Test);
        let bind = Arc::new(built.bindings(nprocs as i64));
        let prog = Arc::new(built.prog);
        let plan = optimize(&prog, &bind);
        let oracle = Mem::new(&prog, &bind);
        run_sequential(&prog, &bind, &oracle);
        for kind in [BarrierKind::Central, BarrierKind::Tree] {
            let mem = Arc::new(Mem::new(&prog, &bind));
            let out = run_parallel_with(&prog, &bind, &plan, &mem, &team, kind);
            assert!(
                mem.max_abs_diff(&oracle) < 1e-9,
                "{name} with {kind:?} diverged"
            );
            assert_eq!(out.stats.barrier_episodes, out.counts.barriers);
        }
    }
}
