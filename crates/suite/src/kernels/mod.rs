//! The individual benchmark kernels.

pub mod adi;
pub mod cg_dense;
pub mod copy_chain;
pub mod erlebacher;
pub mod fdtd;
pub mod jacobi2d;
pub mod livermore18;
pub mod livermore7;
pub mod lu;
pub mod matmul;
pub mod mgrid;
pub mod multihop;
pub mod pivot_shift;
pub mod redblack;
pub mod seidel_pipe;
pub mod shallow;
pub mod shift_bcast;
pub mod stencil3d;
pub mod tomcatv_mesh;
pub mod transpose;
pub mod tred2;
pub mod trisolve_pipe;
pub mod wavepipe2d;
pub mod workvec;
