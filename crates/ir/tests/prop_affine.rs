//! Property tests for the affine-expression algebra: the subscripts the
//! whole analysis stack trusts.

use ir::{AffAtom, Affine, LoopId, SymId};
use proptest::prelude::*;

const NATOMS: usize = 4;

fn atom(k: usize) -> AffAtom {
    if k % 2 == 0 {
        AffAtom::Loop(LoopId((k / 2) as u32))
    } else {
        AffAtom::Sym(SymId((k / 2) as u32))
    }
}

#[derive(Debug, Clone)]
struct RandAffine {
    coeffs: Vec<i16>,
    constant: i16,
}

impl RandAffine {
    fn build(&self) -> Affine {
        let mut e = Affine::constant(self.constant as i64);
        for (k, &c) in self.coeffs.iter().enumerate() {
            e.add_term(atom(k), c as i64);
        }
        e
    }
}

fn rand_affine() -> impl Strategy<Value = RandAffine> {
    (
        proptest::collection::vec(-20i16..=20, NATOMS),
        -100i16..=100,
    )
        .prop_map(|(coeffs, constant)| RandAffine { coeffs, constant })
}

fn rand_assign() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-50i64..=50, NATOMS)
}

fn eval(e: &Affine, vals: &[i64]) -> i64 {
    e.eval(&|a| {
        let k = match a {
            AffAtom::Loop(l) => 2 * l.0 as usize,
            AffAtom::Sym(s) => 2 * s.0 as usize + 1,
        };
        vals[k]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Addition is evaluated pointwise.
    #[test]
    fn addition_is_pointwise(a in rand_affine(), b in rand_affine(), vals in rand_assign()) {
        let (ea, eb) = (a.build(), b.build());
        let sum = ea.clone() + eb.clone();
        prop_assert_eq!(eval(&sum, &vals), eval(&ea, &vals) + eval(&eb, &vals));
    }

    /// Subtraction and scaling are evaluated pointwise.
    #[test]
    fn sub_and_scale_are_pointwise(a in rand_affine(), b in rand_affine(), k in -9i64..=9, vals in rand_assign()) {
        let (ea, eb) = (a.build(), b.build());
        prop_assert_eq!(eval(&(ea.clone() - eb.clone()), &vals), eval(&ea, &vals) - eval(&eb, &vals));
        prop_assert_eq!(eval(&ea.scaled(k), &vals), k * eval(&ea, &vals));
    }

    /// `a - a` is structurally zero (zero coefficients never linger).
    #[test]
    fn self_subtraction_is_structurally_zero(a in rand_affine()) {
        let ea = a.build();
        let z = ea.clone() - ea;
        prop_assert!(z.is_constant());
        prop_assert_eq!(z.constant_term(), 0);
    }

    /// Substitution agrees with evaluation: e[l := r] at v equals e at
    /// the assignment where l takes r's value.
    #[test]
    fn substitution_agrees_with_evaluation(a in rand_affine(), r in rand_affine(), vals in rand_assign()) {
        let ea = a.build();
        let target = LoopId(0);
        // r must not mention the substituted loop.
        let mut er = r.build();
        er.set_coeff(AffAtom::Loop(target), 0);
        let substituted = ea.substituted(target, &er);
        let rv = eval(&er, &vals);
        let mut vals2 = vals.clone();
        vals2[0] = rv; // slot of Loop(0)
        prop_assert_eq!(eval(&substituted, &vals), eval(&ea, &vals2));
    }

    /// Structural equality is extensional on this atom set: equal
    /// structure ⇒ equal values, and differing structure differs
    /// somewhere on the sampled grid (coefficient extraction is exact).
    #[test]
    fn coefficients_roundtrip(a in rand_affine()) {
        let ea = a.build();
        for (k, &c) in a.coeffs.iter().enumerate() {
            prop_assert_eq!(ea.coeff(atom(k)), c as i64);
        }
        prop_assert_eq!(ea.constant_term(), a.constant as i64);
    }
}
