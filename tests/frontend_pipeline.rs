//! Full text-to-execution pipeline: parse the shipped `.be` kernels,
//! optimize, and verify under adversarial virtual interleavings.

use barrier_elim::analysis::Bindings;
use barrier_elim::frontend;
use barrier_elim::interp::{run_sequential, run_virtual, Mem, ScheduleOrder};
use barrier_elim::ir::SymId;
use barrier_elim::spmd_opt::{fork_join, optimize};

fn bind_by_name(prog: &barrier_elim::ir::Program, nprocs: i64, sets: &[(&str, i64)]) -> Bindings {
    let mut b = Bindings::new(nprocs);
    for (name, v) in sets {
        let pos = prog
            .syms
            .iter()
            .position(|s| &s.name == name)
            .unwrap_or_else(|| panic!("sym {name} missing"));
        b.bind(SymId(pos as u32), *v);
    }
    b
}

fn check(src_path: &str, sets: &[(&str, i64)]) {
    let src = std::fs::read_to_string(src_path).unwrap();
    let prog = frontend::parse(&src).unwrap_or_else(|e| panic!("{src_path}: {e}"));
    assert!(prog.validate().is_empty(), "{src_path}");
    for nprocs in [2i64, 4, 8] {
        let bind = bind_by_name(&prog, nprocs, sets);
        assert!(
            barrier_elim::analysis::check_parallel_loops(&prog, &bind).is_empty(),
            "{src_path}: invalid doall"
        );
        let oracle = Mem::new(&prog, &bind);
        run_sequential(&prog, &bind, &oracle);
        for plan in [fork_join(&prog, &bind), optimize(&prog, &bind)] {
            for order in [
                ScheduleOrder::RoundRobin,
                ScheduleOrder::Reverse,
                ScheduleOrder::Random(11),
            ] {
                let mem = Mem::new(&prog, &bind);
                run_virtual(&prog, &bind, &plan, &mem, order);
                assert_eq!(
                    mem.max_abs_diff(&oracle),
                    0.0,
                    "{src_path} P={nprocs} {order:?}"
                );
            }
        }
    }
}

#[test]
fn jacobi_kernel_file() {
    check("kernels/jacobi.be", &[("n", 48), ("tmax", 4)]);
}

#[test]
fn pipeline_kernel_file() {
    check("kernels/pipeline.be", &[("n", 16), ("tmax", 3)]);
}

#[test]
fn broadcast_kernel_file() {
    check("kernels/broadcast.be", &[("n", 12)]);
}

#[test]
fn shallow_kernel_file() {
    check("kernels/shallow.be", &[("n", 12), ("tmax", 2)]);
}

#[test]
fn private_gather_kernel_file() {
    check("kernels/private_gather.be", &[("n", 10)]);
}

#[test]
fn parsed_and_dsl_jacobi_agree() {
    // The .be jacobi and a DSL-built equivalent produce identical plans
    // (same static stats) and identical results.
    use barrier_elim::ir::build::*;
    let src = std::fs::read_to_string("kernels/jacobi.be").unwrap();
    let parsed = frontend::parse(&src).unwrap();

    let mut pb = ProgramBuilder::new("jacobi");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let a = pb.array("A", &[sym(n)], dist_block());
    let b = pb.array("B", &[sym(n)], dist_block());
    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i0)]), ival(idx(i0)).sin());
    pb.end();
    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);
    let i = pb.begin_par("i", con(1), sym(n) - 2);
    pb.assign(
        elem(b, [idx(i)]),
        ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
    );
    pb.end();
    let j = pb.begin_par("j", con(1), sym(n) - 2);
    pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
    pb.end();
    pb.end();
    let dsl = pb.finish();

    let bind_p = bind_by_name(&parsed, 4, &[("n", 32), ("tmax", 3)]);
    let bind_d = Bindings::new(4).set(n, 32).set(tmax, 3);
    let st_p = optimize(&parsed, &bind_p).static_stats();
    let st_d = optimize(&dsl, &bind_d).static_stats();
    assert_eq!(st_p, st_d);

    let m1 = Mem::new(&parsed, &bind_p);
    run_sequential(&parsed, &bind_p, &m1);
    let m2 = Mem::new(&dsl, &bind_d);
    run_sequential(&dsl, &bind_d, &m2);
    assert_eq!(m1.checksum(), m2.checksum());
}
