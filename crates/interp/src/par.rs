//! Real-thread execution of a schedule on the `runtime` worker team.
//!
//! With [`ObserveOptions::deadline`] set, execution is *fault-guarded*:
//! every blocking wait goes through the runtime [`Watchdog`]
//! (spin → yield → park, deadline-bounded), worker panics poison the
//! region and wake parked peers, and any failure is returned as a
//! structured [`obs::FailureReport`] attributing the fault to a
//! canonical sync site and processor instead of hanging the process.
//! A [`SyncChaos`] injector can additionally perturb every sync event
//! (delays, stalls, spurious wakeups, dropped posts) to prove the
//! guards catch what they claim to catch.

use crate::events::{exec_work, producer_pid, unroll, DynCounts, Event};
use crate::mem::Mem;
use analysis::Bindings;
use ir::Program;
use obs::{FailureCause, FailureReport, Span, SpanCat};
use runtime::events::{self, EventKind, ProfileData, ProfileOptions, Profiler, NO_SITE};
use runtime::fault::{SyncError, Watchdog, DISPATCH_SITE};
use runtime::telemetry::{SiteSnapshot, SiteTelemetry};
use runtime::{
    BarrierEpoch, CentralBarrier, Counters, NeighborFlags, PairwiseCells, SpinPolicy, SyncStats,
    Team, TreeBarrier,
};
use spmd_opt::{SpmdProgram, SyncOp};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which barrier implementation the executor uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BarrierKind {
    /// Sense-reversing central barrier (single hot cache line).
    #[default]
    Central,
    /// Dissemination tree barrier (log-depth, contention-free).
    Tree,
}

enum AnyBarrier {
    Central(CentralBarrier),
    Tree(TreeBarrier),
}

/// Per-thread barrier state.
#[derive(Default)]
struct BarrierLocal {
    central: BarrierEpoch,
    tree: usize,
}

impl AnyBarrier {
    fn wait(&self, pid: usize, local: &mut BarrierLocal) {
        match self {
            AnyBarrier::Central(b) => b.wait(&mut local.central),
            AnyBarrier::Tree(b) => b.wait(pid, &mut local.tree),
        }
    }

    fn wait_until(
        &self,
        pid: usize,
        local: &mut BarrierLocal,
        wd: &Watchdog,
        site: usize,
    ) -> Result<(), SyncError> {
        match self {
            AnyBarrier::Central(b) => b.wait_until(&mut local.central, wd, site, pid),
            AnyBarrier::Tree(b) => b.wait_until(pid, &mut local.tree, wd, site),
        }
    }

    fn reset(&self) {
        match self {
            AnyBarrier::Central(b) => b.reset(),
            AnyBarrier::Tree(b) => b.reset(),
        }
    }
}

/// The shared synchronization state of one execution (or one recovery
/// session): barrier, counter bank, neighbor flags, the dispatch
/// counter, and the aggregate [`SyncStats`] they report into.
///
/// [`run_parallel_observed`] builds a fresh fabric per call; the
/// recovery supervisor ([`crate::recover`]) instead builds one fabric,
/// runs an attempt with [`run_parallel_observed_on`], and re-arms it
/// with [`SyncFabric::reset`] between attempts — a failed attempt
/// leaves barriers mid-episode and counters part-way through their
/// visit sequence, so the reset restores every primitive to pristine
/// (bumping the counter generation stamp; see `Counters::reset`).
pub struct SyncFabric {
    barrier: Arc<AnyBarrier>,
    counters: Arc<Counters>,
    flags: Arc<NeighborFlags>,
    pairs: Arc<PairwiseCells>,
    dispatch: Arc<Counters>,
    stats: Arc<SyncStats>,
    /// Event-ring profiler shared by every attempt run on this fabric
    /// (`None` unless [`ObserveOptions::profile`] asked for one).
    profiler: Option<Arc<Profiler>>,
}

impl SyncFabric {
    /// A fabric for `nprocs` processors with a bank of `num_counters`
    /// sync counters, default spin policy and tree fan-in.
    pub fn new(kind: BarrierKind, nprocs: usize, num_counters: usize) -> Self {
        Self::tuned(kind, nprocs, num_counters, SpinPolicy::auto(), None)
    }

    /// A fabric with an explicit spin → yield → park escalation policy
    /// for every primitive and (for [`BarrierKind::Tree`]) an explicit
    /// fan-in; `tree_radix: None` keeps the topology-aware default.
    pub fn tuned(
        kind: BarrierKind,
        nprocs: usize,
        num_counters: usize,
        spin: SpinPolicy,
        tree_radix: Option<usize>,
    ) -> Self {
        let stats = Arc::new(SyncStats::new());
        let barrier = Arc::new(match kind {
            BarrierKind::Central => AnyBarrier::Central(
                CentralBarrier::new(nprocs)
                    .with_policy(spin)
                    .with_stats(Arc::clone(&stats)),
            ),
            BarrierKind::Tree => {
                let radix = tree_radix.unwrap_or_else(|| TreeBarrier::default_radix(nprocs));
                AnyBarrier::Tree(
                    TreeBarrier::with_radix(nprocs, radix)
                        .with_policy(spin)
                        .with_stats(Arc::clone(&stats)),
                )
            }
        });
        SyncFabric {
            barrier,
            counters: Arc::new(
                Counters::new(num_counters)
                    .with_policy(spin)
                    .with_stats(Arc::clone(&stats)),
            ),
            flags: Arc::new(
                NeighborFlags::new(nprocs)
                    .with_policy(spin)
                    .with_stats(Arc::clone(&stats)),
            ),
            pairs: Arc::new(
                PairwiseCells::new(nprocs)
                    .with_policy(spin)
                    .with_stats(Arc::clone(&stats)),
            ),
            dispatch: Arc::new(Counters::new(1).with_policy(spin)),
            stats,
            profiler: None,
        }
    }

    /// Attach an event-ring profiler: one track per worker plus a
    /// supervisor track ([`Profiler::supervisor_track`]).
    pub fn with_profiler(mut self, nprocs: usize, opts: ProfileOptions) -> Self {
        self.profiler = Some(Arc::new(Profiler::new(nprocs + 1, opts)));
        self
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&Arc<Profiler>> {
        self.profiler.as_ref()
    }

    /// A fabric sized for `plan`'s unrolled events.
    pub fn for_plan(
        kind: BarrierKind,
        prog: &Program,
        bind: &Bindings,
        plan: &SpmdProgram,
    ) -> Self {
        let events = unroll(prog, bind, plan);
        SyncFabric::new(kind, bind.nprocs as usize, max_counter_id(&events))
    }

    /// A fabric sized for `plan`'s unrolled events, honoring the full
    /// tuning surface of `opts` (barrier kind, spin policy, tree
    /// fan-in).
    pub fn for_plan_with(
        opts: &ObserveOptions,
        prog: &Program,
        bind: &Bindings,
        plan: &SpmdProgram,
    ) -> Self {
        let events = unroll(prog, bind, plan);
        let fabric = SyncFabric::tuned(
            opts.barrier,
            bind.nprocs as usize,
            max_counter_id(&events),
            opts.spin.unwrap_or_default(),
            opts.tree_radix,
        );
        match opts.profile {
            Some(po) => fabric.with_profiler(bind.nprocs as usize, po),
            None => fabric,
        }
    }

    /// Re-arm every primitive for a fresh attempt. Only legal once all
    /// workers of the previous attempt have been joined (the team run
    /// returned): barriers and flags are zeroed, the counter banks are
    /// reset (stamping a new generation), and the aggregate stats are
    /// cleared so the next attempt's numbers are not conflated with an
    /// abandoned attempt's.
    pub fn reset(&self) {
        self.barrier.reset();
        self.counters.reset();
        self.flags.reset();
        self.pairs.reset();
        self.dispatch.reset();
        self.stats.reset();
        // The profiler is *not* cleared: its rings span the whole
        // recovery session, with each attempt stamped by the next epoch.
        if let Some(p) = &self.profiler {
            p.bump_epoch();
        }
    }

    /// Snapshot the aggregate sync stats accumulated since the last
    /// reset.
    pub fn stats_snapshot(&self) -> runtime::stats::StatsSnapshot {
        self.stats.snapshot()
    }

    /// Generation stamp of the sync-counter bank (bumped by every
    /// [`SyncFabric::reset`]).
    pub fn counter_generation(&self) -> u64 {
        self.counters.generation()
    }
}

/// What a chaos injector may do to one sync event (see
/// [`SyncChaos::at_sync`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ChaosAction {
    /// Leave the event alone.
    #[default]
    None,
    /// Sleep before executing the event (perturbs arrival order).
    Delay(Duration),
    /// Sleep — a long, thread-stall-sized interval. Semantically the
    /// same as [`ChaosAction::Delay`]; kept distinct so injection
    /// policies and logs can tell jitter from stalls.
    Stall(Duration),
    /// Wake every guarded waiter parked on the watchdog without making
    /// any condition true (a correct waiter re-checks and re-parks).
    SpuriousWake,
    /// Drop the event's *post* half: a counter producer skips its
    /// increment, a neighbor sync skips its post, a barrier arrival is
    /// skipped entirely. Consumers of the dropped post can only be
    /// released by the watchdog — this is the oracle's "teeth".
    Drop,
}

/// A deterministic fault-injection policy consulted at every sync
/// event of a guarded execution. Implementations must be pure
/// functions of their inputs (plus construction-time seed) so the same
/// seed injects the same schedule of faults on every run.
pub trait SyncChaos: Send + Sync {
    /// Decide the action for dynamic visit `visit` (0-based, counted
    /// per processor) of sync site `site` on processor `pid`.
    fn at_sync(&self, site: usize, pid: usize, visit: u64) -> ChaosAction;

    /// Whether the recovery supervisor may *mask* this policy's drops
    /// when a site is quarantined or the run isolated. Site-flake
    /// injectors return the default `true` (quarantine absorbs the
    /// flake); permanent-loss policies (a killed core) return `false` —
    /// no amount of site masking revives dead hardware, and the
    /// supervisor must instead classify the pid as lost and degrade.
    fn maskable(&self) -> bool {
        true
    }
}

/// Result of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelOutcome {
    /// Instrumented dynamic synchronization (from the runtime
    /// primitives).
    pub stats: runtime::stats::StatsSnapshot,
    /// Schedule-derived dynamic counts (identical to what `run_virtual`
    /// reports for the same plan).
    pub counts: DynCounts,
    /// Wall-clock time of the traversal (thread startup excluded — the
    /// team is persistent, matching the paper's measurement protocol).
    pub elapsed: Duration,
    /// Per-sync-site wait telemetry (empty unless requested via
    /// [`ObserveOptions::telemetry`]).
    pub sites: Vec<SiteSnapshot>,
    /// Per-processor timeline spans (empty unless requested via
    /// [`ObserveOptions::trace`]).
    pub spans: Vec<Span>,
    /// The detected region failure, when a watchdog was armed
    /// ([`ObserveOptions::deadline`]) and the run timed out, was
    /// poisoned, or lost a worker to a panic. `None` means the region
    /// completed; results in `mem` are only meaningful then.
    pub failure: Option<FailureReport>,
    /// Each processor's terminal [`SyncError`], in pid order (`None`
    /// for processors that finished or panicked). Unlike the report's
    /// headline — which only names whichever fault won the race to be
    /// recorded first — this lists *every* faulting processor, so the
    /// recovery supervisor can demote all implicated sites at once.
    pub proc_errors: Vec<Option<SyncError>>,
    /// Per-processor post deficit: how many neighbor + pairwise posts
    /// the processor's traversal *claimed* (sync events it passed)
    /// minus how many actually landed in the shared flag/pair cells. A
    /// healthy worker's deficit is always 0 — the post precedes the
    /// claim — so a positive entry is direct physical evidence that
    /// this pid's posts are being dropped (a silently dead core), no
    /// matter where the resulting wedge surfaces in the site walk.
    pub post_deficits: Vec<u64>,
    /// The merged profile-event stream (present iff
    /// [`ObserveOptions::profile`] was set, or the caller's fabric
    /// carried a profiler). Under the recovery supervisor the stream
    /// spans *every* attempt so far, epoch-stamped per attempt.
    pub profile: Option<ProfileData>,
}

impl ParallelOutcome {
    /// True when the region completed without a detected fault.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// What the real-thread executor records beyond aggregate stats.
#[derive(Clone, Default)]
pub struct ObserveOptions {
    /// Barrier implementation.
    pub barrier: BarrierKind,
    /// Attribute every sync wait to its canonical site (per-processor
    /// histograms in [`ParallelOutcome::sites`]).
    pub telemetry: bool,
    /// Capture per-processor timeline spans (work, dispatch, sync
    /// waits) in [`ParallelOutcome::spans`].
    pub trace: bool,
    /// Arm a [`Watchdog`]: every blocking wait is bounded by this
    /// deadline, worker panics poison the region instead of hanging
    /// the master, and failures come back as
    /// [`ParallelOutcome::failure`]. Telemetry is implicitly enabled
    /// so the report can show who was blocked where.
    pub deadline: Option<Duration>,
    /// Fault injector consulted at every sync event. Dropping posts
    /// ([`ChaosAction::Drop`]) without an armed deadline hangs by
    /// design — always pair chaos with [`ObserveOptions::deadline`].
    pub chaos: Option<Arc<dyn SyncChaos>>,
    /// Spin → yield → park escalation policy for every primitive
    /// (`None` = topology-aware [`SpinPolicy::auto`]).
    pub spin: Option<SpinPolicy>,
    /// Fan-in for [`BarrierKind::Tree`] (`None` = topology-aware
    /// default; ignored for the central barrier).
    pub tree_radix: Option<usize>,
    /// Record per-thread event rings (sync arrivals/releases, region
    /// markers, escalation transitions, recovery marks) and return the
    /// merged stream in [`ParallelOutcome::profile`]. Recording is
    /// lock-free and never blocks; ring overflow drops the oldest
    /// events and is counted in [`runtime::events::ProfileData`].
    pub profile: Option<ProfileOptions>,
}

impl std::fmt::Debug for ObserveOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserveOptions")
            .field("barrier", &self.barrier)
            .field("telemetry", &self.telemetry)
            .field("trace", &self.trace)
            .field("deadline", &self.deadline)
            .field("chaos", &self.chaos.as_ref().map(|_| "<injector>"))
            .field("spin", &self.spin)
            .field("tree_radix", &self.tree_radix)
            .field("profile", &self.profile)
            .finish()
    }
}

fn max_counter_id(events: &[Event]) -> usize {
    let mut n = 0;
    for ev in events {
        if let Event::Sync {
            op: SyncOp::Counter { id, .. },
            ..
        } = ev
        {
            n = n.max(*id + 1);
        }
    }
    n
}

/// Execute the schedule on `team` with the default (central) barrier.
pub fn run_parallel(
    prog: &Arc<Program>,
    bind: &Arc<Bindings>,
    plan: &SpmdProgram,
    mem: &Arc<Mem>,
    team: &Team,
) -> ParallelOutcome {
    run_parallel_with(prog, bind, plan, mem, team, BarrierKind::Central)
}

/// Execute the schedule on `team` (whose size must match
/// `bind.nprocs`) with an explicit barrier implementation.
/// Arrays/scalars are read and written in `mem`.
pub fn run_parallel_with(
    prog: &Arc<Program>,
    bind: &Arc<Bindings>,
    plan: &SpmdProgram,
    mem: &Arc<Mem>,
    team: &Team,
    barrier_kind: BarrierKind,
) -> ParallelOutcome {
    run_parallel_observed(
        prog,
        bind,
        plan,
        mem,
        team,
        &ObserveOptions {
            barrier: barrier_kind,
            ..ObserveOptions::default()
        },
    )
}

/// Per-thread span buffer: spans are pushed locally and drained once
/// after the run (one mutex lock per processor per recording, but the
/// mutex is uncontended — each processor owns its own slot).
struct SpanBuffers(Vec<Mutex<Vec<Span>>>);

impl SpanBuffers {
    fn new(nprocs: usize) -> Self {
        SpanBuffers((0..nprocs).map(|_| Mutex::new(Vec::new())).collect())
    }

    fn push(&self, pid: usize, span: Span) {
        self.0[pid].lock().unwrap().push(span);
    }

    fn drain(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for buf in &self.0 {
            out.append(&mut buf.lock().unwrap());
        }
        out
    }
}

pub(crate) fn span_name(prog: &Program, ev: &Event) -> String {
    match ev {
        Event::Work { node, .. } | Event::SerialWork { node, .. } => {
            spmd_opt::node_label(prog, *node)
        }
        Event::Dispatch => "dispatch".to_string(),
        Event::Sync { op, site, .. } => match op {
            SyncOp::None => format!("nop @s{site}"),
            SyncOp::Barrier => format!("barrier wait @s{site}"),
            SyncOp::Neighbor { .. } => format!("neighbor wait @s{site}"),
            SyncOp::Counter { id, .. } => format!("counter#{id} wait @s{site}"),
            SyncOp::PairCounter { dists, .. } => {
                format!("pairwise{} wait @s{site}", dists.render())
            }
        },
    }
}

/// The panic message, when the payload is a string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".to_string())
    }
}

/// Record `e` as the region's primary failure unless a primary error
/// is already there (a poison observation never displaces the fault
/// that caused the poisoning).
fn record_failure(slot: &Mutex<Option<SyncError>>, e: &SyncError) {
    let mut s = slot.lock().unwrap();
    match &*s {
        None => *s = Some(e.clone()),
        Some(prev) if !prev.is_primary() && e.is_primary() => *s = Some(e.clone()),
        _ => {}
    }
}

/// As [`run_parallel_with`], optionally recording per-site telemetry
/// and per-processor timeline spans, arming a deadline watchdog, and
/// injecting chaos (see [`ObserveOptions`]).
pub fn run_parallel_observed(
    prog: &Arc<Program>,
    bind: &Arc<Bindings>,
    plan: &SpmdProgram,
    mem: &Arc<Mem>,
    team: &Team,
    opts: &ObserveOptions,
) -> ParallelOutcome {
    let fabric = SyncFabric::for_plan_with(opts, prog, bind, plan);
    run_parallel_observed_on(prog, bind, plan, mem, team, opts, &fabric)
}

/// As [`run_parallel_observed`], but executing on a caller-owned
/// [`SyncFabric`] instead of a fresh one. The recovery supervisor uses
/// this to reuse one fabric across retry attempts (resetting it between
/// them); the fabric must be sized for at least the plan's counter bank
/// and must be pristine (fresh or [`SyncFabric::reset`]) on entry.
/// `opts.barrier` is ignored — the fabric already chose its barrier.
pub fn run_parallel_observed_on(
    prog: &Arc<Program>,
    bind: &Arc<Bindings>,
    plan: &SpmdProgram,
    mem: &Arc<Mem>,
    team: &Team,
    opts: &ObserveOptions,
    fabric: &SyncFabric,
) -> ParallelOutcome {
    let nprocs = team.nprocs();
    assert_eq!(
        nprocs as i64, bind.nprocs,
        "team size must match the bindings' processor count"
    );
    let events = Arc::new(unroll(prog, bind, plan));
    assert!(
        max_counter_id(&events) <= fabric.counters.len(),
        "fabric counter bank too small for this plan"
    );
    let counts = DynCounts::from_events(&events, nprocs);
    let stats = Arc::clone(&fabric.stats);
    let watchdog = opts.deadline.map(|d| Arc::new(Watchdog::new(d)));
    let telemetry = (opts.telemetry || watchdog.is_some())
        .then(|| Arc::new(SiteTelemetry::new(obs::site_metas(prog, plan), nprocs)));
    let spans = opts.trace.then(|| Arc::new(SpanBuffers::new(nprocs)));
    // Per-processor chaos visit counters are indexed by site id.
    let n_sites = events
        .iter()
        .filter_map(|e| match e {
            Event::Sync { site, .. } => Some(*site + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let failure_slot = Arc::new(Mutex::new(None::<SyncError>));
    // Each worker publishes how many neighbor posts it has *passed*
    // (dropped or not); compared against the flag cells after the join,
    // this pins dropped posts on the pid that owed them.
    let claimed_posts: Arc<Vec<AtomicU64>> =
        Arc::new((0..nprocs).map(|_| AtomicU64::new(0)).collect());
    let proc_state = Arc::new(Mutex::new(vec!["ok".to_string(); nprocs]));
    let proc_errors = Arc::new(Mutex::new(vec![None::<SyncError>; nprocs]));
    let barrier = Arc::clone(&fabric.barrier);
    let counters = Arc::clone(&fabric.counters);
    let flags = Arc::clone(&fabric.flags);
    let pairs = Arc::clone(&fabric.pairs);
    let dispatch = Arc::clone(&fabric.dispatch);

    let prog2 = Arc::clone(prog);
    let bind2 = Arc::clone(bind);
    let mem2 = Arc::clone(mem);
    let events2 = Arc::clone(&events);
    let barrier2 = Arc::clone(&barrier);
    let counters2 = Arc::clone(&counters);
    let flags2 = Arc::clone(&flags);
    let pairs2 = Arc::clone(&pairs);
    let dispatch2 = Arc::clone(&dispatch);
    let telemetry2 = telemetry.clone();
    let spans2 = spans.clone();
    let watchdog2 = watchdog.clone();
    let chaos2 = opts.chaos.clone();
    let failure2 = Arc::clone(&failure_slot);
    let proc_state2 = Arc::clone(&proc_state);
    let proc_errors2 = Arc::clone(&proc_errors);
    let claimed2 = Arc::clone(&claimed_posts);
    let profiler2 = fabric.profiler.clone();

    // Align the profile clock with this run's t0 — but only if no
    // attempt has written to the rings yet (a recovery fabric keeps one
    // monotonic clock across attempts so epochs stay ordered).
    if let Some(p) = &fabric.profiler {
        p.rebase_if_unused();
    }
    let t0 = Instant::now();
    let team_result = team.try_run(move |pid| {
        let prog = &prog2;
        let bind = &bind2;
        let mem = &mem2;
        let wd = watchdog2.as_deref();
        // Ambient recorder: primitives deep in the runtime (spin
        // escalation) emit onto this worker's track without knowing
        // their site; the analyzer attributes them by enclosing
        // arrive/release interval.
        let _recorder = profiler2
            .as_ref()
            .map(|p| events::install(Arc::clone(p), pid));
        if let Some(p) = &profiler2 {
            p.record(pid, EventKind::RegionBegin, NO_SITE, 0);
        }
        let traverse = || -> Result<(), SyncError> {
            let mut blocal = BarrierLocal::default();
            let mut nposts = 0u64;
            let mut pposts = 0u64;
            let mut visits = vec![0u64; counters2.len()];
            let mut dispatch_visits = 0u64;
            let mut site_visits = vec![0u64; n_sites];
            let us_of = |t: Instant| t.duration_since(t0).as_micros() as u64;
            for ev in events2.iter() {
                let started = Instant::now();
                let cat = match ev {
                    Event::Work { .. } | Event::SerialWork { .. } => SpanCat::Work,
                    Event::Dispatch => SpanCat::Dispatch,
                    Event::Sync { .. } => SpanCat::Sync,
                };
                match ev {
                    Event::Work { .. } | Event::SerialWork { .. } => {
                        exec_work(prog, bind, mem, pid, bind.nprocs as usize, ev);
                    }
                    Event::Dispatch => {
                        dispatch_visits += 1;
                        if pid == 0 {
                            dispatch2.increment(0);
                        } else if let Some(wd) = wd {
                            dispatch2.wait_ge_until(0, dispatch_visits, wd, DISPATCH_SITE, pid)?;
                        } else {
                            dispatch2.wait_ge(0, dispatch_visits);
                        }
                    }
                    Event::Sync { op, site, env } => {
                        let mut dropped = false;
                        // Chaos and the profiler share one per-site
                        // visit counter, so a SyncArrive's `arg` is the
                        // same episode index chaos schedules against.
                        let live = !matches!(op, SyncOp::None);
                        let visit = if live && (chaos2.is_some() || profiler2.is_some()) {
                            let v = site_visits[*site];
                            site_visits[*site] += 1;
                            v
                        } else {
                            0
                        };
                        if let Some(ch) = &chaos2 {
                            if live {
                                match ch.at_sync(*site, pid, visit) {
                                    ChaosAction::None => {}
                                    ChaosAction::Delay(d) | ChaosAction::Stall(d) => {
                                        std::thread::sleep(d)
                                    }
                                    ChaosAction::SpuriousWake => {
                                        if let Some(wd) = wd {
                                            wd.spurious_wake();
                                        }
                                    }
                                    ChaosAction::Drop => dropped = true,
                                }
                            }
                        }
                        let t_arrive = match (&profiler2, live) {
                            (Some(p), true) => {
                                let t = p.now_ns();
                                p.record_at(pid, EventKind::SyncArrive, *site as u32, visit, t);
                                Some(t)
                            }
                            _ => None,
                        };
                        let r: Result<(), SyncError> = match op {
                            SyncOp::None => Ok(()),
                            SyncOp::Barrier => {
                                if dropped {
                                    Ok(())
                                } else if let Some(wd) = wd {
                                    barrier2.wait_until(pid, &mut blocal, wd, *site)
                                } else {
                                    barrier2.wait(pid, &mut blocal);
                                    Ok(())
                                }
                            }
                            SyncOp::Neighbor { fwd, bwd } => {
                                if !dropped {
                                    flags2.post(pid);
                                }
                                nposts += 1;
                                claimed2[pid].store(nposts + pposts, Ordering::Relaxed);
                                let mut r = Ok(());
                                if *fwd {
                                    r = match wd {
                                        Some(wd) => flags2.wait_until(
                                            pid as isize - 1,
                                            nposts,
                                            wd,
                                            *site,
                                            pid,
                                        ),
                                        None => {
                                            flags2.wait(pid as isize - 1, nposts);
                                            Ok(())
                                        }
                                    };
                                }
                                if r.is_ok() && *bwd {
                                    r = match wd {
                                        Some(wd) => flags2.wait_until(
                                            pid as isize + 1,
                                            nposts,
                                            wd,
                                            *site,
                                            pid,
                                        ),
                                        None => {
                                            flags2.wait(pid as isize + 1, nposts);
                                            Ok(())
                                        }
                                    };
                                }
                                r
                            }
                            SyncOp::Counter { id, producer } => {
                                visits[*id] += 1;
                                let prod = producer_pid(bind, prog, producer, env);
                                if pid as i64 == prod {
                                    if !dropped {
                                        counters2.increment(*id);
                                    }
                                    Ok(())
                                } else if let Some(wd) = wd {
                                    counters2.wait_ge_until(*id, visits[*id], wd, *site, pid)
                                } else {
                                    counters2.wait_ge(*id, visits[*id]);
                                    Ok(())
                                }
                            }
                            SyncOp::PairCounter { dists, producers } => {
                                // Every processor posts its own cell
                                // (the traversal is replicated, so
                                // per-pid post counts stay aligned),
                                // then waits only on the cells its
                                // distance/producer targets name.
                                if !dropped {
                                    pairs2.post(pid);
                                }
                                pposts += 1;
                                claimed2[pid].store(nposts + pposts, Ordering::Relaxed);
                                let mut r = Ok(());
                                for d in dists.iter() {
                                    if r.is_err() {
                                        break;
                                    }
                                    let target = pid as isize - d as isize;
                                    r = match wd {
                                        Some(wd) => {
                                            pairs2.wait_until(target, pposts, wd, *site, pid)
                                        }
                                        None => {
                                            pairs2.wait(target, pposts);
                                            Ok(())
                                        }
                                    };
                                }
                                for spec in producers {
                                    if r.is_err() {
                                        break;
                                    }
                                    let prod = producer_pid(bind, prog, spec, env);
                                    if prod == pid as i64 {
                                        continue;
                                    }
                                    r = match wd {
                                        Some(wd) => {
                                            pairs2.wait_until(prod as isize, pposts, wd, *site, pid)
                                        }
                                        None => {
                                            pairs2.wait(prod as isize, pposts);
                                            Ok(())
                                        }
                                    };
                                }
                                r
                            }
                        };
                        if let (Some(p), Some(ta)) = (&profiler2, t_arrive) {
                            // Record the release even on a failing wait
                            // so the faulty episode's block shows up
                            // with its full (deadline-length) duration.
                            let now = p.now_ns();
                            p.record_at(
                                pid,
                                EventKind::SyncRelease,
                                *site as u32,
                                now.saturating_sub(ta),
                                now,
                            );
                        }
                        if let Some(t) = &telemetry2 {
                            // Record even a failing wait: the report's
                            // telemetry then shows the deadline-length
                            // block at the faulty site.
                            if !matches!(op, SyncOp::None) {
                                let cell = t.cell(*site, pid);
                                cell.op();
                                cell.wait(started.elapsed().as_nanos() as u64);
                            }
                        }
                        r?;
                    }
                }
                if let Some(s) = &spans2 {
                    // Skip eliminated slots: they cost nothing and would
                    // clutter the timeline.
                    if !matches!(
                        ev,
                        Event::Sync {
                            op: SyncOp::None,
                            ..
                        }
                    ) {
                        s.push(
                            pid,
                            Span {
                                pid,
                                name: span_name(prog, ev),
                                cat,
                                start_us: us_of(started),
                                end_us: us_of(Instant::now()),
                            },
                        );
                    }
                }
            }
            Ok(())
        };
        let outcome = catch_unwind(AssertUnwindSafe(traverse));
        if let Some(p) = &profiler2 {
            let ok = matches!(outcome, Ok(Ok(()))) as u64;
            p.record(pid, EventKind::RegionEnd, NO_SITE, ok);
        }
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                // A sync fault: remember it, mark this processor, and
                // poison the region so peers parked in guarded waits
                // tear down instead of waiting out their own deadline.
                proc_state2.lock().unwrap()[pid] = e.to_string();
                proc_errors2.lock().unwrap()[pid] = Some(e.clone());
                record_failure(&failure2, &e);
                if e.is_primary() {
                    if let Some(wd) = wd {
                        wd.poison(e.to_string());
                    }
                }
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                proc_state2.lock().unwrap()[pid] = format!("panicked: {msg}");
                if let Some(wd) = wd {
                    wd.poison(format!("P{pid} panicked: {msg}"));
                }
                std::panic::resume_unwind(payload);
            }
        }
    });
    let elapsed = t0.elapsed();

    let sites = telemetry.as_ref().map(|t| t.snapshot()).unwrap_or_default();
    let failure = match (&watchdog, team_result) {
        // No watchdog: preserve `Team::run` semantics (a worker panic
        // propagates to the caller; it can no longer hang the join).
        (None, Err(e)) => e.resume(),
        (None, Ok(())) => None,
        (Some(wd), team_result) => {
            let first_sync_error = failure_slot.lock().unwrap().take();
            let cause = match (team_result, first_sync_error) {
                (Err(e), _) => Some(FailureCause::Panic {
                    pid: e.pid,
                    message: e.message(),
                }),
                (Ok(()), Some(e)) => Some(FailureCause::from_sync_error(&e)),
                (Ok(()), None) => {
                    // Belt and braces: a poisoned region with no
                    // recorded error still must not report success.
                    wd.is_poisoned().then(|| FailureCause::Panic {
                        pid: 0,
                        message: wd.poison_cause().unwrap_or_default(),
                    })
                }
            };
            cause.map(|cause| {
                let site_label = match cause.site() {
                    Some(DISPATCH_SITE) => "dispatch".to_string(),
                    Some(site) => telemetry
                        .as_ref()
                        .and_then(|t| t.sites().get(site))
                        .map(|m| m.label.clone())
                        .unwrap_or_else(|| format!("s{site}")),
                    None => String::new(),
                };
                FailureReport {
                    program: prog.name.clone(),
                    nprocs,
                    deadline_ms: wd.deadline().as_secs_f64() * 1e3,
                    cause,
                    site_label,
                    per_proc: proc_state.lock().unwrap().clone(),
                    chaos_seed: None,
                    sites: sites.clone(),
                }
            })
        }
    };

    let errors = proc_errors.lock().unwrap().clone();
    ParallelOutcome {
        stats: stats.snapshot(),
        counts,
        elapsed,
        // Telemetry was implicitly enabled for the watchdog; only
        // surface it when the caller asked for it or the run failed.
        sites: if opts.telemetry || failure.is_some() {
            sites
        } else {
            Vec::new()
        },
        spans: spans.map(|s| s.drain()).unwrap_or_default(),
        failure,
        proc_errors: errors,
        // Workers have joined: claims and flag cells are both final.
        post_deficits: (0..nprocs)
            .map(|p| {
                claimed_posts[p]
                    .load(Ordering::Relaxed)
                    .saturating_sub(flags.epoch(p) + pairs.count(p))
            })
            .collect(),
        // Workers have joined, so the single-writer rings are quiescent
        // and the merged snapshot is complete for every attempt so far.
        profile: fabric.profiler.as_ref().map(|p| p.snapshot()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::build::*;
    use spmd_opt::{fork_join, optimize};

    fn sweep(n_val: i64, steps: i64, nprocs: i64) -> (Arc<Program>, Arc<Bindings>) {
        let mut pb = ProgramBuilder::new("sweep");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let _t = pb.begin_seq("t", con(0), con(steps - 1));
        let i = pb.begin_par("i", con(1), sym(n) - 2);
        pb.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 2);
        pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
        pb.end();
        pb.end();
        let prog = Arc::new(pb.finish());
        let bind = Arc::new(Bindings::new(nprocs).set(n, n_val));
        (prog, bind)
    }

    #[test]
    fn parallel_matches_sequential_for_both_plans() {
        let (prog, bind) = sweep(64, 8, 4);
        let team = Team::new(4);
        let oracle = Mem::new(&prog, &bind);
        oracle.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
        crate::run_sequential(&prog, &bind, &oracle);

        for plan in [fork_join(&prog, &bind), optimize(&prog, &bind)] {
            let mem = Arc::new(Mem::new(&prog, &bind));
            mem.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
            let out = run_parallel(&prog, &bind, &plan, &mem, &team);
            assert_eq!(mem.max_abs_diff(&oracle), 0.0);
            assert_eq!(out.stats.barrier_episodes, out.counts.barriers);
        }
    }

    #[test]
    fn instrumentation_matches_schedule_counts() {
        let (prog, bind) = sweep(64, 10, 4);
        let team = Team::new(4);
        let plan = optimize(&prog, &bind);
        let mem = Arc::new(Mem::new(&prog, &bind));
        let out = run_parallel(&prog, &bind, &plan, &mem, &team);
        assert_eq!(out.stats.barrier_episodes, out.counts.barriers);
        assert_eq!(out.stats.neighbor_posts, out.counts.neighbor_posts);
        assert_eq!(out.stats.counter_increments, out.counts.counter_increments);
    }

    /// Drops every sync post made by one processor (a model of a
    /// crashed/stuck peer), leaving everyone else to the watchdog.
    struct StuckProcessor(usize);

    impl SyncChaos for StuckProcessor {
        fn at_sync(&self, _site: usize, pid: usize, _visit: u64) -> ChaosAction {
            if pid == self.0 {
                ChaosAction::Drop
            } else {
                ChaosAction::None
            }
        }
    }

    /// Panics on one processor's first sync event (exercises the
    /// panic → poison → report path without touching program code).
    struct PanicAt(usize);

    impl SyncChaos for PanicAt {
        fn at_sync(&self, _site: usize, pid: usize, _visit: u64) -> ChaosAction {
            if pid == self.0 {
                panic!("chaos-injected panic on P{pid}");
            }
            ChaosAction::None
        }
    }

    /// Benign jitter: a short delay on every third visit plus a
    /// spurious wakeup on every fifth — must never change results.
    struct Jitter;

    impl SyncChaos for Jitter {
        fn at_sync(&self, site: usize, pid: usize, visit: u64) -> ChaosAction {
            match (site + pid + visit as usize) % 5 {
                0 => ChaosAction::Delay(Duration::from_micros(200)),
                3 => ChaosAction::SpuriousWake,
                _ => ChaosAction::None,
            }
        }
    }

    #[test]
    fn stuck_processor_times_out_with_site_attribution() {
        let (prog, bind) = sweep(32, 3, 4);
        let team = Team::new(4);
        let plan = fork_join(&prog, &bind);
        let mem = Arc::new(Mem::new(&prog, &bind));
        let t0 = Instant::now();
        let out = run_parallel_observed(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &ObserveOptions {
                deadline: Some(Duration::from_millis(100)),
                chaos: Some(Arc::new(StuckProcessor(0))),
                ..ObserveOptions::default()
            },
        );
        // Guarded waits bound the hang: everything returns well within
        // a few deadlines, not forever.
        assert!(t0.elapsed() < Duration::from_secs(20));
        let failure = out
            .failure
            .expect("dropped barrier arrivals must be detected");
        match &failure.cause {
            FailureCause::Deadline {
                pid,
                kind,
                expected,
                observed,
                ..
            } => {
                // P0 never arrives, so a *waiter* times out seeing 3 of
                // 4 arrivals at the first barrier it reaches.
                assert_ne!(*pid, 0);
                assert_eq!(kind, "barrier");
                assert_eq!(*expected, 4);
                assert!(*observed < 4);
            }
            other => panic!("expected a deadline cause, got {other:?}"),
        }
        assert!(!failure.site_label.is_empty());
        // The stuck processor itself finished its (post-free) traversal
        // or died poisoned; everyone else reports an error.
        assert_eq!(failure.per_proc.len(), 4);
        assert!(failure.per_proc.iter().skip(1).all(|s| s != "ok"));
        // Telemetry rode along even though the caller didn't ask.
        assert!(!failure.sites.is_empty());
    }

    #[test]
    fn worker_panic_becomes_a_report_when_guarded() {
        let (prog, bind) = sweep(32, 2, 4);
        let team = Team::new(4);
        let plan = fork_join(&prog, &bind);
        let mem = Arc::new(Mem::new(&prog, &bind));
        let out = run_parallel_observed(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &ObserveOptions {
                deadline: Some(Duration::from_millis(200)),
                chaos: Some(Arc::new(PanicAt(2))),
                ..ObserveOptions::default()
            },
        );
        let failure = out.failure.expect("a panicked worker is a failure");
        match &failure.cause {
            FailureCause::Panic { pid, message } => {
                assert_eq!(*pid, 2);
                assert!(message.contains("chaos-injected panic"));
            }
            other => panic!("expected a panic cause, got {other:?}"),
        }
        assert!(failure.per_proc[2].contains("panicked"));
        // The team survives for later (clean) regions.
        let mem2 = Arc::new(Mem::new(&prog, &bind));
        let out2 = run_parallel(&prog, &bind, &plan, &mem2, &team);
        assert!(out2.ok());
    }

    #[test]
    fn benign_chaos_preserves_results_under_deadline() {
        let (prog, bind) = sweep(48, 4, 4);
        let team = Team::new(4);
        let oracle = Mem::new(&prog, &bind);
        oracle.fill(ir::ArrayId(0), |s| (s[0] % 7) as f64);
        crate::run_sequential(&prog, &bind, &oracle);

        for plan in [fork_join(&prog, &bind), optimize(&prog, &bind)] {
            let mem = Arc::new(Mem::new(&prog, &bind));
            mem.fill(ir::ArrayId(0), |s| (s[0] % 7) as f64);
            let out = run_parallel_observed(
                &prog,
                &bind,
                &plan,
                &mem,
                &team,
                &ObserveOptions {
                    deadline: Some(Duration::from_secs(5)),
                    chaos: Some(Arc::new(Jitter)),
                    ..ObserveOptions::default()
                },
            );
            assert!(out.ok(), "benign chaos failed: {:?}", out.failure);
            assert_eq!(mem.max_abs_diff(&oracle), 0.0);
        }
    }

    #[test]
    fn guarded_clean_run_reports_no_failure() {
        let (prog, bind) = sweep(48, 4, 4);
        let team = Team::new(4);
        let plan = optimize(&prog, &bind);
        let mem = Arc::new(Mem::new(&prog, &bind));
        let out = run_parallel_observed(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &ObserveOptions {
                deadline: Some(Duration::from_secs(5)),
                ..ObserveOptions::default()
            },
        );
        assert!(out.ok());
        // Without opts.telemetry, a clean guarded run keeps its output
        // shape identical to an unguarded one.
        assert!(out.sites.is_empty());
    }

    #[test]
    fn repeated_runs_are_deterministic_in_value() {
        let (prog, bind) = sweep(48, 6, 4);
        let team = Team::new(4);
        let plan = optimize(&prog, &bind);
        let mut checks = Vec::new();
        for _ in 0..3 {
            let mem = Arc::new(Mem::new(&prog, &bind));
            mem.fill(ir::ArrayId(0), |s| (s[0] * 3 % 11) as f64);
            run_parallel(&prog, &bind, &plan, &mem, &team);
            checks.push(mem.checksum());
        }
        assert!(checks.windows(2).all(|w| w[0] == w[1]));
    }
}
