//! Shared-memory SPMD runtime.
//!
//! This crate stands in for the multiprocessor runtime (ANL-macro style)
//! that the SUIF-generated code of Tseng (PPoPP'95) ran on. It provides
//! exactly the synchronization repertoire the paper's optimizer targets:
//!
//! * **barriers** — an epoch-stamped sense-reversing central barrier and
//!   a k-ary dissemination tree barrier with configurable fan-in
//!   ([`barrier`]);
//! * **counters** — the paper's flexible event synchronization: producers
//!   increment, consumers wait for a value ([`counter`]);
//! * **neighbor flags** — post/wait between adjacent processors for
//!   stencil and pipeline patterns ([`neighbor`]);
//! * a persistent **worker team** that executes SPMD regions without
//!   re-spawning threads ([`team`]);
//! * **instrumentation** counting every dynamic synchronization event and
//!   the time spent waiting ([`stats`]) — the source of the "barriers
//!   executed at run time" numbers in the reproduction of Table 3;
//! * a tunable **spin → `pause` → park escalation ladder** ([`spin`])
//!   shared by every blocking wait, keeping the common case a
//!   pure-atomic poll loop with no locks or clock reads;
//! * **fault detection** ([`fault`]) — deadline-guarded variants of every
//!   blocking wait with the watchdog sampled off the hot loop (poison
//!   via one epoch-stamped atomic, deadline checked only on park
//!   transitions or every [`fault::DEADLINE_SAMPLE`] polls), a
//!   team-level [`Watchdog`] with region poisoning, and panic-safe
//!   joins ([`Team::try_run`]), so a miscompiled schedule or a
//!   panicking worker is a diagnosed error instead of a hang;
//! * **recovery policy** ([`recovery`]) — the retry budget, deterministic
//!   exponential backoff, and per-site quarantine ledger the executor's
//!   self-healing loop consults when a detected fault is retried instead
//!   of reported terminally.

//! ```
//! use runtime::{Team, Counters};
//! use std::sync::Arc;
//!
//! // One producer hands a value chain to three consumers.
//! let team = Team::new(4);
//! let ctr = Arc::new(Counters::new(1));
//! let c = Arc::clone(&ctr);
//! team.run(move |pid| {
//!     for round in 1..=10 {
//!         if pid == 0 {
//!             c.increment(0);
//!         } else {
//!             c.wait_ge(0, round);
//!         }
//!     }
//! });
//! assert_eq!(ctr.value(0), 10);
//! ```

pub mod barrier;
pub mod counter;
pub mod events;
pub mod fault;
pub mod neighbor;
pub mod pairwise;
pub mod recovery;
pub mod spin;
pub mod stats;
pub mod team;
pub mod telemetry;

pub use barrier::{BarrierEpoch, CentralBarrier, TreeBarrier};
pub use counter::Counters;
pub use events::{EventKind, ProfileData, ProfileEvent, ProfileOptions, Profiler, NO_SITE};
pub use fault::{SyncError, WaitPoll, Watchdog, DEADLINE_SAMPLE, DISPATCH_SITE};
pub use neighbor::NeighborFlags;
pub use pairwise::PairwiseCells;
pub use recovery::{FaultDisposition, Quarantine, RetryPolicy};
pub use spin::{SpinPhase, SpinPolicy, SpinWait, WaitEffort};
pub use stats::{SyncKind, SyncStats};
pub use team::{RegionError, Team};
pub use telemetry::{
    CellSnapshot, SiteCell, SiteMeta, SiteSnapshot, SiteTelemetry, WaitHistogram, HIST_BUCKETS,
};
