//! Dynamic synchronization instrumentation.

use crate::spin::WaitEffort;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The kinds of synchronization the optimizer can emit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncKind {
    /// Full barrier across the team.
    Barrier,
    /// Counter increment / wait (producer-consumer).
    Counter,
    /// Neighbor post / wait flags.
    Neighbor,
    /// Pairwise (distance-vector) post / wait cells.
    Pairwise,
}

impl SyncKind {
    fn ix(self) -> usize {
        match self {
            SyncKind::Barrier => 0,
            SyncKind::Counter => 1,
            SyncKind::Neighbor => 2,
            SyncKind::Pairwise => 3,
        }
    }
}

/// Lock-free counters for one synchronization kind: primary operations
/// (barrier episodes / counter increments / neighbor posts), waits
/// (barrier arrivals / counter waits / neighbor waits), total and
/// maximum blocked time.
#[derive(Debug, Default)]
struct KindCell {
    ops: AtomicU64,
    waits: AtomicU64,
    wait_ns: AtomicU64,
    max_wait_ns: AtomicU64,
}

impl KindCell {
    fn wait(&self, waited: Duration) {
        let ns = waited.as_nanos() as u64;
        self.waits.fetch_add(1, Ordering::Relaxed);
        self.wait_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_wait_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn reset(&self) {
        for a in [&self.ops, &self.waits, &self.wait_ns, &self.max_wait_ns] {
            a.store(0, Ordering::Relaxed);
        }
    }
}

/// Shared, lock-free synchronization counters.
///
/// A *barrier episode* is one full barrier (all processors arriving
/// once); *arrivals* count per-processor participations. Counter and
/// neighbor events are counted per operation. Wait nanoseconds accumulate
/// the time processors spent blocked per kind; the maximum single wait is
/// kept alongside (totals alone hide convoy outliers).
///
/// All state lives in kind-indexed [`KindCell`]s, so [`Default`] is
/// derived and [`SyncStats::new`] simply delegates to it.
#[derive(Debug, Default)]
pub struct SyncStats {
    cells: [KindCell; 4],
    /// Aggregate wait-escalation counters (spin → yield → park phase
    /// rounds across every blocked wait of any kind): how often waits
    /// left the pure-atomic fast path.
    spin_rounds: AtomicU64,
    yield_rounds: AtomicU64,
    parks: AtomicU64,
}

impl SyncStats {
    /// Fresh zeroed stats (same as [`Default`]).
    pub fn new() -> Self {
        Self::default()
    }

    fn cell(&self, kind: SyncKind) -> &KindCell {
        &self.cells[kind.ix()]
    }

    /// Record one completed barrier episode.
    pub fn barrier_episode(&self) {
        self.cell(SyncKind::Barrier)
            .ops
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record one processor arriving at a barrier, with its wait time.
    pub fn barrier_arrival(&self, waited: Duration) {
        self.cell(SyncKind::Barrier).wait(waited);
    }

    /// Record a counter increment.
    pub fn counter_increment(&self) {
        self.cell(SyncKind::Counter)
            .ops
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record a counter wait, with the time spent blocked.
    pub fn counter_wait(&self, waited: Duration) {
        self.cell(SyncKind::Counter).wait(waited);
    }

    /// Record a neighbor post.
    pub fn neighbor_post(&self) {
        self.cell(SyncKind::Neighbor)
            .ops
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record a neighbor wait, with the time spent blocked.
    pub fn neighbor_wait(&self, waited: Duration) {
        self.cell(SyncKind::Neighbor).wait(waited);
    }

    /// Record a pairwise post.
    pub fn pairwise_post(&self) {
        self.cell(SyncKind::Pairwise)
            .ops
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record a pairwise wait, with the time spent blocked.
    pub fn pairwise_wait(&self, waited: Duration) {
        self.cell(SyncKind::Pairwise).wait(waited);
    }

    /// Record one wait's escalation counts (no-op for a wait that
    /// never blocked — the all-zero effort costs nothing to fold in).
    pub fn escalation(&self, e: WaitEffort) {
        if e.spins != 0 {
            self.spin_rounds.fetch_add(e.spins, Ordering::Relaxed);
        }
        if e.yields != 0 {
            self.yield_rounds.fetch_add(e.yields, Ordering::Relaxed);
        }
        if e.parks != 0 {
            self.parks.fetch_add(e.parks, Ordering::Relaxed);
        }
    }

    /// Total `spin_loop` rounds across all blocked waits.
    pub fn spin_rounds_count(&self) -> u64 {
        self.spin_rounds.load(Ordering::Relaxed)
    }

    /// Total `yield_now` rounds across all blocked waits.
    pub fn yield_rounds_count(&self) -> u64 {
        self.yield_rounds.load(Ordering::Relaxed)
    }

    /// Total bounded parks across all blocked waits.
    pub fn parks_count(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Completed barrier episodes.
    pub fn barrier_episodes_count(&self) -> u64 {
        self.cell(SyncKind::Barrier).ops.load(Ordering::Relaxed)
    }

    /// Per-processor barrier arrivals.
    pub fn barrier_arrivals_count(&self) -> u64 {
        self.cell(SyncKind::Barrier).waits.load(Ordering::Relaxed)
    }

    /// Counter increments.
    pub fn counter_increments_count(&self) -> u64 {
        self.cell(SyncKind::Counter).ops.load(Ordering::Relaxed)
    }

    /// Counter waits.
    pub fn counter_waits_count(&self) -> u64 {
        self.cell(SyncKind::Counter).waits.load(Ordering::Relaxed)
    }

    /// Neighbor posts.
    pub fn neighbor_posts_count(&self) -> u64 {
        self.cell(SyncKind::Neighbor).ops.load(Ordering::Relaxed)
    }

    /// Neighbor waits.
    pub fn neighbor_waits_count(&self) -> u64 {
        self.cell(SyncKind::Neighbor).waits.load(Ordering::Relaxed)
    }

    /// Pairwise posts.
    pub fn pairwise_posts_count(&self) -> u64 {
        self.cell(SyncKind::Pairwise).ops.load(Ordering::Relaxed)
    }

    /// Pairwise waits.
    pub fn pairwise_waits_count(&self) -> u64 {
        self.cell(SyncKind::Pairwise).waits.load(Ordering::Relaxed)
    }

    /// Total time spent blocked, per kind.
    pub fn wait_ns(&self, kind: SyncKind) -> u64 {
        self.cell(kind).wait_ns.load(Ordering::Relaxed)
    }

    /// Longest single blocked interval, per kind.
    pub fn max_wait_ns(&self, kind: SyncKind) -> u64 {
        self.cell(kind).max_wait_ns.load(Ordering::Relaxed)
    }

    /// Reset everything to zero.
    pub fn reset(&self) {
        for c in &self.cells {
            c.reset();
        }
        for a in [&self.spin_rounds, &self.yield_rounds, &self.parks] {
            a.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot as a plain struct (for reports).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            barrier_episodes: self.barrier_episodes_count(),
            barrier_arrivals: self.barrier_arrivals_count(),
            barrier_wait_ns: self.wait_ns(SyncKind::Barrier),
            barrier_max_wait_ns: self.max_wait_ns(SyncKind::Barrier),
            counter_increments: self.counter_increments_count(),
            counter_waits: self.counter_waits_count(),
            counter_wait_ns: self.wait_ns(SyncKind::Counter),
            counter_max_wait_ns: self.max_wait_ns(SyncKind::Counter),
            neighbor_posts: self.neighbor_posts_count(),
            neighbor_waits: self.neighbor_waits_count(),
            neighbor_wait_ns: self.wait_ns(SyncKind::Neighbor),
            neighbor_max_wait_ns: self.max_wait_ns(SyncKind::Neighbor),
            pairwise_posts: self.pairwise_posts_count(),
            pairwise_waits: self.pairwise_waits_count(),
            pairwise_wait_ns: self.wait_ns(SyncKind::Pairwise),
            pairwise_max_wait_ns: self.max_wait_ns(SyncKind::Pairwise),
            spin_rounds: self.spin_rounds_count(),
            yield_rounds: self.yield_rounds_count(),
            parks: self.parks_count(),
        }
    }
}

/// A point-in-time copy of [`SyncStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Completed barrier episodes.
    pub barrier_episodes: u64,
    /// Per-processor barrier arrivals.
    pub barrier_arrivals: u64,
    /// Nanoseconds blocked in barriers.
    pub barrier_wait_ns: u64,
    /// Longest single barrier wait in nanoseconds.
    pub barrier_max_wait_ns: u64,
    /// Counter increments.
    pub counter_increments: u64,
    /// Counter waits.
    pub counter_waits: u64,
    /// Nanoseconds blocked on counters.
    pub counter_wait_ns: u64,
    /// Longest single counter wait in nanoseconds.
    pub counter_max_wait_ns: u64,
    /// Neighbor posts.
    pub neighbor_posts: u64,
    /// Neighbor waits.
    pub neighbor_waits: u64,
    /// Nanoseconds blocked on neighbor flags.
    pub neighbor_wait_ns: u64,
    /// Longest single neighbor wait in nanoseconds.
    pub neighbor_max_wait_ns: u64,
    /// Pairwise posts.
    pub pairwise_posts: u64,
    /// Pairwise waits.
    pub pairwise_waits: u64,
    /// Nanoseconds blocked on pairwise cells.
    pub pairwise_wait_ns: u64,
    /// Longest single pairwise wait in nanoseconds.
    pub pairwise_max_wait_ns: u64,
    /// `spin_loop` rounds across all blocked waits (escalation phase 1).
    pub spin_rounds: u64,
    /// `yield_now` rounds across all blocked waits (escalation phase 2).
    pub yield_rounds: u64,
    /// Bounded parks across all blocked waits (escalation phase 3).
    pub parks: u64,
}

impl StatsSnapshot {
    /// Total synchronization *operations* of any kind (the paper's
    /// headline metric counts barriers; this is the broader total used in
    /// the wait-time figure).
    pub fn total_sync_ops(&self) -> u64 {
        self.barrier_episodes
            + self.counter_increments
            + self.counter_waits
            + self.neighbor_posts
            + self.neighbor_waits
            + self.pairwise_posts
            + self.pairwise_waits
    }

    /// Fold another snapshot into this one: counts and wait totals add,
    /// maxima take the max. The recovery supervisor uses this to
    /// aggregate per-attempt snapshots into run totals (the fabric's
    /// live stats are reset between attempts, so without merging the
    /// final report would only cover the last attempt).
    pub fn merge(&mut self, o: &StatsSnapshot) {
        self.barrier_episodes += o.barrier_episodes;
        self.barrier_arrivals += o.barrier_arrivals;
        self.barrier_wait_ns += o.barrier_wait_ns;
        self.barrier_max_wait_ns = self.barrier_max_wait_ns.max(o.barrier_max_wait_ns);
        self.counter_increments += o.counter_increments;
        self.counter_waits += o.counter_waits;
        self.counter_wait_ns += o.counter_wait_ns;
        self.counter_max_wait_ns = self.counter_max_wait_ns.max(o.counter_max_wait_ns);
        self.neighbor_posts += o.neighbor_posts;
        self.neighbor_waits += o.neighbor_waits;
        self.neighbor_wait_ns += o.neighbor_wait_ns;
        self.neighbor_max_wait_ns = self.neighbor_max_wait_ns.max(o.neighbor_max_wait_ns);
        self.pairwise_posts += o.pairwise_posts;
        self.pairwise_waits += o.pairwise_waits;
        self.pairwise_wait_ns += o.pairwise_wait_ns;
        self.pairwise_max_wait_ns = self.pairwise_max_wait_ns.max(o.pairwise_max_wait_ns);
        self.spin_rounds += o.spin_rounds;
        self.yield_rounds += o.yield_rounds;
        self.parks += o.parks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_reset() {
        let s = SyncStats::new();
        s.barrier_episode();
        s.barrier_arrival(Duration::from_nanos(50));
        s.barrier_arrival(Duration::from_nanos(70));
        s.counter_increment();
        s.counter_wait(Duration::from_nanos(10));
        s.neighbor_post();
        s.neighbor_wait(Duration::from_nanos(5));
        let snap = s.snapshot();
        assert_eq!(snap.barrier_episodes, 1);
        assert_eq!(snap.barrier_arrivals, 2);
        assert_eq!(snap.barrier_wait_ns, 120);
        assert_eq!(snap.counter_increments, 1);
        assert_eq!(snap.counter_waits, 1);
        assert_eq!(snap.neighbor_posts, 1);
        assert_eq!(snap.neighbor_waits, 1);
        assert_eq!(snap.total_sync_ops(), 5);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn escalation_counters_accumulate_and_reset() {
        let s = SyncStats::new();
        s.escalation(WaitEffort {
            spins: 10,
            yields: 2,
            parks: 0,
        });
        s.escalation(WaitEffort {
            spins: 5,
            yields: 0,
            parks: 3,
        });
        s.escalation(WaitEffort::default()); // fast-path wait: no-op
        let snap = s.snapshot();
        assert_eq!(snap.spin_rounds, 15);
        assert_eq!(snap.yield_rounds, 2);
        assert_eq!(snap.parks, 3);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn max_wait_tracks_the_largest_single_wait() {
        let s = SyncStats::new();
        s.barrier_arrival(Duration::from_nanos(50));
        s.barrier_arrival(Duration::from_nanos(700));
        s.barrier_arrival(Duration::from_nanos(70));
        assert_eq!(s.max_wait_ns(SyncKind::Barrier), 700);
        assert_eq!(s.wait_ns(SyncKind::Barrier), 820);
        assert_eq!(s.max_wait_ns(SyncKind::Counter), 0);
        let snap = s.snapshot();
        assert_eq!(snap.barrier_max_wait_ns, 700);
    }

    #[test]
    fn merge_adds_counts_and_keeps_maxima() {
        let mut a = StatsSnapshot {
            barrier_episodes: 3,
            barrier_wait_ns: 100,
            barrier_max_wait_ns: 60,
            spin_rounds: 7,
            parks: 1,
            ..StatsSnapshot::default()
        };
        let b = StatsSnapshot {
            barrier_episodes: 2,
            barrier_wait_ns: 50,
            barrier_max_wait_ns: 90,
            spin_rounds: 4,
            yield_rounds: 5,
            ..StatsSnapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.barrier_episodes, 5);
        assert_eq!(a.barrier_wait_ns, 150);
        assert_eq!(a.barrier_max_wait_ns, 90);
        assert_eq!(a.spin_rounds, 11);
        assert_eq!(a.yield_rounds, 5);
        assert_eq!(a.parks, 1);
    }
}
