//! Conjunctive systems of affine constraints and Fourier-Motzkin
//! elimination in the paper's scan order.

use crate::constraint::{Constraint, ConstraintKind};
use crate::linexpr::LinExpr;
use crate::rational::Overflow;
use crate::var::{VarId, VarTable};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Ceiling on the live constraint count during a guarded feasibility
/// scan; exceeding it yields [`Feasibility::Unknown`] instead of letting
/// FME's quadratic blow-up run away.
pub const MAX_FEAS_CONSTRAINTS: usize = 4096;

/// Default node budget for [`System::find_integer_solution`].
pub const DEFAULT_SEARCH_FUEL: u64 = 1 << 22;

/// Maximum recursion depth for the integer box search; deeper boxes
/// return [`IntSearch::Unknown`] instead of risking the stack.
pub const MAX_SEARCH_DEPTH: usize = 64;

/// Tri-state answer of the guarded feasibility test.
///
/// `Infeasible` is a proof (no integer solution exists); `Feasible`
/// means the FME relaxation admits a solution; `Unknown` means the scan
/// was abandoned (coefficient overflow or budget exhaustion) and the
/// caller must assume communication may exist — i.e. keep the barrier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Feasibility {
    /// The relaxation admits a solution (or the test was conclusive-feasible).
    Feasible,
    /// Proven to have no integer solution.
    Infeasible,
    /// The scan overflowed or exceeded its budget; treat as feasible.
    Unknown,
}

impl Feasibility {
    /// `true` unless the system is *proven* infeasible — the conservative
    /// reading used by communication analysis.
    pub fn may_hold(self) -> bool {
        self != Feasibility::Infeasible
    }
}

/// Outcome of the fueled integer box search.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IntSearch {
    /// A satisfying assignment.
    Found(Vec<(VarId, i128)>),
    /// The whole box was scanned; no assignment satisfies the system.
    Absent,
    /// Fuel or depth budget ran out before the box was covered.
    Unknown,
}

/// A conjunction of affine constraints.
///
/// The `contradictory` flag records that normalization discovered an
/// outright contradiction (e.g. `-1 >= 0` or `2i == 5`); such a system is
/// inconsistent regardless of its remaining constraints.
#[derive(Clone, Default)]
pub struct System {
    constraints: Vec<Constraint>,
    contradictory: bool,
}

impl System {
    /// The empty (always-true) system.
    pub fn new() -> Self {
        Self::default()
    }

    /// A system that is unsatisfiable by construction.
    pub fn contradiction() -> Self {
        System {
            constraints: Vec::new(),
            contradictory: true,
        }
    }

    fn mark_contradictory(&mut self) {
        self.contradictory = true;
        self.constraints.clear();
    }

    /// Add `expr >= 0`.
    pub fn add_ge(&mut self, expr: LinExpr) {
        self.push(Constraint::ge_zero(expr));
    }

    /// Add `expr == 0`.
    pub fn add_eq(&mut self, expr: LinExpr) {
        self.push(Constraint::eq_zero(expr));
    }

    /// Add `lo <= e` i.e. `e - lo >= 0`.
    pub fn add_le(&mut self, lo: LinExpr, e: LinExpr) {
        self.add_ge(e - lo);
    }

    /// Add a lower and an upper bound: `lo <= e <= hi`.
    pub fn add_range(&mut self, e: LinExpr, lo: LinExpr, hi: LinExpr) {
        self.add_ge(e.clone() - lo);
        self.add_ge(hi - e);
    }

    /// Add a constraint, normalizing it first.
    pub fn push(&mut self, mut c: Constraint) {
        if self.contradictory {
            return;
        }
        if !c.normalize() {
            self.mark_contradictory();
            return;
        }
        if !c.is_trivially_true() {
            self.constraints.push(c);
        }
    }

    /// Conjoin all constraints of `other` into `self`.
    pub fn conjoin(&mut self, other: &System) {
        if other.contradictory {
            self.mark_contradictory();
            return;
        }
        for c in &other.constraints {
            self.push(c.clone());
        }
    }

    /// Conjoin, consuming `other` (no per-constraint clones).
    pub fn conjoin_owned(&mut self, other: System) {
        if other.contradictory {
            self.mark_contradictory();
            return;
        }
        for c in other.constraints {
            self.push(c);
        }
    }

    /// The constraints currently in the system.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if the system has no constraints (and is not contradictory).
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty() && !self.contradictory
    }

    /// True if normalization already discovered a contradiction.
    pub fn is_contradictory(&self) -> bool {
        self.contradictory
    }

    /// All variables mentioned by the system.
    pub fn vars(&self) -> BTreeSet<VarId> {
        let mut s = BTreeSet::new();
        for c in &self.constraints {
            for (v, _) in c.expr.terms() {
                s.insert(v);
            }
        }
        s
    }

    /// Substitute `replacement` for `v` in every constraint.
    pub fn substitute(&mut self, v: VarId, replacement: &LinExpr) {
        self.try_substitute(v, replacement)
            .expect("substitution overflow outside the guarded analysis path")
    }

    /// Substitute, or `Err(Overflow)` with the system left contradictory-free
    /// but unspecified (callers on the guarded path discard it).
    pub fn try_substitute(&mut self, v: VarId, replacement: &LinExpr) -> Result<(), Overflow> {
        if self.contradictory {
            return Ok(());
        }
        let old = std::mem::take(&mut self.constraints);
        for c in old {
            let expr = c.expr.try_substituted(v, replacement)?;
            self.push(Constraint { expr, kind: c.kind });
        }
        Ok(())
    }

    /// Remove exact duplicates (after normalization they compare equal).
    pub fn dedup(&mut self) {
        let mut seen: BTreeSet<(u8, Vec<(VarId, i128)>, i128)> = BTreeSet::new();
        self.constraints.retain(|c| {
            let key = (
                match c.kind {
                    ConstraintKind::GeZero => 0u8,
                    ConstraintKind::EqZero => 1u8,
                },
                c.expr.terms().collect::<Vec<_>>(),
                c.expr.constant_term(),
            );
            seen.insert(key)
        });
    }

    /// Drop constraints dominated by another constraint over the same
    /// term vector: of several `T + c >= 0` only the smallest `c` binds,
    /// two equalities `T + c == 0` with different `c` contradict, and an
    /// inequality sharing terms with an equality is either implied or
    /// contradictory. Runs before each elimination step so FME never
    /// cross-multiplies constraints that a cheaper pass can discharge.
    pub fn remove_dominated(&mut self) {
        if self.contradictory || self.constraints.len() < 2 {
            return;
        }
        type Terms = Vec<(VarId, i128)>;
        let mut eq_c: BTreeMap<Terms, i128> = BTreeMap::new();
        let mut ge_c: BTreeMap<Terms, i128> = BTreeMap::new();
        for c in &self.constraints {
            let t: Terms = c.expr.terms().collect();
            let k = c.expr.constant_term();
            match c.kind {
                ConstraintKind::EqZero => {
                    if let Some(prev) = eq_c.insert(t, k) {
                        if prev != k {
                            self.mark_contradictory();
                            return;
                        }
                    }
                }
                ConstraintKind::GeZero => {
                    ge_c.entry(t).and_modify(|m| *m = (*m).min(k)).or_insert(k);
                }
            }
        }
        // T + ke == 0 forces T = -ke, so T + kg >= 0 iff kg >= ke.
        for (t, ke) in &eq_c {
            if let Some(kg) = ge_c.get(t) {
                if kg < ke {
                    self.mark_contradictory();
                    return;
                }
                ge_c.remove(&t.clone());
            }
        }
        let mut taken: BTreeSet<(u8, Terms)> = BTreeSet::new();
        self.constraints.retain(|c| {
            let t: Terms = c.expr.terms().collect();
            let k = c.expr.constant_term();
            let (tag, keep) = match c.kind {
                ConstraintKind::EqZero => (1u8, eq_c.get(&t) == Some(&k)),
                ConstraintKind::GeZero => (0u8, ge_c.get(&t) == Some(&k)),
            };
            keep && taken.insert((tag, t))
        });
    }

    /// Sort constraints into a canonical content order: by kind, then by
    /// the term vector keyed on `(scan_rank, var id)`, then constant.
    ///
    /// FME's pivot tie-breaks and output ordering depend on constraint
    /// order, so the guarded feasibility scan re-sorts before every
    /// elimination step. The key uses the scan *rank* before the raw id,
    /// which makes the order invariant under the rank-preserving variable
    /// renaming used by the query cache — two structurally isomorphic
    /// systems take identical elimination paths and reach identical
    /// verdicts.
    pub fn canonical_sort(&mut self, vt: &VarTable) {
        self.constraints.sort_by_cached_key(|c| {
            let kind = match c.kind {
                ConstraintKind::GeZero => 0u8,
                ConstraintKind::EqZero => 1u8,
            };
            let mut terms: Vec<(u8, u32, i128)> = c
                .expr
                .terms()
                .map(|(v, k)| (vt.kind(v).scan_rank(), v.0, k))
                .collect();
            terms.sort_unstable();
            (kind, terms, c.expr.constant_term())
        });
    }

    /// Use equalities with a ±1 coefficient to substitute variables away.
    /// This is exact over the integers and keeps FME cheap.
    pub fn propagate_unit_equalities(&mut self, vt: &VarTable) {
        self.try_propagate_unit_equalities(vt)
            .expect("unit-equality propagation overflow outside the guarded analysis path")
    }

    /// Fallible unit-equality propagation for the guarded path.
    pub fn try_propagate_unit_equalities(&mut self, vt: &VarTable) -> Result<(), Overflow> {
        loop {
            if self.contradictory {
                return Ok(());
            }
            let mut target: Option<(usize, VarId, LinExpr)> = None;
            for (idx, c) in self.constraints.iter().enumerate() {
                if c.kind != ConstraintKind::EqZero {
                    continue;
                }
                // Substitute away the innermost (highest scan rank) unit
                // variable: a rule stated in rank + relative-id terms so
                // canonically-renamed systems make the same choice.
                let mut best: Option<(u8, u32, VarId, i128)> = None;
                for (v, coef) in c.expr.terms() {
                    if coef == 1 || coef == -1 {
                        let key = (vt.kind(v).scan_rank(), v.0);
                        if best.map_or(true, |(r, id, ..)| key > (r, id)) {
                            best = Some((key.0, key.1, v, coef));
                        }
                    }
                }
                if let Some((_, _, v, coef)) = best {
                    // coef*v + rest == 0  =>  v = -rest/coef = -coef*rest
                    let mut rest = c.expr.clone();
                    rest.set_coeff(v, 0);
                    let replacement = rest.try_scaled(-coef)?;
                    target = Some((idx, v, replacement));
                    break;
                }
            }
            match target {
                None => return Ok(()),
                Some((idx, v, replacement)) => {
                    self.constraints.remove(idx);
                    self.try_substitute(v, &replacement)?;
                }
            }
        }
    }

    /// Fourier-Motzkin elimination of a single variable.
    ///
    /// If an equality mentions `v` it is used as the pivot (exact integer
    /// combination); otherwise all lower/upper inequality pairs are
    /// cross-combined. With gcd+floor normalization the result
    /// over-approximates the integer projection, which is the safe
    /// direction for communication tests (never misses communication).
    ///
    /// Panics on coefficient overflow — the guarded analysis path uses
    /// [`System::try_eliminate_owned`] instead, which reports it.
    pub fn eliminate(&self, v: VarId) -> System {
        self.clone()
            .try_eliminate_owned(v)
            .expect("FME coefficient overflow outside the guarded analysis path")
    }

    /// Fourier-Motzkin elimination that consumes the system (unaffected
    /// constraints are moved, not cloned) and reports coefficient
    /// overflow instead of panicking.
    pub fn try_eliminate_owned(self, v: VarId) -> Result<System, Overflow> {
        if self.contradictory {
            return Ok(System::contradiction());
        }
        // Prefer an equality pivot with the smallest |coefficient|; ties
        // go to the earliest constraint, which is canonical after
        // `canonical_sort`.
        let mut pivot: Option<(usize, i128)> = None;
        for (idx, c) in self.constraints.iter().enumerate() {
            if c.kind == ConstraintKind::EqZero {
                let coef = c.expr.coeff(v);
                if coef != 0 && pivot.map_or(true, |(_, pc)| coef.abs() < pc.abs()) {
                    pivot = Some((idx, coef));
                }
            }
        }
        let mut out = System::new();
        if let Some((pidx, b)) = pivot {
            let eq = self.constraints[pidx].expr.clone();
            for (idx, c) in self.constraints.into_iter().enumerate() {
                if idx == pidx {
                    continue;
                }
                let a = c.expr.coeff(v);
                if a == 0 {
                    out.push(c);
                    continue;
                }
                // t*|b| + eq*(-a*sign(b)) cancels v exactly and preserves
                // the comparison direction since |b| > 0.
                let expr = LinExpr::try_combine(&c.expr, b.abs(), &eq, -a * b.signum())?;
                debug_assert_eq!(expr.coeff(v), 0);
                out.push(Constraint { expr, kind: c.kind });
            }
            out.dedup();
            return Ok(out);
        }
        // No equality pivot: classic lower/upper pairing.
        let mut lowers: Vec<Constraint> = Vec::new();
        let mut uppers: Vec<Constraint> = Vec::new();
        for c in self.constraints {
            let coef = c.expr.coeff(v);
            if coef == 0 {
                out.push(c);
            } else if coef > 0 {
                lowers.push(c);
            } else {
                uppers.push(c);
            }
        }
        for l in &lowers {
            let a = l.expr.coeff(v);
            for u in &uppers {
                let b = -u.expr.coeff(v);
                debug_assert!(a > 0 && b > 0);
                // a*v + e >= 0 and -b*v + f >= 0  =>  b*e + a*f >= 0
                let expr = LinExpr::try_combine(&l.expr, b, &u.expr, a)?;
                debug_assert_eq!(expr.coeff(v), 0);
                out.push(Constraint::ge_zero(expr));
            }
        }
        out.dedup();
        Ok(out)
    }

    /// Number of lower/upper cross-pairs eliminating `v` would create
    /// (0 when an exact equality pivot is available).
    fn elimination_pairs(&self, v: VarId) -> usize {
        if self
            .constraints
            .iter()
            .any(|c| c.kind == ConstraintKind::EqZero && c.expr.coeff(v) != 0)
        {
            return 0;
        }
        let mut lo = 0usize;
        let mut up = 0usize;
        for c in &self.constraints {
            let coef = c.expr.coeff(v);
            if coef > 0 {
                lo += 1;
            } else if coef < 0 {
                up += 1;
            }
        }
        lo.saturating_mul(up)
    }

    /// Project the system onto `keep`, eliminating every other variable
    /// (inner classes first, per the scan order of `vt`).
    pub fn project_onto(&self, vt: &VarTable, keep: &[VarId]) -> System {
        let keep: BTreeSet<VarId> = keep.iter().copied().collect();
        let mut sys = self.clone();
        for v in vt.elimination_order() {
            if keep.contains(&v) {
                continue;
            }
            if sys.vars().contains(&v) {
                sys = sys
                    .try_eliminate_owned(v)
                    .expect("FME coefficient overflow outside the guarded analysis path");
                if sys.contradictory {
                    return System::contradiction();
                }
            }
        }
        sys
    }

    /// Guarded feasibility test: eliminate every variable in the paper's
    /// scan order (array indices first, symbolics last) under checked
    /// arithmetic and explicit budgets.
    ///
    /// [`Feasibility::Infeasible`] is definitive; [`Feasibility::Unknown`]
    /// (overflow / budget) must be treated as feasible by callers — for
    /// communication analysis that means *keep the barrier*.
    pub fn feasibility(&self, vt: &VarTable) -> Feasibility {
        self.feasibility_with_peak(vt).0
    }

    /// [`System::feasibility`] plus the peak live constraint count the
    /// scan reached (for cache/bench telemetry).
    pub fn feasibility_with_peak(&self, vt: &VarTable) -> (Feasibility, usize) {
        if self.contradictory {
            return (Feasibility::Infeasible, 0);
        }
        let mut sys = self.clone();
        let peak = sys.len();
        if sys.reduce_for_scan(vt).is_err() {
            return (Feasibility::Unknown, peak);
        }
        let (f, loop_peak) = sys.scan_reduced(vt);
        (f, peak.max(loop_peak))
    }

    /// The guarded scan's preamble: exact unit-equality propagation
    /// followed by normalization (canonical sort, dedup, dominated-
    /// constraint removal). The result is the deterministic reduced
    /// form the elimination loop starts from; the overall verdict is a
    /// pure function of it.
    pub fn reduce_for_scan(&mut self, vt: &VarTable) -> Result<(), Overflow> {
        self.try_propagate_unit_equalities(vt)?;
        self.canonical_sort(vt);
        self.dedup();
        self.remove_dominated();
        Ok(())
    }

    /// The guarded scan's elimination loop, starting from a system
    /// already normalized by [`System::reduce_for_scan`].
    pub fn scan_reduced(mut self, vt: &VarTable) -> (Feasibility, usize) {
        let mut peak = self.len();
        for v in vt.elimination_order() {
            if self.contradictory {
                return (Feasibility::Infeasible, peak);
            }
            if self.constraints.is_empty() {
                return (Feasibility::Feasible, peak);
            }
            if !self.vars().contains(&v) {
                continue;
            }
            if self.elimination_pairs(v) > MAX_FEAS_CONSTRAINTS {
                return (Feasibility::Unknown, peak);
            }
            self = match self.try_eliminate_owned(v) {
                Ok(s) => s,
                Err(Overflow) => return (Feasibility::Unknown, peak),
            };
            peak = peak.max(self.len());
            self.canonical_sort(vt);
            self.dedup();
            self.remove_dominated();
            if self.len() > MAX_FEAS_CONSTRAINTS {
                return (Feasibility::Unknown, peak);
            }
        }
        if self.contradictory || !self.constraints.is_empty() {
            (Feasibility::Infeasible, peak)
        } else {
            (Feasibility::Feasible, peak)
        }
    }

    /// Feasibility test collapsed to a boolean: `false` only when the
    /// system is *proven* to have no integer solution; `true` otherwise
    /// (including `Unknown` — the conservative answer for communication
    /// analysis).
    pub fn is_consistent(&self, vt: &VarTable) -> bool {
        self.feasibility(vt).may_hold()
    }

    /// Exhaustively search an integer box for a satisfying assignment —
    /// exponential, only for tests and oracles. `bounds` pairs each
    /// variable with an inclusive range; variables outside `bounds` must
    /// not occur in the system. Runs with [`DEFAULT_SEARCH_FUEL`];
    /// `None` means "no assignment found within the budget".
    pub fn find_integer_solution(
        &self,
        bounds: &[(VarId, i128, i128)],
    ) -> Option<Vec<(VarId, i128)>> {
        match self.find_integer_solution_bounded(bounds, DEFAULT_SEARCH_FUEL) {
            IntSearch::Found(a) => Some(a),
            IntSearch::Absent | IntSearch::Unknown => None,
        }
    }

    /// [`System::find_integer_solution`] with an explicit fuel budget:
    /// every partial-assignment node costs one unit of fuel, and boxes
    /// deeper than [`MAX_SEARCH_DEPTH`] variables are rejected outright,
    /// so pathological generated systems return [`IntSearch::Unknown`]
    /// instead of hanging or blowing the stack.
    pub fn find_integer_solution_bounded(
        &self,
        bounds: &[(VarId, i128, i128)],
        fuel: u64,
    ) -> IntSearch {
        if self.contradictory {
            return IntSearch::Absent;
        }
        if bounds.len() > MAX_SEARCH_DEPTH {
            return IntSearch::Unknown;
        }
        fn rec(
            sys: &System,
            bounds: &[(VarId, i128, i128)],
            idx: usize,
            assign: &mut Vec<(VarId, i128)>,
            fuel: &mut u64,
        ) -> Option<bool> {
            if *fuel == 0 {
                return None;
            }
            *fuel -= 1;
            if idx == bounds.len() {
                let lookup = |v: VarId| -> i128 {
                    assign
                        .iter()
                        .find(|(av, _)| *av == v)
                        .map(|(_, x)| *x)
                        .expect("unbound variable in system")
                };
                return Some(sys.constraints.iter().all(|c| c.holds_int(&lookup)));
            }
            let (v, lo, hi) = bounds[idx];
            let mut x = lo;
            while x <= hi {
                assign.push((v, x));
                match rec(sys, bounds, idx + 1, assign, fuel) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
                assign.pop();
                if x == hi {
                    break;
                }
                x += 1;
            }
            Some(false)
        }
        let mut assign = Vec::new();
        let mut fuel = fuel;
        match rec(self, bounds, 0, &mut assign, &mut fuel) {
            Some(true) => IntSearch::Found(assign),
            Some(false) => IntSearch::Absent,
            None => IntSearch::Unknown,
        }
    }

    /// Render with variable names, one constraint per line.
    pub fn display<'a>(&'a self, vt: &'a VarTable) -> impl fmt::Display + 'a {
        DisplaySystem { s: self, vt }
    }
}

struct DisplaySystem<'a> {
    s: &'a System,
    vt: &'a VarTable,
}

impl fmt::Display for DisplaySystem<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.s.contradictory {
            return writeln!(f, "<contradiction>");
        }
        for c in &self.s.constraints {
            writeln!(f, "{}", c.display(self.vt))?;
        }
        Ok(())
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.contradictory {
            return write!(f, "System<contradiction>");
        }
        f.debug_list().entries(&self.constraints).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarKind;

    fn table() -> (VarTable, VarId, VarId, VarId) {
        let mut vt = VarTable::new();
        let n = vt.fresh("n", VarKind::Symbolic);
        let i = vt.fresh("i", VarKind::LoopIndex);
        let j = vt.fresh("j", VarKind::LoopIndex);
        (vt, n, i, j)
    }

    #[test]
    fn empty_system_is_consistent() {
        let (vt, ..) = table();
        assert!(System::new().is_consistent(&vt));
        assert_eq!(System::new().feasibility(&vt), Feasibility::Feasible);
    }

    #[test]
    fn contradiction_is_inconsistent() {
        let (vt, ..) = table();
        assert!(!System::contradiction().is_consistent(&vt));
        let mut s = System::new();
        s.add_ge(LinExpr::constant(-1));
        assert!(!s.is_consistent(&vt));
        assert_eq!(s.feasibility(&vt), Feasibility::Infeasible);
    }

    #[test]
    fn box_with_point_inside() {
        let (vt, _, i, _) = table();
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(1), LinExpr::constant(10));
        s.add_eq(LinExpr::var(i) - LinExpr::constant(7));
        assert!(s.is_consistent(&vt));
    }

    #[test]
    fn box_with_point_outside() {
        let (vt, _, i, _) = table();
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(1), LinExpr::constant(10));
        s.add_eq(LinExpr::var(i) - LinExpr::constant(42));
        assert!(!s.is_consistent(&vt));
    }

    #[test]
    fn two_var_chain() {
        let (vt, _, i, j) = table();
        // 0 <= i <= 5, j == i + 10, j <= 12  => i <= 2, feasible
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(0), LinExpr::constant(5));
        s.add_eq(LinExpr::var(j) - LinExpr::var(i) - LinExpr::constant(10));
        s.add_ge(LinExpr::constant(12) - LinExpr::var(j));
        assert!(s.is_consistent(&vt));
        // tighten: j <= 9 makes it infeasible (j >= 10 always)
        s.add_ge(LinExpr::constant(9) - LinExpr::var(j));
        assert!(!s.is_consistent(&vt));
    }

    #[test]
    fn symbolic_bound_consistency() {
        let (vt, n, i, _) = table();
        // 1 <= i <= n and n >= 1 is consistent; adding n <= 0 kills it.
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(1), LinExpr::var(n));
        s.add_ge(LinExpr::var(n) - LinExpr::constant(1));
        assert!(s.is_consistent(&vt));
        s.add_ge(-LinExpr::var(n));
        assert!(!s.is_consistent(&vt));
    }

    #[test]
    fn integer_tightening_catches_parity_gap() {
        let (vt, _, i, _) = table();
        // 2i == 1 infeasible over the integers (feasible over rationals).
        let mut s = System::new();
        s.add_eq(LinExpr::term(i, 2) - LinExpr::constant(1));
        assert!(!s.is_consistent(&vt));
    }

    #[test]
    fn eliminate_pairs_bounds() {
        let (vt, _, i, j) = table();
        // i <= j and j <= i - 1 => infeasible after eliminating j.
        let mut s = System::new();
        s.add_ge(LinExpr::var(j) - LinExpr::var(i));
        s.add_ge(LinExpr::var(i) - LinExpr::constant(1) - LinExpr::var(j));
        let e = s.eliminate(j);
        assert!(e.is_contradictory() || !e.is_consistent(&vt));
    }

    #[test]
    fn propagate_unit_equalities_substitutes() {
        let (vt, _, i, j) = table();
        let mut s = System::new();
        s.add_eq(LinExpr::var(j) - LinExpr::var(i) - LinExpr::constant(1)); // j = i+1
        s.add_range(LinExpr::var(i), LinExpr::constant(0), LinExpr::constant(3));
        s.add_eq(LinExpr::var(j) - LinExpr::constant(10)); // j = 10 -> i = 9, out of range
        s.propagate_unit_equalities(&vt);
        assert!(!s.is_consistent(&vt));
    }

    #[test]
    fn find_integer_solution_oracle() {
        let (_, _, i, j) = table();
        let mut s = System::new();
        s.add_eq(LinExpr::var(i) + LinExpr::var(j) - LinExpr::constant(5));
        s.add_ge(LinExpr::var(i) - LinExpr::var(j)); // i >= j
        let sol = s
            .find_integer_solution(&[(i, 0, 5), (j, 0, 5)])
            .expect("solution exists");
        let get = |v: VarId| sol.iter().find(|(a, _)| *a == v).unwrap().1;
        assert_eq!(get(i) + get(j), 5);
        assert!(get(i) >= get(j));
    }

    #[test]
    fn integer_search_respects_fuel_and_depth() {
        let (_, _, i, j) = table();
        let mut s = System::new();
        s.add_eq(LinExpr::var(i) - LinExpr::var(j));
        // One unit of fuel cannot even finish the first assignment.
        assert_eq!(
            s.find_integer_solution_bounded(&[(i, 0, 1000), (j, 0, 1000)], 1),
            IntSearch::Unknown
        );
        // A generous budget finds the solution.
        assert!(matches!(
            s.find_integer_solution_bounded(&[(i, 0, 1000), (j, 0, 1000)], 1 << 20),
            IntSearch::Found(_)
        ));
        // An exhaustive scan of an empty region reports Absent.
        let mut none = System::new();
        none.add_ge(LinExpr::var(i) - LinExpr::constant(5));
        none.add_ge(LinExpr::constant(2) - LinExpr::var(i));
        assert_eq!(
            none.find_integer_solution_bounded(&[(i, 0, 10)], 1 << 20),
            IntSearch::Absent
        );
        // Boxes deeper than the recursion cap refuse to run.
        let mut vt = VarTable::new();
        let deep: Vec<_> = (0..MAX_SEARCH_DEPTH + 1)
            .map(|k| (vt.fresh(format!("x{k}"), VarKind::LoopIndex), 0, 1))
            .map(|(v, a, b)| (v, a as i128, b as i128))
            .collect();
        assert_eq!(
            System::new().find_integer_solution_bounded(&deep, u64::MAX),
            IntSearch::Unknown
        );
    }

    #[test]
    fn projection_keeps_only_requested_vars() {
        let (vt, n, i, _) = table();
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(1), LinExpr::var(n));
        let p = s.project_onto(&vt, &[n]);
        // Projection of 1 <= i <= n onto n is n >= 1.
        assert!(p.constraints().iter().all(|c| c.expr.coeff(i) == 0));
        let mut feas = p.clone();
        feas.add_eq(LinExpr::var(n) - LinExpr::constant(3));
        assert!(feas.is_consistent(&vt));
        let mut infeas = p.clone();
        infeas.add_eq(LinExpr::var(n)); // n == 0 contradicts n >= 1
        assert!(!infeas.is_consistent(&vt));
    }

    #[test]
    fn dedup_removes_duplicates() {
        let (_, _, i, _) = table();
        let mut s = System::new();
        s.add_ge(LinExpr::var(i));
        s.add_ge(LinExpr::var(i));
        s.dedup();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn dominated_bounds_are_dropped() {
        let (_, _, i, _) = table();
        let mut s = System::new();
        s.add_ge(LinExpr::var(i) - LinExpr::constant(5)); // i >= 5 (binding)
        s.add_ge(LinExpr::var(i) - LinExpr::constant(3)); // i >= 3 (dominated)
        s.remove_dominated();
        assert_eq!(s.len(), 1);
        assert_eq!(s.constraints()[0].expr.constant_term(), -5);
        // Two equalities over the same terms with different constants.
        let mut c = System::new();
        c.add_eq(LinExpr::var(i) - LinExpr::constant(1));
        c.add_eq(LinExpr::var(i) - LinExpr::constant(2));
        c.remove_dominated();
        assert!(c.is_contradictory());
        // Equality vs violated inequality over the same terms.
        let mut e = System::new();
        e.add_eq(LinExpr::var(i) - LinExpr::constant(1)); // i == 1
        e.add_ge(LinExpr::var(i) - LinExpr::constant(2)); // i >= 2
        e.remove_dominated();
        assert!(e.is_contradictory());
    }

    #[test]
    fn overflowing_chain_reports_unknown_not_panic() {
        // A chain of inequalities with huge mutually-coprime coefficients:
        // each elimination step multiplies them together until they leave
        // i128. The guarded scan must answer Unknown (treated as
        // feasible) instead of panicking.
        let mut vt = VarTable::new();
        let vs: Vec<VarId> = (0..6)
            .map(|k| vt.fresh(format!("x{k}"), VarKind::LoopIndex))
            .collect();
        // Large odd multipliers near 2^64: cross-combining two such
        // coefficients needs ~2^128 intermediate products, past i128.
        let big: Vec<i128> = (0..6).map(|k| (1i128 << 64) + 2 * k + 1).collect();
        let mut s = System::new();
        for w in 0..5 {
            // big[w]*x_w - big[w+1]*x_{w+1} >= 0 and the reverse with an
            // offset, giving both lower and upper occurrences of each var.
            s.add_ge(LinExpr::term(vs[w], big[w]) - LinExpr::term(vs[w + 1], big[w + 1]));
            s.add_ge(
                LinExpr::term(vs[w + 1], big[w + 1] + 2) - LinExpr::term(vs[w], big[w] + 2)
                    + LinExpr::constant(1),
            );
        }
        let (f, peak) = s.feasibility_with_peak(&vt);
        assert_eq!(f, Feasibility::Unknown);
        assert!(peak >= s.len());
        // The boolean view is conservative: Unknown counts as consistent.
        assert!(s.is_consistent(&vt));
    }

    #[test]
    fn canonical_sort_orders_by_content() {
        let (vt, _, i, j) = table();
        let mut a = System::new();
        a.add_ge(LinExpr::var(j) - LinExpr::constant(2));
        a.add_ge(LinExpr::var(i) - LinExpr::constant(1));
        let mut b = System::new();
        b.add_ge(LinExpr::var(i) - LinExpr::constant(1));
        b.add_ge(LinExpr::var(j) - LinExpr::constant(2));
        a.canonical_sort(&vt);
        b.canonical_sort(&vt);
        let key = |s: &System| {
            s.constraints()
                .iter()
                .map(|c| format!("{c:?}"))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
    }
}
