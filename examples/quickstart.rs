//! Quickstart: build a small stencil program with the DSL, run the
//! barrier-elimination optimizer, and execute both schedules.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use barrier_elim::analysis::Bindings;
use barrier_elim::interp::{run_sequential, run_virtual, Mem, ScheduleOrder};
use barrier_elim::ir::build::*;
use barrier_elim::spmd_opt::{fork_join, optimize, render_plan};

fn main() {
    // A 1-D Jacobi sweep: DO t { DOALL i: B = avg(A); DOALL j: A = B }.
    let mut pb = ProgramBuilder::new("quickstart");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let a = pb.array("A", &[sym(n)], dist_block());
    let b = pb.array("B", &[sym(n)], dist_block());

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i0)]), ival(idx(i0)).sin());
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);
    let i = pb.begin_par("i", con(1), sym(n) - 2);
    pb.assign(
        elem(b, [idx(i)]),
        ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
    );
    pb.end();
    let j = pb.begin_par("j", con(1), sym(n) - 2);
    pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
    pb.end();
    pb.end();
    let prog = pb.finish();

    println!(
        "--- source ---\n{}",
        barrier_elim::ir::pretty::pretty(&prog)
    );

    // Bind the problem size and processor count.
    let bind = Bindings::new(4).set(n, 64).set(tmax, 10);

    // Baseline: fork-join, one barrier per parallel loop execution.
    let base = fork_join(&prog, &bind);
    println!("--- fork-join ---\n{}", render_plan(&prog, &base));

    // Optimized: one SPMD region, barriers eliminated or replaced.
    let opt = optimize(&prog, &bind);
    println!("--- optimized ---\n{}", render_plan(&prog, &opt));

    // Execute everything and compare.
    let oracle = Mem::new(&prog, &bind);
    run_sequential(&prog, &bind, &oracle);

    for (label, plan) in [("fork-join", &base), ("optimized", &opt)] {
        let mem = Mem::new(&prog, &bind);
        let out = run_virtual(&prog, &bind, plan, &mem, ScheduleOrder::Reverse);
        assert_eq!(mem.max_abs_diff(&oracle), 0.0, "{label} diverged!");
        println!(
            "{label:>10}: {} barriers, {} neighbor posts, {} dispatches — results match",
            out.counts.barriers, out.counts.neighbor_posts, out.counts.dispatches
        );
    }
}
