//! Structured reports for self-healed executions.
//!
//! The recovery supervisor (in the `interp` crate — this module is
//! plain data so `obs` stays below `interp` in the crate DAG) retries a
//! failed region after rolling memory back to a checkpoint, demoting
//! the faulting sync site to a full barrier, and — on repeated faults —
//! quarantining the site. A [`RecoveryReport`] records that whole
//! timeline: every failed attempt with its headline and the ladder
//! actions taken, the sites left demoted or quarantined, and the
//! residual [`FailureReport`] when the retry budget ran out.
//!
//! Rendering is deterministic: backoffs are the *planned* values from
//! the retry policy (`base * 2^(retry-1)`, capped), never measured
//! wall-clock, so two runs with the same seed produce byte-identical
//! reports.

use crate::failure::{failure_json, FailureReport};
use crate::json::Json;

/// One escalation-ladder action applied to a sync site after a failed
/// attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteActionReport {
    /// Canonical sync-site id.
    pub site: usize,
    /// The site's label in the canonical walk.
    pub label: String,
    /// `"demote"`, `"quarantine"`, `"isolate"`, `"retry"`, or
    /// `"restore"` (probation served — the site's optimized op is
    /// back).
    pub action: String,
}

/// One failed execution attempt and what the supervisor did about it.
#[derive(Clone, Debug)]
pub struct AttemptReport {
    /// 1-based attempt number.
    pub attempt: u32,
    /// The failure headline of this attempt.
    pub headline: String,
    /// Ladder actions taken per implicated site (empty when the fault
    /// had no attributable site — a panic or dispatch timeout — and the
    /// attempt was plainly retried).
    pub actions: Vec<SiteActionReport>,
    /// Planned backoff before the next attempt, in milliseconds.
    pub backoff_ms: u64,
    /// Barrier episodes counted during *this* attempt only (the fabric
    /// stats are reset between attempts, so retries never double-count).
    pub barrier_episodes: u64,
    /// Counter increments during this attempt only.
    pub counter_increments: u64,
    /// Neighbor posts during this attempt only.
    pub neighbor_posts: u64,
    /// Spin-loop rounds during this attempt only.
    pub spin_rounds: u64,
    /// Yield rounds during this attempt only.
    pub yield_rounds: u64,
    /// Bounded parks during this attempt only.
    pub parks: u64,
    /// The processor the supervisor suspects caused this attempt's
    /// failure (`None` when the fault could not be attributed to a
    /// single pid). Feeds the sticky-fault permanent-loss classifier.
    pub suspect_pid: Option<usize>,
}

/// The full recovery timeline of one supervised execution.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Program whose schedule was supervised.
    pub program: String,
    /// Team size.
    pub nprocs: usize,
    /// The armed per-wait deadline, in milliseconds.
    pub deadline_ms: f64,
    /// The retry budget (total executions allowed).
    pub max_attempts: u32,
    /// Executions actually spent (1 = clean first run).
    pub attempts_used: u32,
    /// True when the run completed only thanks to at least one retry.
    pub recovered: bool,
    /// True when the final attempt completed (clean or recovered).
    pub ok: bool,
    /// The failed attempts, in order (a clean first run has none).
    pub attempts: Vec<AttemptReport>,
    /// Sites demoted to a full barrier, with their labels, in demotion
    /// order.
    pub demoted: Vec<(usize, String)>,
    /// Sites quarantined after demotion failed to help, in escalation
    /// order.
    pub quarantined: Vec<usize>,
    /// Fault count per site (site → faults), sorted by site.
    pub fault_counts: Vec<(usize, u32)>,
    /// Fault count per processor (pid → faults), sorted by pid.
    pub pid_fault_counts: Vec<(usize, u32)>,
    /// Sites whose probation was served: quarantine lifted and the
    /// original optimized sync op restored, with labels, in order.
    pub restored: Vec<(usize, String)>,
    /// The processor classified as a permanent loss by the sticky-fault
    /// rule (same pid as primary suspect across K consecutive failed
    /// attempts). When set, the supervisor aborted early so a degrading
    /// caller can shrink the team instead of burning the retry budget.
    pub lost_pid: Option<usize>,
    /// Array cells in the region checkpoint (how small the write-set
    /// snapshot was).
    pub checkpoint_cells: usize,
    /// Chaos seed, when a fault injector was active.
    pub chaos_seed: Option<u64>,
    /// The terminal failure, when the budget ran out without a
    /// completed attempt.
    pub residual: Option<FailureReport>,
}

/// The recovery document (deterministic member order).
pub fn recovery_json(r: &RecoveryReport) -> Json {
    let attempts: Vec<Json> = r
        .attempts
        .iter()
        .map(|a| {
            let mut doc = Json::obj()
                .set("attempt", a.attempt)
                .set("headline", a.headline.as_str())
                .set(
                    "actions",
                    Json::Arr(
                        a.actions
                            .iter()
                            .map(|x| {
                                Json::obj()
                                    .set("site", x.site)
                                    .set("label", x.label.as_str())
                                    .set("action", x.action.as_str())
                            })
                            .collect(),
                    ),
                )
                .set("backoff_ms", a.backoff_ms)
                .set("barrier_episodes", a.barrier_episodes)
                .set("counter_increments", a.counter_increments)
                .set("neighbor_posts", a.neighbor_posts)
                .set("spin_rounds", a.spin_rounds)
                .set("yield_rounds", a.yield_rounds)
                .set("parks", a.parks);
            if let Some(pid) = a.suspect_pid {
                doc = doc.set("suspect_pid", pid);
            }
            doc
        })
        .collect();
    let mut doc = Json::obj()
        .set("program", r.program.as_str())
        .set("nprocs", r.nprocs)
        .set("deadline_ms", r.deadline_ms)
        .set("max_attempts", r.max_attempts)
        .set("attempts_used", r.attempts_used)
        .set("recovered", r.recovered)
        .set("ok", r.ok)
        .set("attempts", Json::Arr(attempts))
        .set(
            "demoted",
            Json::Arr(
                r.demoted
                    .iter()
                    .map(|(s, l)| Json::obj().set("site", *s).set("label", l.as_str()))
                    .collect(),
            ),
        )
        .set(
            "quarantined",
            Json::Arr(r.quarantined.iter().map(|&s| Json::Num(s as f64)).collect()),
        )
        .set(
            "fault_counts",
            Json::Arr(
                r.fault_counts
                    .iter()
                    .map(|&(s, n)| Json::obj().set("site", s).set("faults", n))
                    .collect(),
            ),
        )
        .set(
            "pid_fault_counts",
            Json::Arr(
                r.pid_fault_counts
                    .iter()
                    .map(|&(p, n)| Json::obj().set("pid", p).set("faults", n))
                    .collect(),
            ),
        )
        .set(
            "restored",
            Json::Arr(
                r.restored
                    .iter()
                    .map(|(s, l)| Json::obj().set("site", *s).set("label", l.as_str()))
                    .collect(),
            ),
        )
        .set("checkpoint_cells", r.checkpoint_cells);
    if let Some(pid) = r.lost_pid {
        doc = doc.set("lost_pid", pid);
    }
    if let Some(seed) = r.chaos_seed {
        doc = doc.set("chaos_seed", seed);
    }
    if let Some(f) = &r.residual {
        doc = doc.set("residual", failure_json(f));
    }
    doc
}

/// Human-readable recovery timeline (what `beopt --run --recover`
/// prints). Deterministic for a fixed seed: backoffs are the planned
/// policy values, and no wall-clock figures appear.
pub fn render_recovery(r: &RecoveryReport) -> String {
    let mut out = String::new();
    out.push_str("--- recovery report ---\n");
    out.push_str(&format!("program : {} (P={})\n", r.program, r.nprocs));
    out.push_str(&format!(
        "budget  : {} attempt(s), deadline {:.0}ms/wait\n",
        r.max_attempts, r.deadline_ms
    ));
    if let Some(seed) = r.chaos_seed {
        out.push_str(&format!("chaos   : seed {seed}\n"));
    }
    for a in &r.attempts {
        out.push_str(&format!("attempt {}: FAILED — {}\n", a.attempt, a.headline));
        if let Some(pid) = a.suspect_pid {
            out.push_str(&format!("  suspect: P{pid}\n"));
        }
        for x in &a.actions {
            out.push_str(&format!(
                "  ladder : {} s{} ({})\n",
                x.action, x.site, x.label
            ));
        }
        if a.actions.is_empty() {
            out.push_str("  ladder : plain retry (no attributable site)\n");
        }
        out.push_str(&format!(
            "  rollback to checkpoint ({} cells), backoff {}ms\n",
            r.checkpoint_cells, a.backoff_ms
        ));
    }
    if r.ok {
        if r.recovered {
            out.push_str(&format!(
                "attempt {}: OK — recovered after {} failed attempt(s)\n",
                r.attempts_used,
                r.attempts.len()
            ));
        } else {
            out.push_str("attempt 1: OK — no recovery needed\n");
        }
    } else if let Some(pid) = r.lost_pid {
        out.push_str(&format!(
            "attempt {}: P{pid} classified as permanent processor loss — degrading\n",
            r.attempts_used
        ));
    } else {
        out.push_str(&format!(
            "attempt {}: budget exhausted — giving up\n",
            r.attempts_used
        ));
    }
    if !r.demoted.is_empty() {
        let list: Vec<String> = r
            .demoted
            .iter()
            .map(|(s, l)| format!("s{s} ({l})"))
            .collect();
        out.push_str(&format!("demoted : {}\n", list.join(", ")));
    }
    if !r.quarantined.is_empty() {
        let list: Vec<String> = r.quarantined.iter().map(|s| format!("s{s}")).collect();
        out.push_str(&format!("quarantined : {}\n", list.join(", ")));
    }
    if !r.restored.is_empty() {
        let list: Vec<String> = r
            .restored
            .iter()
            .map(|(s, l)| format!("s{s} ({l})"))
            .collect();
        out.push_str(&format!("restored : {}\n", list.join(", ")));
    }
    if let Some(f) = &r.residual {
        out.push_str(&crate::failure::render_failure(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecoveryReport {
        RecoveryReport {
            program: "jacobi".to_string(),
            nprocs: 4,
            deadline_ms: 120.0,
            max_attempts: 7,
            attempts_used: 3,
            recovered: true,
            ok: true,
            attempts: vec![
                AttemptReport {
                    attempt: 1,
                    headline: "deadline exceeded after 120ms at s2 (after DOALL i) on P1: \
                               counter wait needed 2, observed 1"
                        .to_string(),
                    actions: vec![SiteActionReport {
                        site: 2,
                        label: "after DOALL i".to_string(),
                        action: "demote".to_string(),
                    }],
                    backoff_ms: 5,
                    barrier_episodes: 1,
                    counter_increments: 3,
                    neighbor_posts: 0,
                    spin_rounds: 40,
                    yield_rounds: 6,
                    parks: 1,
                    suspect_pid: Some(1),
                },
                AttemptReport {
                    attempt: 2,
                    headline: "deadline exceeded after 120ms at s2 (after DOALL i) on P1: \
                               barrier wait needed 4, observed 3"
                        .to_string(),
                    actions: vec![SiteActionReport {
                        site: 2,
                        label: "after DOALL i".to_string(),
                        action: "quarantine".to_string(),
                    }],
                    backoff_ms: 10,
                    barrier_episodes: 2,
                    counter_increments: 0,
                    neighbor_posts: 0,
                    spin_rounds: 12,
                    yield_rounds: 0,
                    parks: 0,
                    suspect_pid: None,
                },
            ],
            demoted: vec![(2, "after DOALL i".to_string())],
            quarantined: vec![2],
            fault_counts: vec![(2, 2)],
            pid_fault_counts: vec![(1, 1)],
            restored: Vec::new(),
            lost_pid: None,
            checkpoint_cells: 46,
            chaos_seed: Some(7),
            residual: None,
        }
    }

    #[test]
    fn json_round_trips_and_names_the_ladder() {
        let doc = recovery_json(&sample());
        assert_eq!(doc.get("recovered").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("attempts_used").unwrap().as_u64(), Some(3));
        let attempts = doc.get("attempts").unwrap().as_arr().unwrap();
        assert_eq!(attempts.len(), 2);
        let a0 = &attempts[0];
        let act = &a0.get("actions").unwrap().as_arr().unwrap()[0];
        assert_eq!(act.get("action").unwrap().as_str(), Some("demote"));
        assert_eq!(act.get("site").unwrap().as_u64(), Some(2));
        assert_eq!(a0.get("backoff_ms").unwrap().as_u64(), Some(5));
        assert_eq!(a0.get("spin_rounds").unwrap().as_u64(), Some(40));
        assert_eq!(a0.get("yield_rounds").unwrap().as_u64(), Some(6));
        assert_eq!(a0.get("parks").unwrap().as_u64(), Some(1));
        assert_eq!(a0.get("suspect_pid").unwrap().as_u64(), Some(1));
        assert!(attempts[1].get("suspect_pid").is_none());
        let pf = &doc.get("pid_fault_counts").unwrap().as_arr().unwrap()[0];
        assert_eq!(pf.get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(pf.get("faults").unwrap().as_u64(), Some(1));
        assert!(doc.get("lost_pid").is_none());
        let txt = doc.to_string_pretty();
        assert_eq!(crate::json::parse(&txt).unwrap(), doc);
    }

    #[test]
    fn sticky_loss_and_probation_show_up_in_both_forms() {
        let mut r = sample();
        r.ok = false;
        r.recovered = false;
        r.lost_pid = Some(1);
        r.restored = vec![(2, "after DOALL i".to_string())];
        let txt = render_recovery(&r);
        assert!(txt.contains("suspect: P1"));
        assert!(txt.contains("P1 classified as permanent processor loss"));
        assert!(txt.contains("restored : s2 (after DOALL i)"));
        let doc = recovery_json(&r);
        assert_eq!(doc.get("lost_pid").unwrap().as_u64(), Some(1));
        let rest = &doc.get("restored").unwrap().as_arr().unwrap()[0];
        assert_eq!(rest.get("site").unwrap().as_u64(), Some(2));
        let txt2 = doc.to_string_pretty();
        assert_eq!(crate::json::parse(&txt2).unwrap(), doc);
    }

    #[test]
    fn rendering_is_deterministic_and_tells_the_story() {
        let r = sample();
        let t1 = render_recovery(&r);
        let t2 = render_recovery(&r);
        assert_eq!(t1, t2);
        assert!(t1.contains("attempt 1: FAILED"));
        assert!(t1.contains("demote s2"));
        assert!(t1.contains("quarantine s2"));
        assert!(t1.contains("backoff 5ms"));
        assert!(t1.contains("recovered after 2 failed attempt(s)"));
        assert!(!t1.to_lowercase().contains("elapsed"), "no wall-clock");
    }

    #[test]
    fn exhausted_budget_reports_residual_failure() {
        let mut r = sample();
        r.ok = false;
        r.recovered = false;
        r.residual = Some(crate::failure::FailureReport {
            program: "jacobi".to_string(),
            nprocs: 4,
            deadline_ms: 120.0,
            cause: crate::failure::FailureCause::Panic {
                pid: 0,
                message: "boom".to_string(),
            },
            site_label: String::new(),
            per_proc: vec!["ok".to_string(); 4],
            chaos_seed: None,
            sites: Vec::new(),
        });
        let txt = render_recovery(&r);
        assert!(txt.contains("budget exhausted"));
        assert!(txt.contains("sync failure report"));
        let doc = recovery_json(&r);
        assert!(doc.get("residual").is_some());
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    }
}
