#!/usr/bin/env python3
"""CI smoke for the beoptd daemon, driven from outside the Rust tree.

Speaks the newline-delimited JSON wire protocol directly (no served
client library), so it doubles as a protocol-compatibility check:
ping, a burst of concurrent optimize requests that must all come back
identical, stats, an explicit snapshot, and a graceful wire shutdown.

usage: beoptd_smoke.py HOST PORT [KERNEL]
"""

import json
import socket
import sys
import threading

HOST = sys.argv[1]
PORT = int(sys.argv[2])
KERNEL = sys.argv[3] if len(sys.argv) > 3 else "kernels/jacobi.be"
CLIENTS = 8

with open(KERNEL) as f:
    SRC = f.read()


def rpc(req):
    with socket.create_connection((HOST, PORT), timeout=30) as s:
        f = s.makefile("rw", encoding="utf-8", newline="\n")
        f.write(json.dumps(req, separators=(",", ":")) + "\n")
        f.flush()
        line = f.readline()
        if not line:
            raise RuntimeError("daemon closed the connection without a reply")
        return json.loads(line)


def optimize(i, out):
    out[i] = rpc(
        {
            "v": 1,
            "op": "optimize",
            "id": i,
            "plan": "optimized",
            "nprocs": 4,
            "binds": [["n", 48], ["tmax", 4]],
            "program": SRC,
        }
    )


ping = rpc({"v": 1, "op": "ping"})
assert ping.get("ok") is True, ping

out = {}
threads = [threading.Thread(target=optimize, args=(i, out)) for i in range(CLIENTS)]
for t in threads:
    t.start()
for t in threads:
    t.join()

docs = set()
for i in range(CLIENTS):
    reply = out.get(i)
    assert reply is not None, f"client {i} got no reply"
    assert reply.get("ok") is True, (i, reply)
    docs.add(json.dumps(reply["explain"], sort_keys=True))
assert len(docs) == 1, "explain documents diverged across concurrent clients"

stats = rpc({"v": 1, "op": "stats"})
assert stats.get("ok") is True, stats
served = stats["stats"]["totals"]["served"]
assert served >= CLIENTS, stats

snap = rpc({"v": 1, "op": "snapshot"})
assert snap.get("ok") is True, snap

bye = rpc({"v": 1, "op": "shutdown"})
assert bye.get("ok") is True, bye

print(
    f"beoptd smoke ok: {served} served, {CLIENTS} concurrent clients, "
    "explain documents byte-identical"
)
