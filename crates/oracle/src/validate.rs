//! Static schedule race validator: a happens-before checker over the
//! unrolled event stream of a schedule.
//!
//! Every processor traverses the same event list (SPMD replicated
//! control flow), so the validator works in two passes over that list:
//!
//! 1. **Access collection.** Each work event is executed per processor
//!    against a scratch memory with a recording
//!    [`TraceBuffer`](interp::TraceBuffer) attached, yielding the set
//!    of shared cells each `(event, pid)` touches. Subscripts and
//!    guards are affine in loop indices and symbolic constants — never
//!    data-dependent — so the access sets do not depend on the order
//!    (or the garbage values) of this replay.
//!
//! 2. **Vector clocks.** A single in-order walk computes each
//!    processor's vector clock at every event. Work events tick the
//!    processor's own component; sync events join clocks exactly as
//!    the operation's blocking rule (mirrored from the virtual
//!    executor's `can_advance`) permits: a barrier joins everyone with
//!    everyone, a neighbor sync joins a processor with its producing
//!    neighbors' arrival clocks, a counter sync joins consumers with
//!    the producer, and the region dispatch joins workers with the
//!    master.
//!
//! Two accesses race when they touch the same cell from different
//! processors, at least one is a write (atomic reductions conflict
//! with reads and writes but commute with each other), and neither
//! happens-before the other. A sound schedule — one whose syncs order
//! every cross-processor def/use pair — validates race-free.

use analysis::Bindings;
use interp::events::{exec_work, producer_pid, unroll};
use interp::{AccessKind, Event, Mem, Target, TraceBuffer};
use ir::Program;
use spmd_opt::{SpmdProgram, SyncOp};
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;
use std::sync::Arc;

/// One side of a race.
#[derive(Clone, Copy, Debug)]
pub struct AccessAt {
    /// Index into the unrolled event list.
    pub event: usize,
    /// The processor.
    pub pid: usize,
    /// Read, write, or reduction.
    pub kind: AccessKind,
}

/// A pair of conflicting, unordered accesses.
#[derive(Clone, Copy, Debug)]
pub struct Race {
    /// The cell both sides touch.
    pub target: Target,
    /// One side.
    pub a: AccessAt,
    /// The other side.
    pub b: AccessAt,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}: p{} {:?} at event {} unordered with p{} {:?} at event {}",
            self.target,
            self.a.pid,
            self.a.kind,
            self.a.event,
            self.b.pid,
            self.b.kind,
            self.b.event
        )
    }
}

/// Outcome of validating one schedule under concrete bindings.
#[derive(Debug, Default)]
pub struct RaceReport {
    /// Unordered conflicting pairs (capped at [`MAX_REPORTED`]).
    pub races: Vec<Race>,
    /// Total number of racing pairs found (uncapped).
    pub num_racing_pairs: usize,
    /// Events in the unrolled schedule.
    pub num_events: usize,
    /// Distinct `(event, pid, cell, kind)` accesses examined.
    pub num_accesses: usize,
}

/// Cap on materialized [`Race`] records (the count keeps going).
pub const MAX_REPORTED: usize = 64;

impl RaceReport {
    /// True when no unordered conflicting pair exists.
    pub fn is_race_free(&self) -> bool {
        self.num_racing_pairs == 0
    }
}

fn conflicts(a: AccessKind, b: AccessKind) -> bool {
    use AccessKind::*;
    !matches!((a, b), (Read, Read) | (Reduce, Reduce))
}

fn join(into: &mut [u64], other: &[u64]) {
    for (a, b) in into.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

/// One collected access with the owning processor's clock snapshot.
struct Acc {
    pid: usize,
    event: usize,
    kind: AccessKind,
    clock: Rc<Vec<u64>>,
}

/// `a` happens-before `b`: everything `a`'s processor had done at `a`
/// (including `a` itself) is visible in `b`'s snapshot.
fn hb(a: &Acc, b: &Acc) -> bool {
    a.clock[a.pid] <= b.clock[a.pid]
}

/// Validate a schedule: race-free means every cross-processor
/// conflicting access pair is ordered by the placed synchronization.
pub fn validate(prog: &Program, bind: &Bindings, plan: &SpmdProgram) -> RaceReport {
    let nprocs = bind.nprocs as usize;
    let events = unroll(prog, bind, plan);

    // Pass 1: per-(event, pid) access sets from a traced replay.
    let tracer = Arc::new(TraceBuffer::new());
    let scratch = Mem::new(prog, bind).with_tracer(Arc::clone(&tracer));
    let mut access_sets: Vec<Vec<(usize, Vec<(Target, AccessKind)>)>> =
        Vec::with_capacity(events.len());
    for ev in &events {
        let mut per_event = Vec::new();
        if matches!(ev, Event::Work { .. } | Event::SerialWork { .. }) {
            for pid in 0..nprocs {
                exec_work(prog, bind, &scratch, pid, nprocs, ev);
                let drained = tracer.drain();
                if !drained.is_empty() {
                    let set: BTreeSet<(Target, AccessKind)> =
                        drained.into_iter().map(|a| (a.target, a.kind)).collect();
                    per_event.push((pid, set.into_iter().collect()));
                }
            }
        }
        access_sets.push(per_event);
    }

    // Pass 2: vector clocks, in event order.
    let mut clocks: Vec<Vec<u64>> = vec![vec![0; nprocs]; nprocs];
    let mut by_target: HashMap<Target, Vec<Acc>> = HashMap::new();
    let mut num_accesses = 0usize;
    for (i, ev) in events.iter().enumerate() {
        match ev {
            Event::Work { .. } | Event::SerialWork { .. } => {
                for (pid, set) in &access_sets[i] {
                    clocks[*pid][*pid] += 1;
                    let snap = Rc::new(clocks[*pid].clone());
                    for &(target, kind) in set {
                        num_accesses += 1;
                        by_target.entry(target).or_default().push(Acc {
                            pid: *pid,
                            event: i,
                            kind,
                            clock: Rc::clone(&snap),
                        });
                    }
                }
            }
            Event::Dispatch => {
                let master = clocks[0].clone();
                for p in 1..nprocs {
                    join(&mut clocks[p], &master);
                }
            }
            Event::Sync { op, env, .. } => match op {
                SyncOp::None => {}
                SyncOp::Barrier => {
                    let mut all = vec![0u64; nprocs];
                    for c in &clocks {
                        join(&mut all, c);
                    }
                    for c in clocks.iter_mut() {
                        c.copy_from_slice(&all);
                    }
                }
                SyncOp::Neighbor { fwd, bwd } => {
                    let pre = clocks.clone();
                    for (p, c) in clocks.iter_mut().enumerate() {
                        if *fwd && p > 0 {
                            join(c, &pre[p - 1]);
                        }
                        if *bwd && p + 1 < nprocs {
                            join(c, &pre[p + 1]);
                        }
                    }
                }
                SyncOp::Counter { producer, .. } => {
                    let prod = producer_pid(bind, prog, producer, env).clamp(0, nprocs as i64 - 1)
                        as usize;
                    let pre = clocks[prod].clone();
                    for (p, c) in clocks.iter_mut().enumerate() {
                        if p != prod {
                            join(c, &pre);
                        }
                    }
                }
                SyncOp::PairCounter { dists, producers } => {
                    // A consumer acquires each in-range distance
                    // target's pre-sync clock (the wait is for that
                    // processor's post at this same replicated visit)
                    // plus every evaluable producer's.
                    let pre = clocks.clone();
                    for (p, c) in clocks.iter_mut().enumerate() {
                        for d in dists.iter() {
                            let t = p as i64 - d;
                            if (0..nprocs as i64).contains(&t) {
                                join(c, &pre[t as usize]);
                            }
                        }
                        for spec in producers {
                            let prod = producer_pid(bind, prog, spec, env)
                                .clamp(0, nprocs as i64 - 1)
                                as usize;
                            if prod != p {
                                join(c, &pre[prod]);
                            }
                        }
                    }
                }
            },
        }
    }

    // Race scan: pairwise within each cell's access list.
    let mut report = RaceReport {
        num_events: events.len(),
        num_accesses,
        ..RaceReport::default()
    };
    for (target, accs) in &by_target {
        for (x, a) in accs.iter().enumerate() {
            for b in &accs[x + 1..] {
                if a.pid == b.pid || !conflicts(a.kind, b.kind) {
                    continue;
                }
                if hb(a, b) || hb(b, a) {
                    continue;
                }
                report.num_racing_pairs += 1;
                if report.races.len() < MAX_REPORTED {
                    report.races.push(Race {
                        target: *target,
                        a: AccessAt {
                            event: a.event,
                            pid: a.pid,
                            kind: a.kind,
                        },
                        b: AccessAt {
                            event: b.event,
                            pid: b.pid,
                            kind: b.kind,
                        },
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::build::*;
    use spmd_opt::{fork_join, optimize};

    fn sweep() -> (Program, Bindings) {
        let mut pb = ProgramBuilder::new("sweep");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let _t = pb.begin_seq("t", con(0), con(3));
        let i = pb.begin_par("i", con(1), sym(n) - 2);
        pb.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 2);
        pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
        pb.end();
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 32);
        (prog, bind)
    }

    #[test]
    fn optimized_and_fork_join_sweeps_are_race_free() {
        let (prog, bind) = sweep();
        for plan in [optimize(&prog, &bind), fork_join(&prog, &bind)] {
            let r = validate(&prog, &bind, &plan);
            assert!(r.is_race_free(), "races: {:?}", r.races);
            assert!(r.num_accesses > 0);
        }
    }

    #[test]
    fn stripping_neighbor_syncs_is_flagged() {
        let (prog, bind) = sweep();
        let mut plan = optimize(&prog, &bind);
        fn strip(items: &mut Vec<spmd_opt::RItem>) {
            for it in items.iter_mut() {
                match it {
                    spmd_opt::RItem::Phase(p) => {
                        if !p.after.is_barrier() {
                            p.after = SyncOp::None;
                        }
                    }
                    spmd_opt::RItem::Seq {
                        body,
                        bottom,
                        after,
                        ..
                    } => {
                        strip(body);
                        if !bottom.is_barrier() {
                            *bottom = SyncOp::None;
                        }
                        if !after.is_barrier() {
                            *after = SyncOp::None;
                        }
                    }
                }
            }
        }
        for item in plan.items.iter_mut() {
            if let spmd_opt::TopItem::Region(r) = item {
                strip(&mut r.items);
            }
        }
        let r = validate(&prog, &bind, &plan);
        assert!(!r.is_race_free(), "stripped schedule must race");
    }
}
