//! Fault detection for the blocking primitives: deadline-guarded waits
//! and region poisoning.
//!
//! Every blocking primitive in this crate spins forever in its plain
//! form — correct when the optimizer placed enough synchronization,
//! fatal when it did not (an eliminated-sync miscompile, a dropped
//! increment, a panicked producer). This module turns those silent
//! hangs into *detected* failures:
//!
//! * a [`Watchdog`] holds the team-wide wait deadline and the region's
//!   poison flag;
//! * [`Watchdog::guarded_wait`] is the single escalating wait loop
//!   (spin → yield → park in bounded slices) every `*_until` primitive
//!   variant delegates to, returning [`SyncError::DeadlineExceeded`]
//!   with the sync site, processor, and expected/observed progress
//!   instead of hanging;
//! * [`Watchdog::poison`] marks the region failed (first cause wins)
//!   and unparks every guarded waiter, so one processor's panic or
//!   timeout tears the whole region down within one park slice instead
//!   of leaving peers wedged at the next barrier.
//!
//! Producers never touch the watchdog (increments stay two atomic
//! instructions), so parked waiters re-check their condition on a
//! bounded slice (≤ [`PARK_SLICE`]) rather than being woken eagerly —
//! progress latency degrades to at most one slice once a wait
//! escalates past spinning, which only happens on waits that are
//! already multiple OS quanta long.

use crate::stats::SyncKind;
use crossbeam::utils::Backoff;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Sentinel site id for the fork-join dispatch broadcast, which is not
/// part of the canonical sync-site walk.
pub const DISPATCH_SITE: usize = usize::MAX;

/// Longest interval a guarded waiter stays parked before re-checking
/// its condition, the deadline, and the poison flag.
pub const PARK_SLICE: Duration = Duration::from_millis(1);

/// Yield-phase length between pure spinning and parking.
const YIELD_ROUNDS: u32 = 64;

/// Why a guarded wait returned without its condition becoming true.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncError {
    /// The wait outlived the watchdog deadline: at sync site `site`,
    /// processor `pid` needed the observed progress value to reach
    /// `expected` but last saw `observed`.
    DeadlineExceeded {
        /// Canonical sync-site id ([`DISPATCH_SITE`] for the dispatch
        /// broadcast, which is outside the site walk).
        site: usize,
        /// Processor that timed out.
        pid: usize,
        /// Which primitive was blocked.
        kind: SyncKind,
        /// Progress value the wait needed.
        expected: u64,
        /// Progress value last observed.
        observed: u64,
    },
    /// Another processor poisoned the region (panic or earlier
    /// timeout) while this one was waiting.
    Poisoned {
        /// Site this processor was waiting at when it saw the poison.
        site: usize,
        /// Processor that observed the poison.
        pid: usize,
        /// First poison cause, as recorded by [`Watchdog::poison`].
        cause: String,
    },
    /// A counter bank was reset out from under this waiter (the
    /// generation guard of `Counters::reset` fired).
    StaleGeneration {
        /// Site the waiter was blocked at.
        site: usize,
        /// Processor whose wait went stale.
        pid: usize,
    },
}

impl SyncError {
    /// The sync site the error is attributed to.
    pub fn site(&self) -> usize {
        match self {
            SyncError::DeadlineExceeded { site, .. }
            | SyncError::Poisoned { site, .. }
            | SyncError::StaleGeneration { site, .. } => *site,
        }
    }

    /// The processor the error occurred on.
    pub fn pid(&self) -> usize {
        match self {
            SyncError::DeadlineExceeded { pid, .. }
            | SyncError::Poisoned { pid, .. }
            | SyncError::StaleGeneration { pid, .. } => *pid,
        }
    }

    /// True for the variants that *initiate* a region failure (poison
    /// observations are secondary — some peer failed first).
    pub fn is_primary(&self) -> bool {
        !matches!(self, SyncError::Poisoned { .. })
    }
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let site_str = |s: usize| {
            if s == DISPATCH_SITE {
                "dispatch".to_string()
            } else {
                format!("s{s}")
            }
        };
        match self {
            SyncError::DeadlineExceeded {
                site,
                pid,
                kind,
                expected,
                observed,
            } => write!(
                f,
                "deadline exceeded at {} on P{pid}: {kind:?} wait needed {expected}, observed {observed}",
                site_str(*site)
            ),
            SyncError::Poisoned { site, pid, cause } => write!(
                f,
                "region poisoned while P{pid} waited at {}: {cause}",
                site_str(*site)
            ),
            SyncError::StaleGeneration { site, pid } => write!(
                f,
                "counter bank reset under P{pid} waiting at {}",
                site_str(*site)
            ),
        }
    }
}

/// What a guarded wait's observation closure reports each poll.
#[derive(Debug)]
pub enum WaitPoll {
    /// The condition holds; the wait succeeds.
    Ready,
    /// Still blocked; the payload is the progress value observed (for
    /// the eventual [`SyncError::DeadlineExceeded`]).
    Pending(u64),
    /// The wait can never succeed (e.g. a stale counter generation).
    Failed(SyncError),
}

/// Team-level deadline and poison state shared by every guarded wait
/// of one region execution.
///
/// Construction is cheap; executors build one per observed run. The
/// deadline bounds each *individual* blocked interval, which is the
/// quantity a lost wakeup makes unbounded — a healthy region never
/// blocks longer than its slowest peer's work chunk.
pub struct Watchdog {
    deadline: Duration,
    poisoned: AtomicBool,
    cause: Mutex<Option<String>>,
    parked: Mutex<Vec<Thread>>,
}

impl Watchdog {
    /// A watchdog allowing each blocking wait up to `deadline`.
    pub fn new(deadline: Duration) -> Self {
        Watchdog {
            deadline,
            poisoned: AtomicBool::new(false),
            cause: Mutex::new(None),
            parked: Mutex::new(Vec::new()),
        }
    }

    /// The per-wait deadline.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// True once any processor poisoned the region.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// The first recorded poison cause, if any.
    pub fn poison_cause(&self) -> Option<String> {
        self.cause.lock().clone()
    }

    /// Mark the region failed and wake every parked guarded waiter.
    /// The first cause is kept; later calls only re-wake waiters.
    pub fn poison(&self, cause: impl Into<String>) {
        {
            let mut c = self.cause.lock();
            if c.is_none() {
                *c = Some(cause.into());
            }
        }
        self.poisoned.store(true, Ordering::Release);
        for t in self.parked.lock().drain(..) {
            t.unpark();
        }
    }

    /// Wake every parked guarded waiter without poisoning (used by the
    /// chaos layer to inject spurious wakeups — a correct waiter must
    /// re-check its condition and go back to sleep).
    pub fn spurious_wake(&self) {
        for t in self.parked.lock().drain(..) {
            t.unpark();
        }
    }

    /// The escalating guarded wait every `*_until` primitive delegates
    /// to: poll `observe`, spinning briefly, then yielding, then
    /// parking in [`PARK_SLICE`] slices until `Ready`, poison, a
    /// `Failed` poll, or the deadline.
    pub fn guarded_wait(
        &self,
        site: usize,
        pid: usize,
        kind: SyncKind,
        expected: u64,
        mut observe: impl FnMut() -> WaitPoll,
    ) -> Result<(), SyncError> {
        let deadline = Instant::now() + self.deadline;
        let backoff = Backoff::new();
        let mut yields = 0u32;
        loop {
            match observe() {
                WaitPoll::Ready => return Ok(()),
                WaitPoll::Pending(_) => {}
                WaitPoll::Failed(e) => return Err(e),
            }
            if self.is_poisoned() {
                return Err(SyncError::Poisoned {
                    site,
                    pid,
                    cause: self.poison_cause().unwrap_or_default(),
                });
            }
            let now = Instant::now();
            if now >= deadline {
                // One final check: the condition may have become true
                // between the poll above and here.
                let observed = match observe() {
                    WaitPoll::Ready => return Ok(()),
                    WaitPoll::Pending(v) => v,
                    WaitPoll::Failed(e) => return Err(e),
                };
                return Err(SyncError::DeadlineExceeded {
                    site,
                    pid,
                    kind,
                    expected,
                    observed,
                });
            }
            if !backoff.is_completed() {
                backoff.snooze();
            } else if yields < YIELD_ROUNDS {
                yields += 1;
                std::thread::yield_now();
            } else {
                // Park phase: register, re-check (a poison between the
                // check above and parking would otherwise be a lost
                // wakeup), then sleep one bounded slice.
                self.parked.lock().push(std::thread::current());
                let recheck_ready = matches!(observe(), WaitPoll::Ready);
                if recheck_ready || self.is_poisoned() {
                    let me = std::thread::current().id();
                    self.parked.lock().retain(|t| t.id() != me);
                    if recheck_ready {
                        return Ok(());
                    }
                    continue;
                }
                std::thread::park_timeout(PARK_SLICE.min(deadline - now));
                let me = std::thread::current().id();
                self.parked.lock().retain(|t| t.id() != me);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn wait_on(
        wd: &Watchdog,
        c: &AtomicU64,
        target: u64,
        site: usize,
        pid: usize,
    ) -> Result<(), SyncError> {
        wd.guarded_wait(site, pid, SyncKind::Counter, target, || {
            let v = c.load(Ordering::Acquire);
            if v >= target {
                WaitPoll::Ready
            } else {
                WaitPoll::Pending(v)
            }
        })
    }

    #[test]
    fn satisfied_wait_returns_ok() {
        let wd = Watchdog::new(Duration::from_secs(5));
        let c = AtomicU64::new(3);
        assert_eq!(wait_on(&wd, &c, 3, 0, 0), Ok(()));
    }

    #[test]
    fn deadline_fires_with_attribution() {
        let wd = Watchdog::new(Duration::from_millis(30));
        let c = AtomicU64::new(1);
        let t0 = Instant::now();
        let err = wait_on(&wd, &c, 4, 7, 2).unwrap_err();
        assert!(t0.elapsed() < Duration::from_secs(5), "wait did not bound");
        assert_eq!(
            err,
            SyncError::DeadlineExceeded {
                site: 7,
                pid: 2,
                kind: SyncKind::Counter,
                expected: 4,
                observed: 1,
            }
        );
    }

    #[test]
    fn poison_wakes_parked_waiter_promptly() {
        let wd = Arc::new(Watchdog::new(Duration::from_secs(30)));
        let c = Arc::new(AtomicU64::new(0));
        let h = {
            let wd = Arc::clone(&wd);
            let c = Arc::clone(&c);
            std::thread::spawn(move || wait_on(&wd, &c, 1, 3, 1))
        };
        // Let the waiter escalate to parking, then poison.
        std::thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        wd.poison("P0 panicked: boom");
        let err = h.join().unwrap().unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "poison took {:?} to propagate",
            t0.elapsed()
        );
        match err {
            SyncError::Poisoned {
                site: 3,
                pid: 1,
                cause,
            } => {
                assert!(cause.contains("boom"), "{cause}");
            }
            other => panic!("expected Poisoned, got {other:?}"),
        }
    }

    #[test]
    fn first_poison_cause_wins() {
        let wd = Watchdog::new(Duration::from_secs(1));
        wd.poison("first");
        wd.poison("second");
        assert_eq!(wd.poison_cause().as_deref(), Some("first"));
    }

    #[test]
    fn spurious_wake_does_not_fail_the_wait() {
        let wd = Arc::new(Watchdog::new(Duration::from_secs(30)));
        let c = Arc::new(AtomicU64::new(0));
        let h = {
            let wd = Arc::clone(&wd);
            let c = Arc::clone(&c);
            std::thread::spawn(move || wait_on(&wd, &c, 1, 0, 1))
        };
        std::thread::sleep(Duration::from_millis(10));
        wd.spurious_wake();
        std::thread::sleep(Duration::from_millis(10));
        c.store(1, Ordering::Release);
        assert_eq!(h.join().unwrap(), Ok(()));
    }
}
