//! Observability for the barrier-elimination pipeline.
//!
//! Three pillars, all offline-friendly (no serde — [`json`] is a small
//! deterministic emitter/parser):
//!
//! * **[`explain`]** — renders the optimizer's per-sync-slot
//!   [`spmd_opt::Decision`] log as JSON and human-readable text: which
//!   of the paper's Section-4 elimination conditions fired at every
//!   phase boundary, loop bottom, and region end.
//! * **[`metrics`]** — per-sync-site, per-processor wait telemetry
//!   tables and JSON (from [`runtime::telemetry`]), attributing blocked
//!   time to individual sync points instead of run-wide totals.
//! * **[`trace`]** — a Chrome-trace (chrome://tracing / Perfetto)
//!   writer turning per-processor spans from the virtual interleaver or
//!   real threads into loadable timelines: barrier convoys are visible
//!   before optimization, neighbor-only waits after.
//!
//! The site ids used throughout are the canonical slot numbering of
//! [`spmd_opt::sync_sites`], so decisions, runtime telemetry, and
//! timeline spans all cross-reference the same sites.

pub mod degrade;
pub mod explain;
pub mod failure;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod recovery;
pub mod service;
pub mod trace;

pub use degrade::{degradation_json, render_degradation, DegradationReport, RoundReport};
pub use explain::{explain_json, producer_str, render_analysis_stats, render_decisions};
pub use failure::{failure_json, render_failure, FailureCause, FailureReport};
pub use json::{parse, Json};
pub use metrics::{metrics_json, render_site_table};
pub use profile::{
    analyze, observed_vs_predicted, profile_json, render_profile, render_saved_wait, OvpRow,
    ProfileMarks, ProfileReport, SiteProfile,
};
pub use recovery::{
    recovery_json, render_recovery, AttemptReport, RecoveryReport, SiteActionReport,
};
pub use service::{render_service_stats, service_stats_json, ServiceStats, ShardStats};
pub use trace::{Span, SpanCat, TraceBuilder};

use spmd_opt::{sync_sites, SpmdProgram};

/// Build runtime [`runtime::telemetry::SiteMeta`] records from a plan's
/// canonical site walk (the glue between the optimizer's site numbering
/// and the runtime's telemetry cells).
pub fn site_metas(prog: &ir::Program, plan: &SpmdProgram) -> Vec<runtime::telemetry::SiteMeta> {
    sync_sites(prog, plan)
        .into_iter()
        .map(|s| runtime::telemetry::SiteMeta {
            id: s.id,
            kind: s.kind.as_str().to_string(),
            label: s.label,
            op: spmd_opt::placed_str(&s.op).to_string(),
        })
        .collect()
}
