//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of proptest's API used by this workspace's
//! property tests: `Strategy` + `prop_map`, integer-range and tuple
//! strategies, `collection::vec`, `bool::weighted`, the `proptest!`
//! macro with `#![proptest_config]`, and `prop_assert!`/
//! `prop_assert_eq!`. Inputs are generated from a per-test deterministic
//! seed (derived from the test name) so failures are reproducible;
//! shrinking is not implemented — failing inputs are printed instead.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (only the case count is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The value type produced.
    type Value: std::fmt::Debug + Clone;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug + Clone,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug + Clone,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: std::fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    /// Strategy for `Vec`s of values from `element`, with length drawn
    /// from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    /// Output of [`weighted`].
    #[derive(Clone, Debug)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::Rng::gen_bool(rng, self.p)
        }
    }
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

/// Stable 64-bit seed from a test's name (FNV-1a), so each test draws an
/// independent, reproducible stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Run `cases` generated inputs through `body` (used by [`proptest!`]).
pub fn run_cases<V: std::fmt::Debug>(
    test_name: &str,
    cases: u32,
    generate: impl Fn(&mut TestRng) -> V,
    body: impl Fn(&V) + std::panic::RefUnwindSafe,
) where
    V: std::panic::RefUnwindSafe,
{
    let mut rng = TestRng::seed_from_u64(seed_for(test_name));
    for case in 0..cases {
        let input = generate(&mut rng);
        let r = std::panic::catch_unwind(|| body(&input));
        if let Err(e) = r {
            eprintln!("proptest case {case}/{cases} of `{test_name}` failed.\nInput: {input:#?}");
            std::panic::resume_unwind(e);
        }
    }
}

/// Assert inside a property test (panics with the failing input printed
/// by the runner).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests: each function's `arg in strategy` bindings are
/// generated `cases` times from a deterministic per-test seed.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    cfg.cases,
                    |rng| {
                        ( $( $crate::Strategy::generate(&($strat), rng), )* )
                    },
                    |__input| {
                        let ( $( $arg, )* ) = __input.clone();
                        $body
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $($arg in $strat),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeds_are_stable() {
        assert_eq!(super::seed_for("abc"), super::seed_for("abc"));
        assert_ne!(super::seed_for("abc"), super::seed_for("abd"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i64..=5, y in 0u8..4) {
            prop_assert!((-5..=5).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0i32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&e| (0..10).contains(&e)));
        }

        #[test]
        fn prop_map_applies(s in (0u8..3, 1i8..=2).prop_map(|(a, b)| (a as i64) + (b as i64))) {
            prop_assert!((1..=4).contains(&s));
        }
    }
}
