//! Structured reports for degraded executions.
//!
//! The degradation supervisor (in the `interp` crate — like
//! [`crate::recovery`], this module is plain data so `obs` stays below
//! `interp` in the crate DAG) completes a run under permanent
//! processor loss by shrinking the team and, in the worst case,
//! finishing serially. A [`DegradationReport`] records which rung of
//! the ladder completed the run (`"clean"`, `"recovered"`, `"shrunk"`,
//! or `"serial"`), how many processors were classified as lost, and
//! the full shrink timeline: one [`RoundReport`] per team width tried,
//! each embedding that round's complete [`RecoveryReport`].
//!
//! Rendering is deterministic for a fixed seed, like every other
//! report in this crate: planned backoffs, no wall-clock figures.

use crate::json::Json;
use crate::recovery::{recovery_json, render_recovery, RecoveryReport};

/// One team-width episode of the degradation ladder.
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Team width the round ran at.
    pub nprocs: usize,
    /// The processor classified as permanently lost by this round
    /// (`None` for the completing round, or when the round failed
    /// without a classifiable pid and fell through to serial).
    pub lost_pid: Option<usize>,
    /// The round's full recovery timeline.
    pub recovery: RecoveryReport,
}

/// The full degradation timeline of one supervised execution.
#[derive(Clone, Debug)]
pub struct DegradationReport {
    /// Program whose schedule was supervised.
    pub program: String,
    /// Team width of the first round.
    pub nprocs_initial: usize,
    /// Width the run completed at (1 for the serial fallback).
    pub nprocs_final: usize,
    /// Permanent processor losses classified along the way.
    pub procs_lost: usize,
    /// The rung that completed the run: `"clean"`, `"recovered"`,
    /// `"shrunk"`, or `"serial"`.
    pub rung: String,
    /// True when the serial tail finished the job.
    pub serial_fallback: bool,
    /// True when the run completed (always, by the availability
    /// guarantee — recorded so the report is self-describing).
    pub completed: bool,
    /// The armed per-wait deadline, in milliseconds.
    pub deadline_ms: f64,
    /// Every round, widest first.
    pub rounds: Vec<RoundReport>,
    /// Array cells in the shared entry checkpoint.
    pub checkpoint_cells: usize,
    /// Chaos seed, when a fault injector was active.
    pub chaos_seed: Option<u64>,
}

/// The degradation document (deterministic member order).
pub fn degradation_json(r: &DegradationReport) -> Json {
    let rounds: Vec<Json> = r
        .rounds
        .iter()
        .map(|rd| {
            let mut doc = Json::obj().set("nprocs", rd.nprocs);
            if let Some(pid) = rd.lost_pid {
                doc = doc.set("lost_pid", pid);
            }
            doc.set("recovery", recovery_json(&rd.recovery))
        })
        .collect();
    let mut doc = Json::obj()
        .set("program", r.program.as_str())
        .set("nprocs_initial", r.nprocs_initial)
        .set("nprocs_final", r.nprocs_final)
        .set("procs_lost", r.procs_lost)
        .set("rung", r.rung.as_str())
        .set("serial_fallback", r.serial_fallback)
        .set("completed", r.completed)
        .set("deadline_ms", r.deadline_ms)
        .set("rounds", Json::Arr(rounds))
        .set("checkpoint_cells", r.checkpoint_cells);
    if let Some(seed) = r.chaos_seed {
        doc = doc.set("chaos_seed", seed);
    }
    doc
}

/// Human-readable degradation timeline (what `beopt --run --degrade`
/// prints). Deterministic for a fixed seed.
pub fn render_degradation(r: &DegradationReport) -> String {
    let mut out = String::new();
    out.push_str("--- degradation report ---\n");
    out.push_str(&format!(
        "program : {} (P={} -> {})\n",
        r.program, r.nprocs_initial, r.nprocs_final
    ));
    out.push_str(&format!(
        "rung    : {}{}\n",
        r.rung,
        if r.serial_fallback {
            " (sequential tail, no sync primitives)"
        } else {
            ""
        }
    ));
    out.push_str(&format!("lost    : {} processor(s)\n", r.procs_lost));
    if let Some(seed) = r.chaos_seed {
        out.push_str(&format!("chaos   : seed {seed}\n"));
    }
    for rd in &r.rounds {
        match rd.lost_pid {
            Some(pid) => out.push_str(&format!(
                "round P={}: P{} classified as permanent loss — shrinking\n",
                rd.nprocs, pid
            )),
            None if rd.recovery.ok => out.push_str(&format!("round P={}: completed\n", rd.nprocs)),
            None => out.push_str(&format!(
                "round P={}: failed without a classifiable pid — serial fallback\n",
                rd.nprocs
            )),
        }
        for line in render_recovery(&rd.recovery).lines() {
            out.push_str(&format!("  {line}\n"));
        }
    }
    if r.serial_fallback {
        out.push_str("serial tail: rolled back to entry checkpoint, completed sequentially\n");
    }
    out.push_str(&format!(
        "availability: {}\n",
        if r.completed {
            "run completed with oracle-exact memory"
        } else {
            "RUN DID NOT COMPLETE (guarantee violated)"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{AttemptReport, SiteActionReport};

    fn round(nprocs: usize, ok: bool, lost: Option<usize>) -> RoundReport {
        RoundReport {
            nprocs,
            lost_pid: lost,
            recovery: RecoveryReport {
                program: "jacobi".to_string(),
                nprocs,
                deadline_ms: 120.0,
                max_attempts: 5,
                attempts_used: if ok { 1 } else { 2 },
                recovered: false,
                ok,
                attempts: if ok {
                    Vec::new()
                } else {
                    vec![AttemptReport {
                        attempt: 1,
                        headline: "deadline exceeded at s0 on P1".to_string(),
                        actions: vec![SiteActionReport {
                            site: 0,
                            label: "after DOALL i".to_string(),
                            action: "demote".to_string(),
                        }],
                        backoff_ms: 1,
                        barrier_episodes: 1,
                        counter_increments: 0,
                        neighbor_posts: 0,
                        spin_rounds: 10,
                        yield_rounds: 0,
                        parks: 1,
                        suspect_pid: Some(3),
                    }]
                },
                demoted: Vec::new(),
                quarantined: Vec::new(),
                fault_counts: Vec::new(),
                pid_fault_counts: if ok { Vec::new() } else { vec![(3, 2)] },
                restored: Vec::new(),
                lost_pid: lost,
                checkpoint_cells: 46,
                chaos_seed: Some(7),
                residual: None,
            },
        }
    }

    fn sample() -> DegradationReport {
        DegradationReport {
            program: "jacobi".to_string(),
            nprocs_initial: 4,
            nprocs_final: 3,
            procs_lost: 1,
            rung: "shrunk".to_string(),
            serial_fallback: false,
            completed: true,
            deadline_ms: 120.0,
            rounds: vec![round(4, false, Some(3)), round(3, true, None)],
            checkpoint_cells: 46,
            chaos_seed: Some(7),
        }
    }

    #[test]
    fn json_round_trips_and_records_the_rung() {
        let doc = degradation_json(&sample());
        assert_eq!(doc.get("rung").unwrap().as_str(), Some("shrunk"));
        assert_eq!(doc.get("nprocs_initial").unwrap().as_u64(), Some(4));
        assert_eq!(doc.get("nprocs_final").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("procs_lost").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("completed").and_then(Json::as_bool), Some(true));
        let rounds = doc.get("rounds").unwrap().as_arr().unwrap();
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].get("lost_pid").unwrap().as_u64(), Some(3));
        assert!(rounds[1].get("lost_pid").is_none());
        assert!(rounds[0].get("recovery").unwrap().get("attempts").is_some());
        let txt = doc.to_string_pretty();
        assert_eq!(crate::json::parse(&txt).unwrap(), doc);
    }

    #[test]
    fn rendering_tells_the_shrink_story() {
        let txt = render_degradation(&sample());
        let again = render_degradation(&sample());
        assert_eq!(txt, again, "deterministic");
        assert!(txt.contains("rung    : shrunk"));
        assert!(txt.contains("P3 classified as permanent loss"));
        assert!(txt.contains("round P=3: completed"));
        assert!(txt.contains("run completed with oracle-exact memory"));
        assert!(!txt.to_lowercase().contains("elapsed"), "no wall-clock");
    }

    #[test]
    fn serial_fallback_is_called_out() {
        let mut r = sample();
        r.rung = "serial".to_string();
        r.serial_fallback = true;
        r.nprocs_final = 1;
        let txt = render_degradation(&r);
        assert!(txt.contains("sequential tail"));
        assert!(txt.contains("serial tail: rolled back to entry checkpoint"));
        let doc = degradation_json(&r);
        assert_eq!(
            doc.get("serial_fallback").and_then(Json::as_bool),
            Some(true)
        );
    }
}
