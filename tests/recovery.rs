//! End-to-end self-healing tests: the recovery supervisor on the
//! shipped `.be` kernels and on random generated programs, plus the
//! `beopt --run --recover` exit-code contract.
//!
//! The unit tests in `runtime::recovery` and `interp::recover` cover
//! the ladder and the loop; these tests cover the tool-level promise —
//! a *persistent* dropped sync post on any kernel is absorbed by
//! checkpoint rollback + demotion + retry, the recovered memory is
//! exactly what the sequential oracle computes, and the CLI reports
//! success (exit 0) for a recovered run but failure (nonzero) when
//! recovery is off or the budget is exhausted.

use barrier_elim::analysis::Bindings;
use barrier_elim::frontend;
use barrier_elim::interp::{
    run_parallel_recovering, run_sequential, BarrierKind, Mem, ObserveOptions,
};
use barrier_elim::ir::SymId;
use barrier_elim::obs::render_recovery;
use barrier_elim::oracle::{
    self, droppable_posts, recovery_check, recovery_check_with, ChaosConfig, ChaosInjector,
    DropSpec,
};
use barrier_elim::runtime::{RetryPolicy, SpinPolicy, Team};
use barrier_elim::spmd_opt::{fork_join, optimize};
use std::sync::Arc;
use std::time::Duration;

const KERNELS: &[(&str, &[(&str, i64)])] = &[
    ("broadcast.be", &[("n", 12)]),
    ("jacobi.be", &[("n", 48), ("tmax", 4)]),
    ("pipeline.be", &[("n", 16), ("tmax", 3)]),
    ("private_gather.be", &[("n", 10)]),
    ("shallow.be", &[("n", 12), ("tmax", 2)]),
];

fn load(
    kernel: &str,
    sets: &[(&str, i64)],
    nprocs: i64,
) -> (Arc<barrier_elim::ir::Program>, Arc<Bindings>) {
    let src = std::fs::read_to_string(format!("kernels/{kernel}")).unwrap();
    let prog = frontend::parse(&src).unwrap_or_else(|e| panic!("{kernel}: {e}"));
    let mut bind = Bindings::new(nprocs);
    for (name, v) in sets {
        let pos = prog
            .syms
            .iter()
            .position(|s| &s.name == name)
            .unwrap_or_else(|| panic!("sym {name} missing"));
        bind.bind(SymId(pos as u32), *v);
    }
    (Arc::new(prog), Arc::new(bind))
}

/// Short backoffs keep the multi-retry campaigns fast; the budget is
/// the shipping default.
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        ..RetryPolicy::default()
    }
}

/// The acceptance property of the tentpole: on every shipped kernel,
/// under both the fork-join and the optimized plan, every precisely
/// attributable persistent drop is absorbed by the supervisor within
/// its budget, took at least one retry (the tooth actually bit), and
/// left memory matching the sequential oracle.
#[test]
fn every_kernel_absorbs_every_persistent_drop_under_both_plans() {
    let team = Team::new(4);
    for (kernel, sets) in KERNELS {
        let (prog, bind) = load(kernel, sets, 4);
        for (label, plan) in [
            ("fork-join", fork_join(&prog, &bind)),
            ("optimized", optimize(&prog, &bind)),
        ] {
            let r = recovery_check(
                &prog,
                &bind,
                &plan,
                &team,
                0xC0FFEE,
                Duration::from_millis(150),
                1e-9,
                &fast_policy(),
            );
            assert!(
                r.benign_ok,
                "{kernel} {label}: benign recovering run failed (diff {:e})",
                r.benign_diff
            );
            assert!(!r.teeth.is_empty(), "{kernel} {label}: no droppable posts");
            for t in &r.teeth {
                assert!(
                    t.converged,
                    "{kernel} {label}: {} drop at s{} exhausted the budget:\n{}",
                    t.kind,
                    t.spec.site,
                    render_recovery(&t.report)
                );
                assert!(
                    t.recovered,
                    "{kernel} {label}: {} drop at s{} was absorbed silently — the tooth never bit",
                    t.kind, t.spec.site
                );
                assert!(
                    t.diff <= 1e-9,
                    "{kernel} {label}: recovered memory diverges by {:e}",
                    t.diff
                );
                // The timeline is renderable and names the machinery.
                let text = render_recovery(&t.report);
                assert!(text.contains("--- recovery report ---"), "{text}");
                assert!(text.contains("rollback to checkpoint"), "{text}");
                assert!(text.contains("demote s"), "{text}");
                assert!(
                    text.contains(&format!(
                        "recovered after {} failed attempt(s)",
                        t.attempts_used - 1
                    )),
                    "{text}"
                );
            }
        }
    }
}

/// Chaos regression sweep over the tuned fast-path primitives: the full
/// drop matrix must still be absorbed by the demote → quarantine →
/// isolate ladder when the fabric runs k-ary tree barriers (every
/// supported fan-in) or the eager-park spin policy (every guarded wait
/// escalates to parking, the configuration most exposed to lost-wakeup
/// bugs in the watchdog's park registration).
#[test]
fn drop_matrix_is_absorbed_across_radices_and_spin_policies() {
    let team = Team::new(4);
    let variants: Vec<(String, ObserveOptions)> = [2usize, 4, 8]
        .iter()
        .map(|&radix| {
            (
                format!("tree radix {radix}"),
                ObserveOptions {
                    barrier: BarrierKind::Tree,
                    tree_radix: Some(radix),
                    ..ObserveOptions::default()
                },
            )
        })
        .chain(std::iter::once((
            "central + eager park".to_string(),
            ObserveOptions {
                spin: Some(SpinPolicy::eager_park()),
                ..ObserveOptions::default()
            },
        )))
        .collect();
    for (kernel, sets) in [("jacobi.be", KERNELS[1].1), ("pipeline.be", KERNELS[2].1)] {
        let (prog, bind) = load(kernel, sets, 4);
        let plan = optimize(&prog, &bind);
        for (label, base) in &variants {
            let r = recovery_check_with(
                &prog,
                &bind,
                &plan,
                &team,
                0xC0FFEE,
                Duration::from_millis(150),
                1e-9,
                &fast_policy(),
                base,
            );
            assert!(
                r.benign_ok,
                "{kernel} [{label}]: benign recovering run failed (diff {:e})",
                r.benign_diff
            );
            assert!(
                !r.teeth.is_empty(),
                "{kernel} [{label}]: no droppable posts"
            );
            for t in &r.teeth {
                assert!(
                    t.converged && t.recovered && t.diff <= 1e-9,
                    "{kernel} [{label}]: {} drop at s{} not absorbed \
                     (converged {}, recovered {}, diff {:e}):\n{}",
                    t.kind,
                    t.spec.site,
                    t.converged,
                    t.recovered,
                    t.diff,
                    render_recovery(&t.report)
                );
            }
        }
    }
}

/// The planned backoff timeline in a report is the policy's exact
/// exponential — never wall-clock noise.
#[test]
fn reported_backoffs_follow_the_policy_exponential() {
    let team = Team::new(4);
    let (prog, bind) = load("jacobi.be", &[("n", 48), ("tmax", 4)], 4);
    let plan = optimize(&prog, &bind);
    let policy = fast_policy();
    let r = recovery_check(
        &prog,
        &bind,
        &plan,
        &team,
        7,
        Duration::from_millis(150),
        1e-9,
        &policy,
    );
    for t in &r.teeth {
        for (k, a) in t.report.attempts.iter().enumerate() {
            assert_eq!(
                a.backoff_ms,
                policy.backoff_before(k as u32 + 1).as_millis() as u64,
                "attempt {} of {} tooth",
                a.attempt,
                t.kind
            );
        }
    }
}

mod cli {
    use super::*;
    use std::process::Command;

    /// A drop spec the current optimized jacobi plan is guaranteed to
    /// wedge on: the last precisely-attributable post (a barrier
    /// arrival — counter teeth can sit earlier in the schedule).
    fn jacobi_drop() -> (Vec<String>, DropSpec) {
        let (prog, bind) = load("jacobi.be", &[("n", 48), ("tmax", 4)], 4);
        let plan = optimize(&prog, &bind);
        let cand = droppable_posts(&prog, &bind, &plan)
            .pop()
            .expect("jacobi has droppable posts");
        let base = vec![
            "kernels/jacobi.be".to_string(),
            "--nprocs".into(),
            "4".into(),
            "--set".into(),
            "n=48".into(),
            "--set".into(),
            "tmax=4".into(),
            "--run".into(),
            "--chaos-drop".into(),
            format!(
                "{}:{}:{}",
                cand.spec.site, cand.spec.pid, cand.spec.from_visit
            ),
        ];
        (base, cand.spec)
    }

    fn beopt(args: &[String]) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_beopt"))
            .args(args)
            .output()
            .expect("spawn beopt")
    }

    /// Satellite: a recovered run is a *successful* run — exit 0, with
    /// the recovery report on stdout.
    #[test]
    fn recover_flag_turns_a_persistent_drop_into_exit_zero() {
        let (mut args, spec) = jacobi_drop();
        args.push("--recover".into());
        let out = beopt(&args);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "beopt --recover failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout.contains("--- recovery report ---"), "{stdout}");
        assert!(
            stdout.contains(&format!("demote s{}", spec.site)),
            "report does not demote the dropped site s{}:\n{stdout}",
            spec.site
        );
        assert!(stdout.contains("recovered after"), "{stdout}");
    }

    /// Satellite: without `--recover` the same fault is a hard failure
    /// — nonzero exit and a failure report.
    #[test]
    fn without_recover_the_same_drop_exits_nonzero() {
        let (mut args, _) = jacobi_drop();
        args.push("--deadline".into());
        args.push("150".into());
        let out = beopt(&args);
        assert!(
            !out.status.success(),
            "beopt without --recover should fail under a persistent drop:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("EXECUTION FAILED"), "{stderr}");
    }

    /// An exhausted budget is still a failure: `--max-attempts 1`
    /// forbids retries, so the drop surfaces as a nonzero exit even
    /// under `--recover`.
    #[test]
    fn exhausted_recovery_budget_exits_nonzero() {
        let (mut args, _) = jacobi_drop();
        args.push("--recover".into());
        args.push("--max-attempts".into());
        args.push("1".into());
        let out = beopt(&args);
        assert!(
            !out.status.success(),
            "budget of 1 cannot absorb a persistent drop:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("recovery budget exhausted"), "{stderr}");
    }
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    /// One supervised run of a generated program under a persistent
    /// drop; returns (converged, max_abs_diff vs sequential oracle).
    fn recover_generated(gen_seed: u64, chaos_seed: u64) -> Option<(bool, f64)> {
        let g = oracle::generate(gen_seed);
        let prog = Arc::new(g.prog.clone());
        let bind = Arc::new(g.bindings(4));
        let plan = optimize(&prog, &bind);
        let cand = droppable_posts(&prog, &bind, &plan).pop()?;
        let oracle_mem = Mem::new(&prog, &bind);
        run_sequential(&prog, &bind, &oracle_mem);
        let mem = Arc::new(Mem::new(&prog, &bind));
        let team = Team::new(4);
        let r = run_parallel_recovering(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &ObserveOptions {
                deadline: Some(Duration::from_millis(120)),
                chaos: Some(Arc::new(ChaosInjector::with_config(
                    chaos_seed,
                    ChaosConfig {
                        drop: Some(cand.spec),
                        ..ChaosConfig::default()
                    },
                ))),
                ..ObserveOptions::default()
            },
            &fast_policy(),
        );
        Some((r.ok(), mem.max_abs_diff(&oracle_mem)))
    }

    proptest! {
        /// Satellite: the backoff schedule saturates instead of
        /// overflowing — any retry index up to `u32::MAX` yields a
        /// well-defined pause that never exceeds the cap and never
        /// shrinks as retries deepen. The exponent clamps at 2^16, so
        /// far past the clamp the pause is exactly
        /// `min(base * 2^16, cap)`.
        #[test]
        fn backoff_saturates_at_the_cap_near_u32_max(
            base_ms in 0u64..5_000,
            cap_ms in 0u64..5_000,
            lo in 1u32..64,
            hi in (u32::MAX - 64)..u32::MAX,
        ) {
            let p = RetryPolicy {
                backoff_base: Duration::from_millis(base_ms),
                backoff_cap: Duration::from_millis(cap_ms),
                ..RetryPolicy::default()
            };
            let cap = Duration::from_millis(cap_ms);
            prop_assert_eq!(p.backoff_before(0), Duration::ZERO);
            for r in [lo, hi, u32::MAX - 1, u32::MAX] {
                prop_assert!(p.backoff_before(r) <= cap);
                // Monotone: a deeper retry never sleeps less.
                prop_assert!(p.backoff_before(r) <= p.backoff_before(r.saturating_add(1)));
            }
            prop_assert!(p.backoff_before(lo) <= p.backoff_before(hi));
            let clamped = Duration::from_millis(base_ms)
                .saturating_mul(1 << 16)
                .min(cap);
            prop_assert_eq!(p.backoff_before(u32::MAX), clamped);
            prop_assert_eq!(p.backoff_before(hi), clamped);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Satellite: for any generated program and any absorbable
        /// chaos seed, the recovered memory is *bitwise* equal to the
        /// fork-join-free sequential reference — recovery never trades
        /// correctness for progress.
        #[test]
        fn recovered_memory_is_bitwise_equal_to_the_reference(
            gen_seed in 0u64..24,
            chaos_seed in 0u64..8,
        ) {
            if let Some((converged, diff)) = recover_generated(gen_seed, chaos_seed) {
                prop_assert!(converged, "seed {gen_seed}/{chaos_seed}: budget exhausted");
                prop_assert!(
                    diff == 0.0,
                    "seed {gen_seed}/{chaos_seed}: recovered memory off by {diff:e}"
                );
            }
        }
    }
}
