//! Service-plane observability: per-shard and whole-service counter
//! reports for the `beoptd` compile service.
//!
//! The structs here are plain data (the `served` crate fills them from
//! its atomics) so the JSON shape and the human rendering live next to
//! the other report formats. Counter values are interleaving-dependent
//! diagnostics — they belong in `stats` documents and never inside the
//! deterministic explain payload.

use crate::json::Json;

/// Point-in-time counters for one shard.
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Requests answered with a plan.
    pub served: u64,
    /// Requests answered with `bad_request`.
    pub failed: u64,
    /// Requests refused at admission (queue full).
    pub shed: u64,
    /// Requests answered with `deadline_exceeded`.
    pub deadline_miss: u64,
    /// Worker panics (each is fail-stop for the shard).
    pub panics: u64,
    /// Supervisor restarts of this shard's worker.
    pub restarts: u64,
    /// Requests served with feasibility-memo hits.
    pub warm_hits: u64,
    /// Requests currently queued.
    pub backlog: u64,
    /// Admission queue capacity.
    pub queue_cap: u64,
    /// Snapshots successfully persisted.
    pub snapshots_written: u64,
    /// Memo entries rejoined from snapshots across restarts.
    pub entries_loaded: u64,
    /// Worker starts with an empty memo.
    pub cold_starts: u64,
    /// Snapshot loads rejected by validation.
    pub snapshot_rejects: u64,
    /// Why the last load cold-started, if it did.
    pub last_reject: Option<String>,
    /// Live feasibility-memo entries.
    pub memo_entries: u64,
    /// Second-chance evictions performed by the memo.
    pub memo_evictions: u64,
}

/// Whole-service counters plus every shard's.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Shard count.
    pub nshards: usize,
    /// Optimize requests admitted by the listener.
    pub accepted: u64,
    /// Connections dropped by injected transport faults.
    pub dropped_connections: u64,
    /// Per-shard counters.
    pub shards: Vec<ShardStats>,
}

impl ServiceStats {
    /// Sum of a per-shard counter.
    fn total(&self, f: impl Fn(&ShardStats) -> u64) -> u64 {
        self.shards.iter().map(f).sum()
    }
}

fn shard_json(s: &ShardStats) -> Json {
    let mut j = Json::obj()
        .set("shard", s.shard)
        .set("served", s.served)
        .set("failed", s.failed)
        .set("shed", s.shed)
        .set("deadline_miss", s.deadline_miss)
        .set("panics", s.panics)
        .set("restarts", s.restarts)
        .set("warm_hits", s.warm_hits)
        .set("backlog", s.backlog)
        .set("queue_cap", s.queue_cap)
        .set("snapshots_written", s.snapshots_written)
        .set("entries_loaded", s.entries_loaded)
        .set("cold_starts", s.cold_starts)
        .set("snapshot_rejects", s.snapshot_rejects)
        .set("memo_entries", s.memo_entries)
        .set("memo_evictions", s.memo_evictions);
    if let Some(r) = &s.last_reject {
        j = j.set("last_reject", r.as_str());
    }
    j
}

/// The `stats` reply document: service totals and per-shard detail.
pub fn service_stats_json(st: &ServiceStats) -> Json {
    Json::obj()
        .set("nshards", st.nshards)
        .set("accepted", st.accepted)
        .set("dropped_connections", st.dropped_connections)
        .set(
            "totals",
            Json::obj()
                .set("served", st.total(|s| s.served))
                .set("failed", st.total(|s| s.failed))
                .set("shed", st.total(|s| s.shed))
                .set("deadline_miss", st.total(|s| s.deadline_miss))
                .set("panics", st.total(|s| s.panics))
                .set("restarts", st.total(|s| s.restarts))
                .set("warm_hits", st.total(|s| s.warm_hits))
                .set("snapshots_written", st.total(|s| s.snapshots_written))
                .set("entries_loaded", st.total(|s| s.entries_loaded))
                .set("cold_starts", st.total(|s| s.cold_starts))
                .set("snapshot_rejects", st.total(|s| s.snapshot_rejects)),
        )
        .set(
            "shards",
            Json::Arr(st.shards.iter().map(shard_json).collect()),
        )
}

/// Human-readable service table (what `beoptd` prints on shutdown).
pub fn render_service_stats(st: &ServiceStats) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "--- beoptd service ({} shard(s), {} admitted, {} conn drop(s)) ---\n",
        st.nshards, st.accepted, st.dropped_connections
    ));
    out.push_str(
        "shard  served  failed  shed  miss  panic  restart  warm  memo  evict  snap  loaded\n",
    );
    for s in &st.shards {
        out.push_str(&format!(
            "{:>5}  {:>6}  {:>6}  {:>4}  {:>4}  {:>5}  {:>7}  {:>4}  {:>4}  {:>5}  {:>4}  {:>6}\n",
            s.shard,
            s.served,
            s.failed,
            s.shed,
            s.deadline_miss,
            s.panics,
            s.restarts,
            s.warm_hits,
            s.memo_entries,
            s.memo_evictions,
            s.snapshots_written,
            s.entries_loaded,
        ));
        if let Some(r) = &s.last_reject {
            out.push_str(&format!("       last cold-start reason: {r}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServiceStats {
        ServiceStats {
            nshards: 2,
            accepted: 10,
            dropped_connections: 1,
            shards: vec![
                ShardStats {
                    shard: 0,
                    served: 4,
                    warm_hits: 2,
                    snapshots_written: 1,
                    ..Default::default()
                },
                ShardStats {
                    shard: 1,
                    served: 5,
                    restarts: 1,
                    panics: 1,
                    snapshot_rejects: 1,
                    last_reject: Some("checksum mismatch".to_string()),
                    ..Default::default()
                },
            ],
        }
    }

    #[test]
    fn totals_sum_across_shards() {
        let doc = service_stats_json(&sample());
        let totals = doc.get("totals").unwrap();
        assert_eq!(totals.get("served").unwrap().as_u64(), Some(9));
        assert_eq!(totals.get("restarts").unwrap().as_u64(), Some(1));
        assert_eq!(totals.get("snapshot_rejects").unwrap().as_u64(), Some(1));
        let shards = doc.get("shards").unwrap().as_arr().unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(
            shards[1].get("last_reject").unwrap().as_str(),
            Some("checksum mismatch")
        );
        // Healthy shard omits the reject reason entirely.
        assert!(shards[0].get("last_reject").is_none());
    }

    #[test]
    fn rendering_names_the_cold_start_reason() {
        let text = render_service_stats(&sample());
        assert!(text.contains("2 shard(s)"), "{text}");
        assert!(text.contains("checksum mismatch"), "{text}");
    }
}
