//! Compile-service latency and load-shedding gate: `BENCH_8.json`.
//!
//! Drives an in-process `beoptd` service (same code path as the
//! daemon: TCP, shard pool, snapshots off) over the five shipped `.be`
//! kernels and measures:
//!
//! * **warm latency** — per-request round-trip p50/p99 at 1, 4, and 16
//!   concurrent clients, after one cold warm-up pass per kernel, plus
//!   the fraction of replies served from a warm FME memo;
//! * **shed rate at 2× overload** — a burst of `2 × queue_cap`
//!   simultaneous single-attempt requests against one deliberately
//!   slowed shard: the service must answer *every* request structurally
//!   (a plan or an `overloaded` + retry-after), shedding the overflow
//!   instead of queueing it unboundedly.
//!
//! The regression gate ties the service to the PR-5 analysis-cache
//! numbers: warm p99 at one client must stay within [`GATE_FACTOR`]×
//! the per-kernel warm-recompile average recorded in `BENCH_5.json`
//! (the factor absorbs the TCP transport, JSON codec, and host
//! variance on small machines). If `BENCH_5.json` is absent the gate
//! is skipped with a logged reason.
//!
//! Usage: `bench8 [--quick] [--out PATH] [--bench5 PATH] [--baseline PATH]`
//!   --quick     fewer requests and no 16-client column (CI smoke mode)
//!   --out       output path (default BENCH_8.json; `-` for stdout)
//!   --bench5    warm-recompile reference (default BENCH_5.json)
//!   --baseline  prior BENCH_8.json; refused unless its schema matches

use obs::Json;
use served::{
    OptimizeRequest, PlanKind, Service, ServiceChaos, ServiceClient, ServiceConfig, ServiceFault,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Warm service p99 (1 client) may cost at most this many times the
/// BENCH_5 per-kernel warm-recompile average. Generous: it gates the
/// order of magnitude (a cold-path or lock regression), not the
/// transport's microseconds.
const GATE_FACTOR: f64 = 50.0;

const KERNELS: &[(&str, &[(&str, i64)])] = &[
    ("broadcast.be", &[("n", 12)]),
    ("jacobi.be", &[("n", 48), ("tmax", 4)]),
    ("pipeline.be", &[("n", 16), ("tmax", 3)]),
    ("private_gather.be", &[("n", 10)]),
    ("shallow.be", &[("n", 12), ("tmax", 2)]),
];

fn load_kernels() -> Vec<(String, String, Vec<(String, i64)>)> {
    KERNELS
        .iter()
        .map(|(name, sets)| {
            let src = std::fs::read_to_string(format!("kernels/{name}")).unwrap_or_else(|e| {
                panic!("cannot read kernels/{name}: {e} (run from the repo root)")
            });
            (
                name.to_string(),
                src,
                sets.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            )
        })
        .collect()
}

fn request(id: u64, kernel: &(String, String, Vec<(String, i64)>)) -> OptimizeRequest {
    OptimizeRequest {
        id,
        program: kernel.1.clone(),
        nprocs: 4,
        binds: kernel.2.clone(),
        plan: PlanKind::Optimized,
        deadline_ms: None,
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// One warm measurement: `clients` threads, each making `passes` full
/// passes over the kernel set. Returns (latencies µs, warm replies,
/// total replies).
fn measure_warm(
    addr: &str,
    kernels: &[(String, String, Vec<(String, i64)>)],
    clients: usize,
    passes: usize,
) -> (Vec<f64>, u64, u64) {
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let kernels = kernels.to_vec();
            std::thread::spawn(move || {
                let client = ServiceClient::new(addr);
                let mut lat = Vec::new();
                let mut warm = 0u64;
                let mut total = 0u64;
                for pass in 0..passes {
                    for (k, kernel) in kernels.iter().enumerate() {
                        let id = ((c * passes + pass) * kernels.len() + k) as u64;
                        let t0 = Instant::now();
                        let reply = client
                            .optimize(&request(id, kernel))
                            .unwrap_or_else(|e| panic!("{}: {e}", kernel.0));
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        total += 1;
                        if reply.warm_hint {
                            warm += 1;
                        }
                    }
                }
                (lat, warm, total)
            })
        })
        .collect();
    let mut lat = Vec::new();
    let mut warm = 0;
    let mut total = 0;
    for h in handles {
        let (l, w, t) = h.join().expect("warm client");
        lat.extend(l);
        warm += w;
        total += t;
    }
    (lat, warm, total)
}

/// Slows every request so a small queue saturates under a burst.
struct SlowCompile(Duration);

impl ServiceChaos for SlowCompile {
    fn at_request(&self, _shard: usize, _seq: u64) -> Option<ServiceFault> {
        Some(ServiceFault::Delay(self.0))
    }
}

/// The 2× overload burst: offered = 2 × queue_cap simultaneous
/// single-attempt requests against one slowed shard. Returns
/// (offered, served, shed) — every request must be one or the other.
fn measure_overload(
    kernels: &[(String, String, Vec<(String, i64)>)],
    queue_cap: usize,
) -> (u64, u64, u64) {
    let service = Service::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        nshards: 1,
        queue_cap,
        snapshot_dir: None,
        chaos: Some(Arc::new(SlowCompile(Duration::from_millis(40)))),
        ..Default::default()
    })
    .expect("start overload service");
    let addr = service.addr.to_string();
    let offered = 2 * queue_cap as u64;
    let handles: Vec<_> = (0..offered)
        .map(|i| {
            let addr = addr.clone();
            let kernel = kernels[i as usize % kernels.len()].clone();
            std::thread::spawn(move || {
                let mut client = ServiceClient::new(addr);
                client.policy.max_attempts = 1; // no retries: expose the shed
                match client.optimize(&request(i, &kernel)) {
                    Ok(_) => (1u64, 0u64),
                    Err(served::ClientError::Exhausted { last: Some(e), .. })
                        if e.code == served::ErrorCode::Overloaded =>
                    {
                        assert!(e.retry_after_ms.is_some(), "shed must carry a hint");
                        (0, 1)
                    }
                    Err(other) => panic!("unstructured overload outcome: {other}"),
                }
            })
        })
        .collect();
    let mut served_n = 0;
    let mut shed = 0;
    for h in handles {
        let (s, d) = h.join().expect("overload client");
        served_n += s;
        shed += d;
    }
    service.stop();
    service.wait();
    (offered, served_n, shed)
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = "BENCH_8.json".to_string();
    let mut bench5_path = "BENCH_5.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = it.next().expect("--out needs a path"),
            "--bench5" => bench5_path = it.next().expect("--bench5 needs a path"),
            "--baseline" => baseline_path = Some(it.next().expect("--baseline needs a path")),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: bench8 [--quick] [--out PATH] [--bench5 PATH] [--baseline PATH]");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(p) = &baseline_path {
        match spmd_bench::load_baseline(p, "service-latency") {
            Ok(_) => println!("baseline {p}: schema ok"),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let kernels = load_kernels();
    let (client_levels, passes): (&[usize], usize) = if quick {
        (&[1, 4], 2)
    } else {
        (&[1, 4, 16], 4)
    };

    let service = Service::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        nshards: 2,
        queue_cap: 128,
        snapshot_dir: None,
        ..Default::default()
    })
    .expect("start warm service");
    let addr = service.addr.to_string();

    // Cold pass: route every kernel to its shard once so the memo is
    // populated before any timed request.
    let warmup = ServiceClient::new(addr.clone());
    for (i, k) in kernels.iter().enumerate() {
        warmup
            .optimize(&request(i as u64, k))
            .unwrap_or_else(|e| panic!("warm-up {}: {e}", k.0));
    }

    let mut warm_rows: Vec<Json> = Vec::new();
    let mut p99_one_client = 0.0f64;
    for &clients in client_levels {
        let (mut lat, warm, total) = measure_warm(&addr, &kernels, clients, passes);
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = percentile(&lat, 0.50);
        let p99 = percentile(&lat, 0.99);
        let warm_rate = warm as f64 / total.max(1) as f64;
        if clients == 1 {
            p99_one_client = p99;
        }
        println!(
            "warm @ {clients:>2} client(s): {total:>3} requests, p50 {p50:>9.1} us, \
             p99 {p99:>9.1} us, warm rate {:.0}%",
            warm_rate * 100.0
        );
        warm_rows.push(
            Json::obj()
                .set("clients", clients)
                .set("requests", total)
                .set("p50_us", p50)
                .set("p99_us", p99)
                .set("warm_rate", warm_rate),
        );
    }
    service.stop();
    service.wait();

    let queue_cap = if quick { 3 } else { 6 };
    let (offered, served_n, shed) = measure_overload(&kernels, queue_cap);
    let shed_rate = shed as f64 / offered.max(1) as f64;
    println!(
        "overload 2x: offered {offered}, served {served_n}, shed {shed} \
         (shed rate {:.0}%)",
        shed_rate * 100.0
    );
    let overload_ok = shed > 0 && served_n > 0 && served_n + shed == offered;
    if !overload_ok {
        println!(
            "overload FAILED: every request must be served or structurally shed, \
             with both outcomes present at 2x"
        );
    }

    // The warm-latency gate against the PR-5 recompile numbers.
    let (gate_doc, gate_ok) =
        match spmd_bench::load_baseline(&bench5_path, "analysis-cache-regression") {
            Ok(b5) => {
                let warm_total_us = b5
                    .get("warm_recompile")
                    .and_then(|w| w.get("warm_us"))
                    .and_then(Json::as_num)
                    .unwrap_or(0.0);
                let nkernels = b5
                    .get("kernels")
                    .and_then(Json::as_arr)
                    .map(|k| k.len())
                    .unwrap_or(1)
                    .max(1);
                let per_kernel_us = warm_total_us / nkernels as f64;
                let bound_us = GATE_FACTOR * per_kernel_us;
                let ok = per_kernel_us > 0.0 && p99_one_client <= bound_us;
                println!(
                    "gate: warm p99 @ 1 client {p99_one_client:.1} us vs {GATE_FACTOR}x \
                 BENCH_5 warm-recompile avg {per_kernel_us:.1} us = {bound_us:.1} us -> {}",
                    if ok { "OK" } else { "FAILED" }
                );
                (
                    Json::obj()
                        .set("bench5_warm_avg_us", per_kernel_us)
                        .set("factor", GATE_FACTOR)
                        .set("warm_p99_us", p99_one_client)
                        .set("ok", ok),
                    ok,
                )
            }
            Err(e) => {
                println!("gate skipped: {e}");
                (Json::obj().set("skipped", e.as_str()).set("ok", true), true)
            }
        };

    let doc = spmd_bench::stamp_schema(
        Json::obj()
            .set("bench", "service-latency")
            .set("mode", if quick { "quick" } else { "full" })
            .set("nshards", 2u64)
            .set(
                "kernels",
                Json::Arr(
                    kernels
                        .iter()
                        .map(|(n, _, _)| Json::from(n.as_str()))
                        .collect(),
                ),
            )
            .set("warm", Json::Arr(warm_rows))
            .set(
                "overload",
                Json::obj()
                    .set("offered", offered)
                    .set("queue_cap", queue_cap)
                    .set("served", served_n)
                    .set("shed", shed)
                    .set("shed_rate", shed_rate)
                    .set("ok", overload_ok),
            )
            .set("gate", gate_doc),
    );
    let rendered = doc.to_string_pretty();
    if out_path == "-" {
        println!("{rendered}");
    } else if let Err(e) = std::fs::write(&out_path, rendered) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    } else {
        println!("wrote {out_path}");
    }
    if gate_ok && overload_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
