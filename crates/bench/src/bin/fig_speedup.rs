//! Figure: parallel speedup, fork-join versus optimized, on real
//! threads, for representative programs. Elapsed time excludes thread
//! creation (the team is persistent), matching the paper's measurement
//! protocol. Speedups are relative to the sequential interpreter.

use interp::{run_parallel, run_sequential, Mem};
use runtime::Team;
use spmd_bench::Table;
use std::sync::Arc;
use std::time::Instant;
use suite::Scale;

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let max_p = std::env::var("BE_MAX_P")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| cores.min(8));
    if cores < 2 {
        println!("NOTE: only {cores} core(s) available — speedups will be flat; the");
        println!("dynamic-count tables (table3) are the primary metric on this host.\n");
    }
    let programs = ["jacobi2d", "shallow", "adi", "erlebacher", "copy_chain"];
    println!("Figure: speedup vs processors (cores available: {cores})\n");
    for name in programs {
        let def = suite::by_name(name).unwrap();
        let built = (def.build)(Scale::Full);
        let prog = Arc::new(built.prog);

        // Sequential reference time (median of 3).
        let bind1 = Arc::new({
            let mut b = analysis::Bindings::new(1);
            for &(s, v) in &built.values {
                b.bind(s, v);
            }
            b
        });
        let mut seq_times = Vec::new();
        for _ in 0..3 {
            let mem = Mem::new(&prog, &bind1);
            let t0 = Instant::now();
            run_sequential(&prog, &bind1, &mem);
            seq_times.push(t0.elapsed().as_secs_f64());
        }
        seq_times.sort_by(f64::total_cmp);
        let t_seq = seq_times[1];

        let mut t = Table::new(&[
            "P",
            "fork-join s",
            "optimized s",
            "speedup fj",
            "speedup opt",
        ]);
        let mut p = 1usize;
        while p <= max_p {
            let bind = Arc::new({
                let mut b = analysis::Bindings::new(p as i64);
                for &(s, v) in &built.values {
                    b.bind(s, v);
                }
                b
            });
            let team = Team::new(p);
            let fj = spmd_opt::fork_join(&prog, &bind);
            let opt = spmd_opt::optimize(&prog, &bind);
            let time_plan = |plan: &spmd_opt::SpmdProgram| -> f64 {
                let mut best = f64::INFINITY;
                for _ in 0..2 {
                    let mem = Arc::new(Mem::new(&prog, &bind));
                    let out = run_parallel(&prog, &bind, plan, &mem, &team);
                    best = best.min(out.elapsed.as_secs_f64());
                }
                best
            };
            let t_fj = time_plan(&fj);
            let t_opt = time_plan(&opt);
            t.row(vec![
                p.to_string(),
                format!("{t_fj:.3}"),
                format!("{t_opt:.3}"),
                format!("{:.2}", t_seq / t_fj),
                format!("{:.2}", t_seq / t_opt),
            ]);
            p *= 2;
        }
        println!("{name}  (sequential: {t_seq:.3} s)");
        print!("{}", t.render());
        println!();
    }
    println!("Expected shape: optimized ≥ fork-join at every P, gap widening with P.");
}
