//! Text front end: a small Fortran-flavoured source language for the
//! affine IR, so kernels can be written as plain files instead of Rust
//! DSL calls. This plays the role of the Fortran front end + the
//! parallelizer's output annotations in the SUIF pipeline.
//!
//! # Language
//!
//! ```text
//! program jacobi
//! sym n, tmax
//! array A(n+2) block          ! block | cyclic | cyclic(4) | repl | private
//! array B(n+2) block          !   a dimension may be chosen with @k: block@1
//! scalar s = 0.0              ! scalar s = 0.0 private
//!
//! doall i = 1, n
//!   B(i) = 0.5 * (A(i-1) + A(i+1))
//! end
//! do t = 0, tmax-1
//!   doall j = 1, n
//!     if j - 1 >= 0 then
//!       A(j) = B(j)
//!     end
//!     s += B(j) * B(j)        ! += / max= / min= are reductions
//!   end
//! end
//! ```
//!
//! Subscripts, loop bounds, and `if` conditions must be affine in the
//! loop indices and `sym` constants; right-hand sides are general
//! arithmetic over array/scalar reads with `sqrt/abs/exp/sin/cos/min/max`.
//!
//! ```
//! let src = "
//! program demo
//! sym n
//! array A(n) block
//! doall i = 0, n-1
//!   A(i) = sin(i)
//! end
//! ";
//! let prog = frontend::parse(src).unwrap();
//! assert_eq!(prog.name, "demo");
//! assert_eq!(prog.parallel_loops().len(), 1);
//! ```

mod lexer;
mod parser;

pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse, ParseError};
