//! Communication tests and classification between statement groups.
//!
//! For every pair of accesses that could form a true, anti, or output
//! dependence between two groups, we build the two-instance inequality
//! system ([`crate::translate`]) and ask, with Fourier-Motzkin scans:
//!
//! 1. *Is there any cross-processor access pair at all?* If not, the
//!    barrier between the groups is unnecessary ([`CommPattern::NoComm`]).
//! 2. *Does every cross-processor pair stay within the reach of neighbor
//!    synchronization?* For loop-independent dependences that means
//!    `|q - p| <= 1`; for dependences carried by an enclosing loop it
//!    means `|q - p| <= i2 - i1` (each per-iteration neighbor sync hop
//!    extends the happens-before chain by one processor). If so, cheap
//!    post/wait flags replace the barrier ([`CommPattern::Neighbor`]).
//! 3. *Is the producer a single processor?* (master statements, or owner
//!    subscripts invariant in the distributed loops — e.g. a pivot row).
//!    Then a counter replaces the barrier ([`CommPattern::Producer1`]).
//! 4. Otherwise the barrier stays ([`CommPattern::General`]).

use crate::bindings::Bindings;
use crate::partition::{stmt_partition, LoopPartition, StmtPartition};
use crate::translate::{build_pair_system, SharedLoopMode};
use ineq::{FmeCache, FmeCacheStats, LinExpr};
use ir::{Affine, ArrayId, LhsRef, NodeId, Program, ScalarId, StmtPath};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// One statement-pair query observation delivered to the installed
/// probe (see [`set_pair_probe`]).
#[derive(Clone, Copy, Debug)]
pub struct PairProbe {
    /// True when the pass-wide pair memo answered the query without
    /// running a fresh Fourier-Motzkin scan.
    pub memo_hit: bool,
    /// Wall time the query took, in nanoseconds.
    pub elapsed_ns: u64,
}

static PROBE_ARMED: AtomicBool = AtomicBool::new(false);
#[allow(clippy::type_complexity)]
static PAIR_PROBE: RwLock<Option<Arc<dyn Fn(PairProbe) + Send + Sync>>> = RwLock::new(None);

/// Install (`Some`) or clear (`None`) the process-wide pair-query
/// probe. This is the profiler's window into the analysis without
/// `analysis` depending on any runtime crate: the driver forwards each
/// observation onto its own event ring. Queries pay a single relaxed
/// atomic load when no probe is installed. Install a probe only while
/// analysis runs single-threaded if the sink is single-writer.
pub fn set_pair_probe(hook: Option<Arc<dyn Fn(PairProbe) + Send + Sync>>) {
    // Order matters on both edges: arm only after the hook is in place,
    // and disarm before it is removed, so `probe_fire` never reads None
    // while armed.
    if hook.is_none() {
        PROBE_ARMED.store(false, Ordering::Release);
    }
    *PAIR_PROBE.write().unwrap() = hook;
    if PAIR_PROBE.read().unwrap().is_some() {
        PROBE_ARMED.store(true, Ordering::Release);
    }
}

fn probe_start() -> Option<Instant> {
    PROBE_ARMED.load(Ordering::Acquire).then(Instant::now)
}

fn probe_fire(t0: Option<Instant>, memo_hit: bool) {
    if let Some(t0) = t0 {
        if let Some(h) = PAIR_PROBE.read().unwrap().as_ref() {
            h(PairProbe {
                memo_hit,
                elapsed_ns: t0.elapsed().as_nanos() as u64,
            });
        }
    }
}

/// Tuning knobs for the communication analysis.
///
/// The defaults (shared memoization on, one worker per core) change only
/// how fast the answers arrive — never the answers themselves: verdicts
/// are pure functions of each query's canonical inequality system, and
/// group queries fold pair outcomes in the same sequential order
/// regardless of how many threads warmed the cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AnalysisConfig {
    /// Memoize FME feasibility verdicts and statement-pair outcomes in
    /// caches shared across the whole pass.
    pub cache: bool,
    /// Worker threads for group queries: `0` picks one per available
    /// core; `1` keeps the pass fully sequential (no threads spawned).
    pub threads: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            cache: true,
            threads: 0,
        }
    }
}

impl AnalysisConfig {
    /// The pre-caching behavior: sequential and uncached. This is the
    /// reference configuration differential tests compare against.
    pub fn sequential_uncached() -> Self {
        AnalysisConfig {
            cache: false,
            threads: 1,
        }
    }

    /// Resolved worker count (always at least 1).
    pub fn worker_count(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Counter snapshot for one analysis pass: statement-pair memo traffic
/// plus the shared FME cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Statement-pair queries answered from the pair memo.
    pub pair_hits: u64,
    /// Statement-pair queries that ran the full access-pair analysis.
    pub pair_misses: u64,
    /// Shared Fourier-Motzkin cache counters.
    pub fme: FmeCacheStats,
}

impl AnalysisStats {
    /// Hit rate over all statement-pair queries, in `[0, 1]`.
    pub fn pair_hit_rate(&self) -> f64 {
        let total = self.pair_hits + self.pair_misses;
        if total == 0 {
            0.0
        } else {
            self.pair_hits as f64 / total as f64
        }
    }
}

/// Memo key for a statement-pair query. Statement and loop nodes occur
/// exactly once in the program tree, so the node ids identify the full
/// [`StmtPath`]s and the mode's carried loop.
type PairKey = (u32, u32, u8, u32);

fn pair_key(s1: &StmtPath, s2: &StmtPath, mode: CommMode) -> PairKey {
    let (tag, at) = match mode {
        CommMode::LoopIndependent => (0u8, 0u32),
        CommMode::CarriedBy(n) => (1, n.0),
        CommMode::CarriedExactlyOne(n) => (2, n.0),
    };
    (s1.node.0, s2.node.0, tag, at)
}

/// Largest processor distance a [`DistSet`] can represent. Distances
/// beyond this collapse to [`CommPattern::General`].
pub const MAX_PAIR_DIST: i64 = 64;

/// Most distinct distance/producer wait targets a pairwise sync may
/// carry before a barrier is cheaper than the fan-in of point-to-point
/// waits.
pub const MAX_PAIR_FANIN: usize = 4;

/// A set of dependence distance vectors projected onto the processor
/// dimension: `d` in the set means data flows from processor `p` to
/// processor `p + d` (so a consumer `q` must wait on `q - d`).
/// Bitmask-encoded and `Copy`, so it can ride inside [`CommPattern`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub struct DistSet {
    /// Bit `k` set: forward distance `k + 1` (toward higher pids).
    fwd: u64,
    /// Bit `k` set: backward distance `-(k + 1)` (toward lower pids).
    bwd: u64,
}

impl DistSet {
    /// The empty set.
    pub fn empty() -> Self {
        DistSet::default()
    }

    /// The neighbor distances `{+1}`/`{-1}` for the given directions.
    pub fn neighbor(fwd: bool, bwd: bool) -> Self {
        let mut s = DistSet::empty();
        if fwd {
            s.insert(1);
        }
        if bwd {
            s.insert(-1);
        }
        s
    }

    /// Insert a distance. Returns `false` (set unchanged) when `d` is
    /// zero (local) or beyond [`MAX_PAIR_DIST`].
    pub fn insert(&mut self, d: i64) -> bool {
        if d == 0 || d.unsigned_abs() > MAX_PAIR_DIST as u64 {
            return false;
        }
        if d > 0 {
            self.fwd |= 1u64 << (d - 1);
        } else {
            self.bwd |= 1u64 << (-d - 1);
        }
        true
    }

    /// Membership test.
    pub fn contains(&self, d: i64) -> bool {
        if d == 0 || d.unsigned_abs() > MAX_PAIR_DIST as u64 {
            return false;
        }
        if d > 0 {
            self.fwd & (1u64 << (d - 1)) != 0
        } else {
            self.bwd & (1u64 << (-d - 1)) != 0
        }
    }

    /// Set union.
    pub fn union(self, other: DistSet) -> DistSet {
        DistSet {
            fwd: self.fwd | other.fwd,
            bwd: self.bwd | other.bwd,
        }
    }

    /// Number of distances in the set.
    pub fn len(&self) -> usize {
        (self.fwd.count_ones() + self.bwd.count_ones()) as usize
    }

    /// True when no distance is present.
    pub fn is_empty(&self) -> bool {
        self.fwd == 0 && self.bwd == 0
    }

    /// Distances in ascending order (negative first).
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        let bwd = (1..=MAX_PAIR_DIST)
            .rev()
            .filter(move |d| self.bwd & (1u64 << (d - 1)) != 0)
            .map(|d| -d);
        let fwd = (1..=MAX_PAIR_DIST).filter(move |d| self.fwd & (1u64 << (d - 1)) != 0);
        bwd.chain(fwd)
    }

    /// Render as `{-2,+1,+3}` for reports.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self
            .iter()
            .map(|d| {
                if d > 0 {
                    format!("+{d}")
                } else {
                    format!("{d}")
                }
            })
            .collect();
        format!("{{{}}}", parts.join(","))
    }
}

/// The shape of the communication between two groups (join over all
/// dependent access pairs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommPattern {
    /// No inter-processor data movement: the barrier can be eliminated.
    NoComm,
    /// All movement is between adjacent processors (within the reach of
    /// per-sync-point neighbor post/wait flags).
    Neighbor {
        /// Data flows to higher-numbered processors.
        fwd: bool,
        /// Data flows to lower-numbered processors.
        bwd: bool,
    },
    /// All movement follows a small set of fixed processor distances
    /// (and/or identifiable producers recorded in the enclosing
    /// [`CommOutcome`]): replace the barrier with point-to-point
    /// pairwise counters — each consumer waits only on the processors
    /// its distance vectors name, which pipelines loop-carried sweeps
    /// into a wavefront.
    PairWise {
        /// The feasible processor distances.
        dists: DistSet,
    },
    /// A single identifiable processor produces everything consumed:
    /// replace the barrier with a counter.
    Producer1,
    /// Unstructured communication: keep the barrier.
    General,
}

impl CommPattern {
    /// Lattice join (order: NoComm < Neighbor < PairWise < General,
    /// with Producer1 between NoComm and PairWise on its own edge).
    ///
    /// `Neighbor ⊔ Producer1` and `Producer1 ⊔ Producer1`-with-distinct-
    /// producers land on `PairWise`, not `General`: a pairwise counter
    /// per wait target expresses both mechanisms at once. Producer
    /// identities cannot ride in this `Copy` pattern — they are fused by
    /// [`CommOutcome::join`]; a bare pattern-level join records the
    /// distance part only.
    pub fn join(self, other: CommPattern) -> CommPattern {
        use CommPattern::*;
        match (self, other) {
            (NoComm, x) | (x, NoComm) => x,
            (General, _) | (_, General) => General,
            (Neighbor { fwd: f1, bwd: b1 }, Neighbor { fwd: f2, bwd: b2 }) => Neighbor {
                fwd: f1 || f2,
                bwd: b1 || b2,
            },
            (Producer1, Producer1) => Producer1,
            (PairWise { dists: d1 }, PairWise { dists: d2 }) => PairWise {
                dists: d1.union(d2),
            },
            (PairWise { dists }, Neighbor { fwd, bwd })
            | (Neighbor { fwd, bwd }, PairWise { dists }) => PairWise {
                dists: dists.union(DistSet::neighbor(fwd, bwd)),
            },
            // A counter pattern joined with a distance pattern fuses
            // into pairwise sync: the producer becomes one more wait
            // target (identity carried by `CommOutcome::join`).
            (Neighbor { fwd, bwd }, Producer1) | (Producer1, Neighbor { fwd, bwd }) => PairWise {
                dists: DistSet::neighbor(fwd, bwd),
            },
            (PairWise { dists }, Producer1) | (Producer1, PairWise { dists }) => PairWise { dists },
        }
    }

    /// True if a barrier is still required.
    pub fn needs_barrier(self) -> bool {
        matches!(self, CommPattern::General)
    }

    /// Stable lower-case name (used in JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            CommPattern::NoComm => "no-comm",
            CommPattern::Neighbor { .. } => "neighbor",
            CommPattern::PairWise { .. } => "pair-wise",
            CommPattern::Producer1 => "producer-1",
            CommPattern::General => "general",
        }
    }

    /// One-line description of the inequality-system evidence behind the
    /// classification (what the Fourier-Motzkin scans proved or failed to
    /// prove — the paper's §4 elimination conditions).
    pub fn evidence(self) -> &'static str {
        match self {
            CommPattern::NoComm => {
                "the inequality system with p != q is infeasible for every dependent access pair \
                 (no inter-processor data movement)"
            }
            CommPattern::Neighbor { .. } => {
                "every cross-processor pair stays within the reach of per-sync-point neighbor \
                 flags (|q - p| bounded by the synchronization chain)"
            }
            CommPattern::PairWise { .. } => {
                "every cross-processor pair follows a fixed dependence distance vector (q - p = d \
                 proved exact by feasibility probes) or an identifiable producer; point-to-point \
                 pairwise counters cover all of them"
            }
            CommPattern::Producer1 => {
                "all consumed values originate from one identifiable processor (owner subscripts \
                 fixed within a sync instance)"
            }
            CommPattern::General => {
                "a dependent pair with |q - p| beyond neighbor reach is feasible, no unique \
                 producer exists, and the distance spectrum is unbounded or wider than the \
                 pairwise fan-in budget"
            }
        }
    }
}

/// Identifies the unique producer processor for [`CommPattern::Producer1`]
/// sync points, in a form the runtime can evaluate (all loop indices that
/// appear are fixed for the duration of the sync instance).
#[derive(Clone, PartialEq, Debug)]
pub enum ProducerSpec {
    /// The master processor (serial statement).
    Master,
    /// Owner of element `sub` under a block distribution.
    BlockOwner {
        /// Block size.
        block: i64,
        /// Distributed-dimension subscript (invariant in the sync
        /// instance).
        sub: Affine,
    },
    /// Owner of element `sub` under a cyclic distribution.
    CyclicOwner {
        /// Distributed-dimension subscript.
        sub: Affine,
    },
    /// Owner of element `sub` under a block-cyclic distribution.
    BlockCyclicOwner {
        /// Dealt block size.
        block: i64,
        /// Distributed-dimension subscript.
        sub: Affine,
    },
}

/// A communication query result: the pattern plus, for `Producer1`, the
/// producer's identity, and for `PairWise`, the producer wait set.
#[derive(Clone, PartialEq, Debug)]
pub struct CommOutcome {
    /// Joined communication pattern.
    pub pattern: CommPattern,
    /// Producer identity when `pattern == Producer1`.
    pub producer: Option<ProducerSpec>,
    /// Producer wait targets when `pattern == PairWise`: every
    /// processor additionally waits on each of these producers' posts
    /// (the fused form of `Producer1` joined into a distance pattern,
    /// or of two `Producer1`s naming different producers).
    pub pair_producers: Vec<ProducerSpec>,
}

impl CommOutcome {
    /// The no-communication outcome.
    pub fn none() -> Self {
        CommOutcome {
            pattern: CommPattern::NoComm,
            producer: None,
            pair_producers: Vec::new(),
        }
    }

    /// A general (barrier-requiring) outcome.
    pub fn general() -> Self {
        CommOutcome {
            pattern: CommPattern::General,
            producer: None,
            pair_producers: Vec::new(),
        }
    }

    /// An outcome with just a pattern (neighbor / pairwise-by-distance).
    pub fn of(pattern: CommPattern) -> Self {
        CommOutcome {
            pattern,
            producer: None,
            pair_producers: Vec::new(),
        }
    }

    /// Total pairwise wait fan-in (distances plus producer targets).
    pub fn pair_fanin(&self) -> usize {
        match self.pattern {
            CommPattern::PairWise { dists } => dists.len() + self.pair_producers.len(),
            _ => 0,
        }
    }

    /// The producer wait set this outcome contributes when fused into a
    /// pairwise sync: the `Producer1` spec, or an existing pair set.
    fn producers_as_pair(&self) -> Vec<ProducerSpec> {
        match self.pattern {
            CommPattern::Producer1 => self.producer.iter().cloned().collect(),
            CommPattern::PairWise { .. } => self.pair_producers.clone(),
            _ => Vec::new(),
        }
    }

    /// Join two outcomes.
    ///
    /// Two `Producer1`s naming *different* producers fuse into a
    /// two-entry pairwise producer set (one counter per pair — exactly
    /// the pairwise primitive) instead of collapsing to `General`; the
    /// same fusion absorbs `Producer1` into neighbor/pairwise distance
    /// patterns. A producer without an evaluable spec, or a fused wait
    /// set wider than [`MAX_PAIR_FANIN`], still degrades to `General`
    /// (a barrier is cheaper than a wide point-to-point fan-in).
    pub fn join(self, other: CommOutcome) -> CommOutcome {
        use CommPattern::*;
        match (self.pattern, other.pattern) {
            (NoComm, _) => other,
            (_, NoComm) => self,
            (General, _) | (_, General) => CommOutcome::general(),
            (Producer1, Producer1) if self.producer == other.producer => self,
            // Distinct producers: a two-entry pairwise producer set.
            (Producer1, Producer1) => match (self.producer, other.producer) {
                (Some(p1), Some(p2)) => CommOutcome {
                    pattern: PairWise {
                        dists: DistSet::empty(),
                    },
                    producer: None,
                    pair_producers: vec![p1, p2],
                },
                _ => CommOutcome::general(),
            },
            // Every remaining combination that involves a Producer1 or a
            // PairWise side fuses into a pairwise sync; pure
            // neighbor-neighbor joins stay Neighbor via the pattern join.
            (a, b) => {
                let pattern = a.join(b);
                match pattern {
                    PairWise { dists } => {
                        let mut producers = self.producers_as_pair();
                        for p in other.producers_as_pair() {
                            if !producers.contains(&p) {
                                producers.push(p);
                            }
                        }
                        // A producer the runtime cannot evaluate cannot
                        // become a wait target.
                        let lost_producer = matches!(a, Producer1) && self.producer.is_none()
                            || matches!(b, Producer1) && other.producer.is_none();
                        if lost_producer || dists.len() + producers.len() > MAX_PAIR_FANIN {
                            return CommOutcome::general();
                        }
                        CommOutcome {
                            pattern,
                            producer: None,
                            pair_producers: producers,
                        }
                    }
                    _ => CommOutcome::of(pattern),
                }
            }
        }
    }
}

/// Which loop level a query runs at — see the paper's elimination
/// algorithm: barriers between groups are tested *loop-independent*; the
/// bottom-of-loop barrier of an enclosing sequential loop is tested
/// *loop-carried* at that loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommMode {
    /// Both statement instances in the same iteration of all shared loops.
    LoopIndependent,
    /// Dependence carried by the given shared sequential loop (any
    /// positive distance).
    CarriedBy(NodeId),
    /// Carried with distance exactly one (pipeline-step query).
    CarriedExactlyOne(NodeId),
}

impl CommMode {
    fn shared_mode(self) -> SharedLoopMode {
        match self {
            CommMode::LoopIndependent => SharedLoopMode::SameIteration,
            CommMode::CarriedBy(at) => SharedLoopMode::CarriedBy(at),
            CommMode::CarriedExactlyOne(at) => SharedLoopMode::CarriedExactlyOne(at),
        }
    }
}

/// One array access of a statement.
#[derive(Clone, Debug)]
pub struct ArrayAccess {
    /// Which array.
    pub array: ArrayId,
    /// Subscripts.
    pub subs: Vec<Affine>,
    /// Write (definition) or read (use).
    pub is_write: bool,
}

/// One scalar access of a statement.
#[derive(Clone, Copy, Debug)]
pub struct ScalarAccess {
    /// Which scalar.
    pub scalar: ScalarId,
    /// Write or read.
    pub is_write: bool,
}

/// When two loop partitions use the *same* owner function, return the
/// two owner-input expressions (translated into the pair system); equal
/// inputs then imply equal processors regardless of the function's
/// non-linear internals.
fn same_owner_inputs(
    ps: &mut crate::translate::PairSystem,
    bind: &Bindings,
    lp1: &LoopPartition,
    lp2: &LoopPartition,
) -> Option<(ineq::LinExpr, ineq::LinExpr)> {
    use LoopPartition::*;
    let (sub1, sub2) = match (lp1, lp2) {
        (
            BlockOwner {
                block: b1, sub: s1, ..
            },
            BlockOwner {
                block: b2, sub: s2, ..
            },
        ) if b1 == b2 => (s1.clone(), s2.clone()),
        (CyclicOwner { sub: s1, .. }, CyclicOwner { sub: s2, .. }) => (s1.clone(), s2.clone()),
        (
            BlockCyclicOwner {
                block: b1, sub: s1, ..
            },
            BlockCyclicOwner {
                block: b2, sub: s2, ..
            },
        ) if b1 == b2 => (s1.clone(), s2.clone()),
        _ => return None,
    };
    let m1 = ps.map1.clone();
    let m2 = ps.map2.clone();
    let d1 = ps.tr(bind, &sub1, &m1);
    let d2 = ps.tr(bind, &sub2, &m2);
    Some((d1, d2))
}

/// Collect a statement's array and scalar accesses (a reduction's LHS
/// counts as both a read and a write).
pub fn stmt_accesses(prog: &Program, stmt: NodeId) -> (Vec<ArrayAccess>, Vec<ScalarAccess>) {
    let a = prog
        .node(stmt)
        .as_assign()
        .expect("statement node must be an assignment");
    let mut arrays = Vec::new();
    let mut scalars = Vec::new();
    match &a.lhs {
        LhsRef::Elem(arr, subs) => {
            arrays.push(ArrayAccess {
                array: *arr,
                subs: subs.clone(),
                is_write: true,
            });
            if a.reduction.is_some() {
                arrays.push(ArrayAccess {
                    array: *arr,
                    subs: subs.clone(),
                    is_write: false,
                });
            }
        }
        LhsRef::Scalar(s) => {
            scalars.push(ScalarAccess {
                scalar: *s,
                is_write: true,
            });
            if a.reduction.is_some() {
                scalars.push(ScalarAccess {
                    scalar: *s,
                    is_write: false,
                });
            }
        }
    }
    for (arr, subs) in a.rhs.array_reads() {
        arrays.push(ArrayAccess {
            array: arr,
            subs,
            is_write: false,
        });
    }
    for s in a.rhs.scalar_reads() {
        scalars.push(ScalarAccess {
            scalar: s,
            is_write: false,
        });
    }
    (arrays, scalars)
}

/// The communication analyzer: a program plus concrete bindings, with
/// optional pass-wide memoization and a worker pool for group queries.
pub struct CommQuery<'p> {
    /// The program under analysis.
    pub prog: &'p Program,
    /// Symbol values and processor count.
    pub bind: Bindings,
    config: AnalysisConfig,
    fme: Option<Arc<FmeCache>>,
    pair_memo: Mutex<HashMap<PairKey, CommOutcome>>,
    pair_hits: AtomicU64,
    pair_misses: AtomicU64,
}

impl<'p> CommQuery<'p> {
    /// Create an analyzer with the default configuration.
    pub fn new(prog: &'p Program, bind: Bindings) -> Self {
        CommQuery::with_config(prog, bind, AnalysisConfig::default())
    }

    /// Create an analyzer with explicit cache / parallelism settings.
    pub fn with_config(prog: &'p Program, bind: Bindings, config: AnalysisConfig) -> Self {
        let fme = config.cache.then(|| Arc::new(FmeCache::new()));
        Self::with_fme_cache(prog, bind, config, fme)
    }

    /// As [`CommQuery::with_config`], but reusing an externally owned
    /// FME memo — e.g. one shared across every procedure of a
    /// compilation session. Canonical keys are variable-table
    /// independent, so sharing is sound across programs. Ignored (no
    /// cache at all) when `config.cache` is false.
    pub fn with_fme_cache(
        prog: &'p Program,
        bind: Bindings,
        config: AnalysisConfig,
        fme: Option<Arc<FmeCache>>,
    ) -> Self {
        CommQuery {
            prog,
            bind,
            config,
            fme: if config.cache { fme } else { None },
            pair_memo: Mutex::new(HashMap::new()),
            pair_hits: AtomicU64::new(0),
            pair_misses: AtomicU64::new(0),
        }
    }

    /// The configuration this analyzer runs with.
    pub fn config(&self) -> AnalysisConfig {
        self.config
    }

    /// Counter snapshot (pair memo + shared FME cache). Counters are
    /// diagnostics only: they depend on thread interleaving and must not
    /// flow into deterministic outputs like decision logs.
    pub fn stats(&self) -> AnalysisStats {
        AnalysisStats {
            pair_hits: self.pair_hits.load(Ordering::Relaxed),
            pair_misses: self.pair_misses.load(Ordering::Relaxed),
            fme: self.fme.as_ref().map(|c| c.stats()).unwrap_or_default(),
        }
    }

    /// Communication pattern between two statements (all dependent access
    /// pairs joined).
    pub fn comm_stmts(&self, s1: &StmtPath, s2: &StmtPath, mode: CommMode) -> CommPattern {
        self.comm_stmts_detailed(s1, s2, mode).pattern
    }

    /// As [`comm_stmts`](Self::comm_stmts) but carrying producer identity.
    pub fn comm_stmts_detailed(&self, s1: &StmtPath, s2: &StmtPath, mode: CommMode) -> CommOutcome {
        let t0 = probe_start();
        if self.fme.is_none() {
            let out = self.comm_stmts_fresh(s1, s2, mode);
            probe_fire(t0, false);
            return out;
        }
        let key = pair_key(s1, s2, mode);
        if let Some(hit) = self.pair_memo.lock().unwrap().get(&key) {
            self.pair_hits.fetch_add(1, Ordering::Relaxed);
            let out = hit.clone();
            probe_fire(t0, true);
            return out;
        }
        let out = self.comm_stmts_fresh(s1, s2, mode);
        self.pair_misses.fetch_add(1, Ordering::Relaxed);
        self.pair_memo.lock().unwrap().insert(key, out.clone());
        probe_fire(t0, false);
        out
    }

    /// True when [`CommQuery::warm`] can actually run jobs concurrently:
    /// caching is on and more than one worker is configured. Callers use
    /// this to skip building job lists that warm() would discard.
    pub fn warm_enabled(&self) -> bool {
        self.fme.is_some() && self.config.worker_count() >= 2
    }

    /// Evaluate the given statement-pair queries concurrently, filling
    /// the shared memo; results are discarded. Callers then rerun their
    /// exact sequential fold over the warm cache, so every output is
    /// byte-identical to a single-threaded pass. No-op when caching is
    /// off or only one worker is configured.
    pub fn warm(&self, jobs: &[(StmtPath, StmtPath, CommMode)]) {
        if !self.warm_enabled() {
            return;
        }
        // Spawning a worker pool costs more than a small batch of
        // memo hits: drop already-answered jobs first and only spin up
        // threads when real work remains.
        let pending: Vec<&(StmtPath, StmtPath, CommMode)> = {
            let memo = self.pair_memo.lock().unwrap();
            jobs.iter()
                .filter(|(s1, s2, m)| !memo.contains_key(&pair_key(s1, s2, *m)))
                .collect()
        };
        if pending.len() < 2 {
            return;
        }
        let workers = self.config.worker_count().min(pending.len()).min(16);
        if workers < 2 {
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some((s1, s2, mode)) = pending.get(k) else {
                        break;
                    };
                    let _ = self.comm_stmts_detailed(s1, s2, *mode);
                });
            }
        });
    }

    /// The full (memo-free) statement-pair analysis.
    fn comm_stmts_fresh(&self, s1: &StmtPath, s2: &StmtPath, mode: CommMode) -> CommOutcome {
        let (arr1, sc1) = stmt_accesses(self.prog, s1.node);
        let (arr2, sc2) = stmt_accesses(self.prog, s2.node);
        let mut out = CommOutcome::none();

        // Scalar dependences first (cheap, and often decisive).
        for a1 in &sc1 {
            for a2 in &sc2 {
                if a1.scalar != a2.scalar || (!a1.is_write && !a2.is_write) {
                    continue;
                }
                out = out.join(self.scalar_pair(s1, *a1, s2, *a2));
                if out.pattern == CommPattern::General {
                    return out;
                }
            }
        }

        for a1 in &arr1 {
            for a2 in &arr2 {
                if a1.array != a2.array || (!a1.is_write && !a2.is_write) {
                    continue;
                }
                out = out.join(self.array_pair(s1, a1, s2, a2, mode));
                if out.pattern == CommPattern::General {
                    return out;
                }
            }
        }
        out
    }

    /// Communication pattern between two groups of statements.
    pub fn comm_groups(&self, g1: &[StmtPath], g2: &[StmtPath], mode: CommMode) -> CommPattern {
        self.comm_groups_detailed(g1, g2, mode).pattern
    }

    /// As [`comm_groups`](Self::comm_groups) but carrying producer
    /// identity for counter lowering.
    pub fn comm_groups_detailed(
        &self,
        g1: &[StmtPath],
        g2: &[StmtPath],
        mode: CommMode,
    ) -> CommOutcome {
        if g1.len() * g2.len() > 1 {
            let jobs: Vec<(StmtPath, StmtPath, CommMode)> = g1
                .iter()
                .flat_map(|s1| g2.iter().map(|s2| (s1.clone(), s2.clone(), mode)))
                .collect();
            self.warm(&jobs);
        }
        let mut out = CommOutcome::none();
        for s1 in g1 {
            for s2 in g2 {
                out = out.join(self.comm_stmts_detailed(s1, s2, mode));
                if out.pattern == CommPattern::General {
                    return out;
                }
            }
        }
        out
    }

    fn scalar_pair(
        &self,
        s1: &StmtPath,
        a1: ScalarAccess,
        s2: &StmtPath,
        a2: ScalarAccess,
    ) -> CommOutcome {
        if self.prog.scalar(a1.scalar).privatizable {
            return CommOutcome::none();
        }
        let p1 = stmt_partition(self.prog, &self.bind, s1);
        let p2 = stmt_partition(self.prog, &self.bind, s2);
        use StmtPartition::*;
        match (&p1, a1.is_write, &p2, a2.is_write) {
            // Producer and consumer both on the master: purely local.
            (Master, _, Master, _) => CommOutcome::none(),
            // A replicated producer leaves a valid copy everywhere.
            (Replicated, true, _, false) => CommOutcome::none(),
            (Replicated, true, Replicated, true) => CommOutcome::none(),
            // Master produces, distributed/replicated statements consume:
            // one producer — a counter satisfies the dependence.
            (Master, true, _, _) => CommOutcome {
                pattern: CommPattern::Producer1,
                producer: Some(ProducerSpec::Master),
                pair_producers: Vec::new(),
            },
            // Everything else (distributed writes to a shared scalar,
            // anti-dependences onto replicated writers, …) keeps the
            // barrier.
            _ => CommOutcome::general(),
        }
    }

    fn array_pair(
        &self,
        s1: &StmtPath,
        a1: &ArrayAccess,
        s2: &StmtPath,
        a2: &ArrayAccess,
        mode: CommMode,
    ) -> CommOutcome {
        // Privatizable work arrays live in per-processor copies: no
        // access to them ever moves data between processors.
        if self.prog.array(a1.array).privatizable {
            return CommOutcome::none();
        }
        let part1 = stmt_partition(self.prog, &self.bind, s1);
        let part2 = stmt_partition(self.prog, &self.bind, s2);

        // Replicated producers satisfy true dependences locally.
        if a1.is_write && part1 == StmtPartition::Replicated {
            if !a2.is_write {
                return CommOutcome::none();
            }
            if part2 == StmtPartition::Replicated {
                return CommOutcome::none();
            }
            return CommOutcome::general();
        }
        if !a1.is_write && a2.is_write && part2 == StmtPartition::Replicated {
            return CommOutcome::general();
        }

        let mut ps = build_pair_system(self.prog, &self.bind, s1, s2, mode.shared_mode());
        ps.set_cache(self.fme.clone());
        ps.add_elem_equality(&self.bind, &a1.subs, &a2.subs);
        let (p, q) = (ps.p, ps.q);

        // 0a. Symbolic block distributions (extents unbound): classify by
        //     the owner-input difference. Equal extents mean equal owner
        //     functions with some block size b >= 1; then
        //     |owner(x) - owner(y)| <= |x - y| for any b, so a difference
        //     forced to 0 is local and a difference within the carried
        //     reach is neighbor-safe — all provable without knowing n.
        if let (
            StmtPartition::Distributed(
                _,
                LoopPartition::SymbolicBlockOwner {
                    extent: e1,
                    sub: sb1,
                    ..
                },
            ),
            StmtPartition::Distributed(
                _,
                LoopPartition::SymbolicBlockOwner {
                    extent: e2,
                    sub: sb2,
                    ..
                },
            ),
        ) = (&part1, &part2)
        {
            if e1 == e2 {
                let m1 = ps.map1.clone();
                let m2 = ps.map2.clone();
                let d1 = ps.tr(&self.bind, sb1, &m1);
                let d2 = ps.tr(&self.bind, sb2, &m2);
                let fwd = ps.feasible_with(|s| {
                    s.add_ge(d2.clone() - d1.clone() - LinExpr::constant(1));
                });
                let bwd = ps.feasible_with(|s| {
                    s.add_ge(d1.clone() - d2.clone() - LinExpr::constant(1));
                });
                if !fwd && !bwd {
                    return CommOutcome::none();
                }
                let viol = |dir_fwd: bool| -> bool {
                    ps.feasible_with(|s| {
                        let (hi, lo) = if dir_fwd {
                            (d2.clone(), d1.clone())
                        } else {
                            (d1.clone(), d2.clone())
                        };
                        let mut e = hi - lo;
                        match ps.carried_vars {
                            None => e = e - LinExpr::constant(2),
                            Some((i1, i2)) => {
                                e = e
                                    - (LinExpr::var(i2) - LinExpr::var(i1))
                                    - LinExpr::constant(1);
                            }
                        }
                        s.add_ge(e);
                    })
                };
                if !viol(true) && !viol(false) {
                    return CommOutcome::of(CommPattern::Neighbor { fwd, bwd });
                }
                return CommOutcome::general();
            }
            // Different extents: owner functions differ; fall through to
            // the (conservative) processor tests.
        }

        // 0. Identical owner functions with provably equal owner inputs
        //    force p == q. Fourier-Motzkin over the rationals cannot see
        //    that the (block-)cyclic mod decomposition is unique, so this
        //    structural step supplies the paper's "identity of the
        //    producer and consumer processors" for those distributions.
        if let (StmtPartition::Distributed(_, lp1), StmtPartition::Distributed(_, lp2)) =
            (&part1, &part2)
        {
            if let Some((d1, d2)) = same_owner_inputs(&mut ps, &self.bind, lp1, lp2) {
                let neq = ps.feasible_with(|s| {
                    s.add_ge(d1.clone() - d2.clone() - LinExpr::constant(1));
                }) || ps.feasible_with(|s| {
                    s.add_ge(d2.clone() - d1.clone() - LinExpr::constant(1));
                });
                if !neq {
                    return CommOutcome::none();
                }
            }
        }

        // 1. Any cross-processor pair at all?
        let fwd = ps
            .feasible_with(|s| s.add_ge(LinExpr::var(q) - LinExpr::var(p) - LinExpr::constant(1)));
        let bwd = ps
            .feasible_with(|s| s.add_ge(LinExpr::var(p) - LinExpr::var(q) - LinExpr::constant(1)));
        if !fwd && !bwd {
            return CommOutcome::none();
        }

        // 2. Within neighbor-sync reach? Loop-independent: |q-p| <= 1.
        // Carried by a loop with per-iteration sync: |q-p| <= i2-i1.
        let viol = |dir_fwd: bool| -> bool {
            ps.feasible_with(|s| {
                let (hi, lo) = if dir_fwd { (q, p) } else { (p, q) };
                let mut e = LinExpr::var(hi) - LinExpr::var(lo);
                match ps.carried_vars {
                    None => {
                        // |q-p| >= 2 violates a single sync point.
                        e = e - LinExpr::constant(2);
                    }
                    Some((i1, i2)) => {
                        // |q-p| >= (i2-i1) + 1 outruns the chain.
                        e = e - (LinExpr::var(i2) - LinExpr::var(i1)) - LinExpr::constant(1);
                    }
                }
                s.add_ge(e);
            })
        };
        if !viol(true) && !viol(false) {
            return CommOutcome::of(CommPattern::Neighbor { fwd, bwd });
        }

        // 3. Unique producer?
        if let Some(spec) = self.unique_producer(s1, &part1, mode) {
            return CommOutcome {
                pattern: CommPattern::Producer1,
                producer: Some(spec),
                pair_producers: Vec::new(),
            };
        }

        // 4. Distance vectors: is every feasible processor distance one
        //    of a small fixed set? Probe `q - p == d` for each candidate
        //    distance in the feasible direction(s). A direct wait on
        //    `q - d` at the sync point covers a dependence at distance
        //    `d` for *any* carried iteration gap >= 1 (the producer's
        //    post at the bottom of its iteration happens after that
        //    iteration's work, and the consumer passes that bottom sync
        //    before any later iteration), so — unlike the chained
        //    neighbor test above — no reach argument is needed: the
        //    distance spectrum alone decides.
        if let Some(dists) = self.distance_spectrum(&ps, fwd, bwd) {
            return CommOutcome::of(CommPattern::PairWise { dists });
        }
        CommOutcome::general()
    }

    /// Enumerate the exact feasible processor-distance spectrum of a
    /// dependent access pair, or `None` when it is unbounded, wider
    /// than [`MAX_PAIR_FANIN`], or outside [`MAX_PAIR_DIST`].
    ///
    /// `|q - p| <= nprocs - 1` always, so when the probe window covers
    /// the whole machine (`nprocs - 1 <= MAX_PAIR_DIST`) probing each
    /// candidate distance in the directions step 1 found feasible is
    /// exhaustive. When the machine is wider than the window, a single
    /// extra probe per direction asks whether any distance *beyond*
    /// the window may hold; if so the enumeration is not exhaustive
    /// and the barrier is kept. Separately, a direction step 1 found
    /// feasible (possibly via an `Unknown` overflow/budget verdict)
    /// whose every exact-distance probe proves infeasible cannot be
    /// pinned to a spectrum — that direction's dependence may still be
    /// real, so the barrier is kept rather than returning the other
    /// direction's distances alone.
    fn distance_spectrum(
        &self,
        ps: &crate::translate::PairSystem,
        fwd: bool,
        bwd: bool,
    ) -> Option<DistSet> {
        let reach = (self.bind.nprocs - 1).min(MAX_PAIR_DIST);
        if reach < 1 {
            return None;
        }
        let (p, q) = (ps.p, ps.q);
        if self.bind.nprocs - 1 > MAX_PAIR_DIST {
            // Distances in (MAX_PAIR_DIST, nprocs-1] are never probed
            // below; if any may hold, a spectrum built from the probed
            // window would silently drop them.
            let tail = |hi: ineq::VarId, lo: ineq::VarId| {
                ps.feasible_with(|s| {
                    s.add_ge(
                        LinExpr::var(hi)
                            - LinExpr::var(lo)
                            - LinExpr::constant(MAX_PAIR_DIST as i128 + 1),
                    )
                })
            };
            if (fwd && tail(q, p)) || (bwd && tail(p, q)) {
                return None;
            }
        }
        let mut dists = DistSet::empty();
        let mut candidates: Vec<i64> = Vec::new();
        if fwd {
            candidates.extend(1..=reach);
        }
        if bwd {
            candidates.extend((1..=reach).map(|d| -d));
        }
        let (mut fwd_hits, mut bwd_hits) = (0usize, 0usize);
        for d in candidates {
            let hit = ps.feasible_with(|s| {
                // q - p == d, as two inequalities.
                s.add_ge(LinExpr::var(q) - LinExpr::var(p) - LinExpr::constant(d as i128));
                s.add_ge(LinExpr::constant(d as i128) - LinExpr::var(q) + LinExpr::var(p));
            });
            if hit {
                if !dists.insert(d) {
                    return None;
                }
                if dists.len() > MAX_PAIR_FANIN {
                    return None;
                }
                if d > 0 {
                    fwd_hits += 1;
                } else {
                    bwd_hits += 1;
                }
            }
        }
        if (fwd && fwd_hits == 0) || (bwd && bwd_hits == 0) {
            // Step 1 saw a cross-processor pair in this direction that
            // the enumeration cannot pin to an exact distance (an
            // Unknown verdict upstream): keep the barrier.
            return None;
        }
        Some(dists)
    }

    /// True if the producer statement executes on a single, identifiable
    /// processor per sync instance: master statements, or owner
    /// subscripts that do not vary with any loop that varies within the
    /// sync instance (only region-shared loops, and the carried loop for
    /// carried queries, are fixed).
    fn unique_producer(
        &self,
        s1: &StmtPath,
        part1: &StmtPartition,
        mode: CommMode,
    ) -> Option<ProducerSpec> {
        match part1 {
            StmtPartition::Master => Some(ProducerSpec::Master),
            StmtPartition::Replicated => None,
            StmtPartition::Distributed(_, lp) => {
                let (sub, spec) = match lp {
                    LoopPartition::BlockOwner { sub, block, .. } => (
                        sub,
                        ProducerSpec::BlockOwner {
                            block: *block,
                            sub: sub.clone(),
                        },
                    ),
                    LoopPartition::CyclicOwner { sub, .. } => {
                        (sub, ProducerSpec::CyclicOwner { sub: sub.clone() })
                    }
                    LoopPartition::BlockCyclicOwner { sub, block, .. } => (
                        sub,
                        ProducerSpec::BlockCyclicOwner {
                            block: *block,
                            sub: sub.clone(),
                        },
                    ),
                    LoopPartition::SymbolicBlockOwner { .. }
                    | LoopPartition::BlockIndex { .. }
                    | LoopPartition::Unknown => return None,
                };
                // Loops whose index is fixed within one sync instance.
                let fixed: Vec<ir::LoopId> = s1
                    .loops
                    .iter()
                    .map(|&n| self.prog.expect_loop(n).id)
                    .collect();
                // For a carried query the carried loop is fixed (one
                // producer iteration); for loop-independent queries only
                // the loops *outside* the group vary... conservatively we
                // require the owner subscript to depend on no loop that
                // is not an enclosing sequential loop *outside the
                // innermost parallel loop*.
                let outer_seq: Vec<ir::LoopId> = {
                    let mut v = Vec::new();
                    for &n in &s1.loops {
                        let l = self.prog.expect_loop(n);
                        if l.kind == ir::LoopKind::Par {
                            break;
                        }
                        v.push(l.id);
                    }
                    if let CommMode::CarriedBy(at) | CommMode::CarriedExactlyOne(at) = mode {
                        let l = self.prog.expect_loop(at);
                        if !v.contains(&l.id) {
                            v.push(l.id);
                        }
                    }
                    v
                };
                let _ = fixed;
                if sub.loops().all(|l| outer_seq.contains(&l)) {
                    Some(spec)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::build::*;

    /// DOALL i: B(i) = A(i);  DOALL j: C(j) = B(j)  → aligned, no comm.
    #[test]
    fn aligned_copy_has_no_comm() {
        let mut pb = ProgramBuilder::new("aligned");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let c = pb.array("C", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(b, [idx(i)]), arr(a, [idx(i)]));
        pb.end();
        let j = pb.begin_par("j", con(0), sym(n) - 1);
        pb.assign(elem(c, [idx(j)]), arr(b, [idx(j)]));
        pb.end();
        let prog = pb.finish();
        let q = CommQuery::new(&prog, Bindings::new(4).set(n, 64));
        let st = prog.all_statements();
        assert_eq!(
            q.comm_stmts(&st[0], &st[1], CommMode::LoopIndependent),
            CommPattern::NoComm
        );
    }

    /// DOALL i: B(i) = A(i);  DOALL j: C(j) = B(j-1) + B(j+1) → neighbor.
    #[test]
    fn stencil_read_is_neighbor() {
        let mut pb = ProgramBuilder::new("stencil");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let c = pb.array("C", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(b, [idx(i)]), arr(a, [idx(i)]));
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 2);
        pb.assign(
            elem(c, [idx(j)]),
            arr(b, [idx(j) - 1]) + arr(b, [idx(j) + 1]),
        );
        pb.end();
        let prog = pb.finish();
        let q = CommQuery::new(&prog, Bindings::new(4).set(n, 64));
        let st = prog.all_statements();
        assert_eq!(
            q.comm_stmts(&st[0], &st[1], CommMode::LoopIndependent),
            CommPattern::Neighbor {
                fwd: true,
                bwd: true
            }
        );
    }

    /// Master produces a scalar consumed by a parallel loop → counter.
    #[test]
    fn master_scalar_is_producer1() {
        let mut pb = ProgramBuilder::new("bc");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let s = pb.scalar("s", 0.0);
        pb.assign(svar(s), ex(3.0));
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(a, [idx(i)]), sca(s));
        pb.end();
        let prog = pb.finish();
        let q = CommQuery::new(&prog, Bindings::new(4).set(n, 64));
        let st = prog.all_statements();
        assert_eq!(
            q.comm_stmts(&st[0], &st[1], CommMode::LoopIndependent),
            CommPattern::Producer1
        );
    }

    /// Shift by exactly two blocks: the distance spectrum is the single
    /// vector {-2}, so the former `General` cliff becomes pairwise sync.
    #[test]
    fn long_range_shift_is_pairwise() {
        let mut pb = ProgramBuilder::new("farshift");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n) * 2], dist_block());
        let b = pb.array("B", &[sym(n) * 2], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) * 2 - 1);
        pb.assign(elem(a, [idx(i)]), ival(idx(i)));
        pb.end();
        let j = pb.begin_par("j", con(0), sym(n) - 1);
        pb.assign(elem(b, [idx(j)]), arr(a, [idx(j) + sym(n)]));
        pb.end();
        let prog = pb.finish();
        let q = CommQuery::new(&prog, Bindings::new(4).set(n, 32));
        let st = prog.all_statements();
        let mut want = DistSet::empty();
        want.insert(-2);
        assert_eq!(
            q.comm_stmts(&st[0], &st[1], CommMode::LoopIndependent),
            CommPattern::PairWise { dists: want }
        );
    }

    /// Array reversal at P=8: eight distinct distances exceed the
    /// pairwise fan-in budget, so the barrier stays.
    #[test]
    fn reversal_is_general() {
        let mut pb = ProgramBuilder::new("reverse");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(a, [idx(i)]), ival(idx(i)));
        pb.end();
        let j = pb.begin_par("j", con(0), sym(n) - 1);
        pb.assign(elem(b, [idx(j)]), arr(a, [sym(n) - 1 - idx(j)]));
        pb.end();
        let prog = pb.finish();
        let q = CommQuery::new(&prog, Bindings::new(8).set(n, 64));
        let st = prog.all_statements();
        assert_eq!(
            q.comm_stmts(&st[0], &st[1], CommMode::LoopIndependent),
            CommPattern::General
        );
    }

    /// A dependence whose feasible distances straddle `MAX_PAIR_DIST` on
    /// a machine wider than the probe window (P=72, distances {-64,-65}):
    /// the in-window hit alone must not yield a spectrum that silently
    /// drops the unprobed distance 65 — the tail probe keeps the barrier.
    #[test]
    fn distance_straddling_probe_window_keeps_barrier() {
        let mut pb = ProgramBuilder::new("clampshift");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n) * 72], dist_block());
        let b = pb.array("B", &[sym(n) * 72], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) * 72 - 1);
        pb.assign(elem(a, [idx(i)]), ival(idx(i)));
        pb.end();
        let j = pb.begin_par("j", con(0), sym(n) - 1);
        pb.assign(elem(b, [idx(j)]), arr(a, [idx(j) + sym(n) * 64 + con(5)]));
        pb.end();
        let prog = pb.finish();
        // block = n = 8: A[j + 64n + 5] lives on pid 64 for j < 3 and on
        // pid 65 (beyond MAX_PAIR_DIST) for j >= 3, consumer on pid 0.
        let q = CommQuery::new(&prog, Bindings::new(72).set(n, 8));
        let st = prog.all_statements();
        assert_eq!(
            q.comm_stmts(&st[0], &st[1], CommMode::LoopIndependent),
            CommPattern::General
        );
    }

    /// A direction step 1 reported feasible (e.g. via an `Unknown`
    /// overflow verdict) but with zero exact-distance hits must not
    /// return the other direction's spectrum alone: the unpinned
    /// direction's dependence would be left unsynchronized.
    #[test]
    fn unpinned_direction_keeps_barrier() {
        let mut pb = ProgramBuilder::new("unpinned");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n) * 2], dist_block());
        let b = pb.array("B", &[sym(n) * 2], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) * 2 - 1);
        pb.assign(elem(a, [idx(i)]), ival(idx(i)));
        pb.end();
        let j = pb.begin_par("j", con(0), sym(n) - 1);
        pb.assign(elem(b, [idx(j)]), arr(a, [idx(j) + sym(n)]));
        pb.end();
        let prog = pb.finish();
        let q = CommQuery::new(&prog, Bindings::new(4).set(n, 32));
        let st = prog.all_statements();
        let mut ps = build_pair_system(
            &prog,
            &q.bind,
            &st[0],
            &st[1],
            CommMode::LoopIndependent.shared_mode(),
        );
        ps.add_elem_equality(&q.bind, &[idx(i)], &[idx(j) + sym(n)]);
        // Truthful directions: only bwd (producer two blocks ahead).
        let mut want = DistSet::empty();
        want.insert(-2);
        assert_eq!(q.distance_spectrum(&ps, false, true), Some(want));
        // Claim fwd is also feasible, as an upstream Unknown verdict
        // would: every exact fwd probe is infeasible, so the spectrum
        // cannot cover the claimed direction — keep the barrier.
        assert_eq!(q.distance_spectrum(&ps, true, true), None);
    }

    /// The pattern-lattice fusion bug: `Neighbor ⊔ Producer1` must land
    /// on `PairWise`, never `General`.
    #[test]
    fn neighbor_join_producer1_fuses_to_pairwise() {
        let nb = CommPattern::Neighbor {
            fwd: true,
            bwd: false,
        };
        let joined = nb.join(CommPattern::Producer1);
        assert_eq!(
            joined,
            CommPattern::PairWise {
                dists: DistSet::neighbor(true, false)
            }
        );
        // Outcome-level fusion keeps the producer as a wait target.
        let o1 = CommOutcome::of(nb);
        let o2 = CommOutcome {
            pattern: CommPattern::Producer1,
            producer: Some(ProducerSpec::Master),
            pair_producers: Vec::new(),
        };
        let out = o1.join(o2);
        assert_eq!(
            out.pattern,
            CommPattern::PairWise {
                dists: DistSet::neighbor(true, false)
            }
        );
        assert_eq!(out.pair_producers, vec![ProducerSpec::Master]);
        assert_eq!(out.pair_fanin(), 2);
    }

    /// Two `Producer1`s naming different producers fuse into a two-entry
    /// pairwise producer set instead of collapsing to `General`.
    #[test]
    fn distinct_producers_fuse_to_pairwise() {
        let mk = |spec: ProducerSpec| CommOutcome {
            pattern: CommPattern::Producer1,
            producer: Some(spec),
            pair_producers: Vec::new(),
        };
        let o1 = mk(ProducerSpec::Master);
        let o2 = mk(ProducerSpec::CyclicOwner {
            sub: ir::Affine::constant(3),
        });
        let out = o1.clone().join(o2.clone());
        assert_eq!(
            out.pattern,
            CommPattern::PairWise {
                dists: DistSet::empty()
            }
        );
        assert_eq!(out.pair_producers.len(), 2);
        // Same producer twice stays Producer1.
        let same = o1.clone().join(o1.clone());
        assert_eq!(same.pattern, CommPattern::Producer1);
        // A producer without an evaluable spec cannot become a wait
        // target: degrade to General.
        let lost = o1.join(CommOutcome::of(CommPattern::Producer1));
        assert_eq!(lost.pattern, CommPattern::General);
    }

    /// DistSet basics: insertion bounds, ordering, rendering.
    #[test]
    fn distset_round_trip() {
        let mut s = DistSet::empty();
        assert!(s.insert(3));
        assert!(s.insert(-2));
        assert!(s.insert(1));
        assert!(!s.insert(0));
        assert!(!s.insert(MAX_PAIR_DIST + 1));
        assert!(s.contains(3) && s.contains(-2) && !s.contains(2));
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![-2, 1, 3]);
        assert_eq!(s.render(), "{-2,+1,+3}");
        let u = s.union(DistSet::neighbor(true, true));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![-2, -1, 1, 3]);
    }

    /// Jacobi-style seq loop around two DOALLs: carried comm is neighbor
    /// (pipeline-able), not general.
    #[test]
    fn carried_stencil_is_neighbor() {
        let mut pb = ProgramBuilder::new("sweep");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let t = pb.begin_seq("t", con(0), con(9));
        let i = pb.begin_par("i", con(1), sym(n) - 2);
        pb.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 2);
        pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
        pb.end();
        pb.end();
        let _ = t;
        let prog = pb.finish();
        let q = CommQuery::new(&prog, Bindings::new(4).set(n, 64));
        let st = prog.all_statements();
        let tnode = prog.body[0];
        // Carried dependence: a(j) written at iteration t, read at t+1 by
        // B's stencil with offsets ±1 → neighbor reach.
        let pat = q.comm_stmts(&st[1], &st[0], CommMode::CarriedBy(tnode));
        assert_eq!(
            pat,
            CommPattern::Neighbor {
                fwd: true,
                bwd: true
            }
        );
    }

    /// Same-processor carried dependence: no comm even across iterations.
    #[test]
    fn carried_aligned_is_local() {
        let mut pb = ProgramBuilder::new("acc");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let t = pb.begin_seq("t", con(0), con(9));
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        p_assign_double(&mut pb, a, i);
        pb.end();
        pb.end();
        let _ = t;
        let prog = pb.finish();
        let q = CommQuery::new(&prog, Bindings::new(4).set(n, 64));
        let st = prog.all_statements();
        let tnode = prog.body[0];
        assert_eq!(
            q.comm_stmts(&st[0], &st[0], CommMode::CarriedBy(tnode)),
            CommPattern::NoComm
        );
    }

    fn p_assign_double(pb: &mut ProgramBuilder, a: ir::ArrayId, i: ir::LoopId) {
        pb.assign(elem(a, [idx(i)]), ex(2.0) * arr(a, [idx(i)]));
    }

    /// Two loops with two statements each: a 2x2 group query exercises
    /// the parallel warm pool; the cached analyzer must agree with the
    /// sequential uncached reference and must register memo traffic.
    #[test]
    fn cached_parallel_matches_sequential_uncached() {
        let mut pb = ProgramBuilder::new("groups");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let c = pb.array("C", &[sym(n)], dist_block());
        let d = pb.array("D", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(1), sym(n) - 2);
        pb.assign(elem(a, [idx(i)]), ival(idx(i)));
        pb.assign(elem(b, [idx(i)]), ival(idx(i)) * ex(2.0));
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 2);
        pb.assign(elem(c, [idx(j)]), arr(a, [idx(j) - 1]));
        pb.assign(elem(d, [idx(j)]), arr(b, [idx(j)]) + arr(a, [idx(j) + 1]));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 64);

        let reference =
            CommQuery::with_config(&prog, bind.clone(), AnalysisConfig::sequential_uncached());
        let cached = CommQuery::with_config(
            &prog,
            bind,
            AnalysisConfig {
                cache: true,
                threads: 4,
            },
        );
        let st = prog.all_statements();
        let g1 = vec![st[0].clone(), st[1].clone()];
        let g2 = vec![st[2].clone(), st[3].clone()];
        let want = reference.comm_groups_detailed(&g1, &g2, CommMode::LoopIndependent);
        let got = cached.comm_groups_detailed(&g1, &g2, CommMode::LoopIndependent);
        assert_eq!(want, got);

        // The second identical query is answered entirely from the memo.
        let again = cached.comm_groups_detailed(&g1, &g2, CommMode::LoopIndependent);
        assert_eq!(want, again);
        let stats = cached.stats();
        assert!(stats.pair_hits > 0, "{stats:?}");
        assert!(stats.pair_misses > 0, "{stats:?}");
        assert!(stats.fme.feas_misses > 0, "{stats:?}");
        let ref_stats = reference.stats();
        assert_eq!(ref_stats.pair_hits + ref_stats.pair_misses, 0);
    }
}
