//! Affine (linear + constant) integer expressions over [`VarId`]s.

use crate::rational::{gcd, Overflow, Rational};
use crate::var::{VarId, VarTable};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An affine expression `constant + Σ coeff·var` with `i128` coefficients.
///
/// Zero coefficients are never stored, so structural equality coincides
/// with mathematical equality.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    terms: BTreeMap<VarId, i128>,
    constant: i128,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// The constant expression `c`.
    pub fn constant(c: i128) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression `1·v`.
    pub fn var(v: VarId) -> Self {
        Self::term(v, 1)
    }

    /// The expression `c·v`.
    pub fn term(v: VarId, c: i128) -> Self {
        let mut terms = BTreeMap::new();
        if c != 0 {
            terms.insert(v, c);
        }
        LinExpr { terms, constant: 0 }
    }

    /// Coefficient of `v` (0 if absent).
    pub fn coeff(&self, v: VarId) -> i128 {
        self.terms.get(&v).copied().unwrap_or(0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> i128 {
        self.constant
    }

    /// Iterate `(var, coeff)` pairs with nonzero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, i128)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// True if the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// True if the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.constant == 0
    }

    /// Number of variables with nonzero coefficients.
    pub fn num_vars(&self) -> usize {
        self.terms.len()
    }

    /// Set the coefficient of `v` (removing the term when zero).
    pub fn set_coeff(&mut self, v: VarId, c: i128) {
        if c == 0 {
            self.terms.remove(&v);
        } else {
            self.terms.insert(v, c);
        }
    }

    /// Add `c·v` to the expression.
    pub fn add_term(&mut self, v: VarId, c: i128) {
        let nc = self.coeff(v).checked_add(c).expect("linexpr overflow");
        self.set_coeff(v, nc);
    }

    /// Multiply the whole expression by `k`.
    pub fn scaled(&self, k: i128) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        let mut out = LinExpr::constant(self.constant.checked_mul(k).expect("linexpr overflow"));
        for (v, c) in self.terms() {
            out.set_coeff(v, c.checked_mul(k).expect("linexpr overflow"));
        }
        out
    }

    /// Add `c·v`, or `Err(Overflow)`.
    pub fn try_add_term(&mut self, v: VarId, c: i128) -> Result<(), Overflow> {
        let nc = self.coeff(v).checked_add(c).ok_or(Overflow)?;
        self.set_coeff(v, nc);
        Ok(())
    }

    /// `k · self`, or `Err(Overflow)`.
    pub fn try_scaled(&self, k: i128) -> Result<LinExpr, Overflow> {
        if k == 0 {
            return Ok(LinExpr::zero());
        }
        let mut out = LinExpr::constant(self.constant.checked_mul(k).ok_or(Overflow)?);
        for (v, c) in self.terms() {
            out.set_coeff(v, c.checked_mul(k).ok_or(Overflow)?);
        }
        Ok(out)
    }

    /// `self + rhs`, or `Err(Overflow)`.
    pub fn try_add(mut self, rhs: &LinExpr) -> Result<LinExpr, Overflow> {
        self.constant = self.constant.checked_add(rhs.constant).ok_or(Overflow)?;
        for (v, c) in rhs.terms() {
            self.try_add_term(v, c)?;
        }
        Ok(self)
    }

    /// The FME cross-combination `ka·a + kb·b`, or `Err(Overflow)`.
    ///
    /// This is the single operation where elimination chains blow up
    /// coefficients multiplicatively; everything in it is checked.
    pub fn try_combine(a: &LinExpr, ka: i128, b: &LinExpr, kb: i128) -> Result<LinExpr, Overflow> {
        a.try_scaled(ka)?.try_add(&b.try_scaled(kb)?)
    }

    /// `self` with `v` replaced by `replacement`, or `Err(Overflow)`.
    pub fn try_substituted(&self, v: VarId, replacement: &LinExpr) -> Result<LinExpr, Overflow> {
        debug_assert_eq!(replacement.coeff(v), 0, "substitution must eliminate var");
        let c = self.coeff(v);
        if c == 0 {
            return Ok(self.clone());
        }
        let mut out = self.clone();
        out.set_coeff(v, 0);
        out.try_add(&replacement.try_scaled(c)?)
    }

    /// gcd of all variable coefficients (0 if there are none).
    pub fn coeff_gcd(&self) -> i128 {
        let mut g = 0;
        for (_, c) in self.terms() {
            g = gcd(g, c);
        }
        g
    }

    /// Replace `v` with `replacement` (which must not mention `v`).
    pub fn substituted(&self, v: VarId, replacement: &LinExpr) -> LinExpr {
        debug_assert_eq!(replacement.coeff(v), 0, "substitution must eliminate var");
        let c = self.coeff(v);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.set_coeff(v, 0);
        out + replacement.scaled(c)
    }

    /// Evaluate with an integer assignment; variables not present in
    /// `assign` are treated as an error (panic) because a silent default
    /// would corrupt feasibility oracles.
    pub fn eval_int(&self, assign: &dyn Fn(VarId) -> i128) -> i128 {
        let mut acc = self.constant;
        for (v, c) in self.terms() {
            acc = acc
                .checked_add(c.checked_mul(assign(v)).expect("eval overflow"))
                .expect("eval overflow");
        }
        acc
    }

    /// Evaluate with a rational assignment, or `Err(Overflow)`.
    pub fn try_eval_rat(&self, assign: &dyn Fn(VarId) -> Rational) -> Result<Rational, Overflow> {
        let mut acc = Rational::int(self.constant);
        for (v, c) in self.terms() {
            acc = acc.checked_add(Rational::int(c).checked_mul(assign(v))?)?;
        }
        Ok(acc)
    }

    /// Evaluate with a rational assignment. Panics on overflow — used
    /// only by test oracles, never on the analysis path.
    pub fn eval_rat(&self, assign: &dyn Fn(VarId) -> Rational) -> Rational {
        self.try_eval_rat(assign).expect("eval overflow")
    }

    /// Render with variable names from `vt`.
    pub fn display<'a>(&'a self, vt: &'a VarTable) -> impl fmt::Display + 'a {
        DisplayLinExpr { e: self, vt }
    }
}

struct DisplayLinExpr<'a> {
    e: &'a LinExpr,
    vt: &'a VarTable,
}

impl fmt::Display for DisplayLinExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.e.terms() {
            if first {
                if c == 1 {
                    write!(f, "{}", self.vt.name(v))?;
                } else if c == -1 {
                    write!(f, "-{}", self.vt.name(v))?;
                } else {
                    write!(f, "{}{}", c, self.vt.name(v))?;
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {}", self.vt.name(v))?;
                } else {
                    write!(f, " + {}{}", c, self.vt.name(v))?;
                }
            } else if c == -1 {
                write!(f, " - {}", self.vt.name(v))?;
            } else {
                write!(f, " - {}{}", -c, self.vt.name(v))?;
            }
        }
        let k = self.e.constant_term();
        if first {
            write!(f, "{k}")?;
        } else if k > 0 {
            write!(f, " + {k}")?;
        } else if k < 0 {
            write!(f, " - {}", -k)?;
        }
        Ok(())
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.terms() {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{c}*{v:?}")?;
            first = false;
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant != 0 {
            write!(f, " + {}", self.constant)?;
        }
        Ok(())
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.constant = self
            .constant
            .checked_add(rhs.constant)
            .expect("linexpr overflow");
        for (v, c) in rhs.terms() {
            self.add_term(v, c);
        }
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scaled(-1)
    }
}

impl Mul<i128> for LinExpr {
    type Output = LinExpr;
    fn mul(self, k: i128) -> LinExpr {
        self.scaled(k)
    }
}

impl From<i128> for LinExpr {
    fn from(c: i128) -> Self {
        LinExpr::constant(c)
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::var(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::{VarKind, VarTable};

    fn vars() -> (VarTable, VarId, VarId) {
        let mut vt = VarTable::new();
        let i = vt.fresh("i", VarKind::LoopIndex);
        let j = vt.fresh("j", VarKind::LoopIndex);
        (vt, i, j)
    }

    #[test]
    fn build_and_query() {
        let (_, i, j) = vars();
        let e = LinExpr::term(i, 2) + LinExpr::term(j, -3) + LinExpr::constant(7);
        assert_eq!(e.coeff(i), 2);
        assert_eq!(e.coeff(j), -3);
        assert_eq!(e.constant_term(), 7);
        assert_eq!(e.num_vars(), 2);
        assert!(!e.is_constant());
    }

    #[test]
    fn zero_coeffs_are_dropped() {
        let (_, i, _) = vars();
        let e = LinExpr::term(i, 2) + LinExpr::term(i, -2);
        assert!(e.is_constant());
        assert_eq!(e, LinExpr::zero());
    }

    #[test]
    fn scaling() {
        let (_, i, _) = vars();
        let e = (LinExpr::var(i) + LinExpr::constant(3)).scaled(-2);
        assert_eq!(e.coeff(i), -2);
        assert_eq!(e.constant_term(), -6);
        assert!(e.scaled(0).is_zero());
    }

    #[test]
    fn substitution() {
        let (_, i, j) = vars();
        // e = 2i + 1, substitute i := j + 5 -> 2j + 11
        let e = LinExpr::term(i, 2) + LinExpr::constant(1);
        let r = LinExpr::var(j) + LinExpr::constant(5);
        let s = e.substituted(i, &r);
        assert_eq!(s.coeff(i), 0);
        assert_eq!(s.coeff(j), 2);
        assert_eq!(s.constant_term(), 11);
    }

    #[test]
    fn evaluation() {
        let (_, i, j) = vars();
        let e = LinExpr::term(i, 2) + LinExpr::term(j, -1) + LinExpr::constant(4);
        let val = e.eval_int(&|v| if v == i { 3 } else { 10 });
        assert_eq!(val, 2 * 3 - 10 + 4);
    }

    #[test]
    fn coeff_gcd() {
        let (_, i, j) = vars();
        let e = LinExpr::term(i, 6) + LinExpr::term(j, -9);
        assert_eq!(e.coeff_gcd(), 3);
        assert_eq!(LinExpr::constant(5).coeff_gcd(), 0);
    }

    #[test]
    fn display_is_readable() {
        let (vt, i, j) = vars();
        let e = LinExpr::term(i, 1) + LinExpr::term(j, -2) + LinExpr::constant(-3);
        assert_eq!(format!("{}", e.display(&vt)), "i - 2j - 3");
    }
}
