//! Figure: barrier cost versus processor count (the motivation after
//! Chen/Su/Yew [10] — "run-time overhead typically grows quickly as the
//! number of processors increases"). Measures the central
//! sense-reversing barrier, the dissemination tree barrier, and, for
//! contrast, a counter handoff, on real threads.

use runtime::{BarrierEpoch, CentralBarrier, Counters, Team, TreeBarrier};
use spmd_bench::Table;
use std::sync::Arc;
use std::time::Instant;

const ITERS: u64 = 5_000;

fn time_central(p: usize) -> f64 {
    let team = Team::new(p);
    let b = Arc::new(CentralBarrier::new(p));
    let t0 = Instant::now();
    let bb = Arc::clone(&b);
    team.run(move |_pid| {
        let mut sense = BarrierEpoch::default();
        for _ in 0..ITERS {
            bb.wait(&mut sense);
        }
    });
    t0.elapsed().as_nanos() as f64 / ITERS as f64
}

fn time_tree(p: usize) -> f64 {
    let team = Team::new(p);
    let b = Arc::new(TreeBarrier::new(p));
    let t0 = Instant::now();
    let bb = Arc::clone(&b);
    team.run(move |pid| {
        let mut epoch = 0usize;
        for _ in 0..ITERS {
            bb.wait(pid, &mut epoch);
        }
    });
    t0.elapsed().as_nanos() as f64 / ITERS as f64
}

/// One producer increments, everyone else waits — the cost of the
/// counter synchronization the optimizer substitutes for barriers.
fn time_counter(p: usize) -> f64 {
    let team = Team::new(p);
    let c = Arc::new(Counters::new(1));
    let t0 = Instant::now();
    let cc = Arc::clone(&c);
    team.run(move |pid| {
        for k in 1..=ITERS {
            if pid == 0 {
                cc.increment(0);
            } else {
                cc.wait_ge(0, k);
            }
        }
    });
    t0.elapsed().as_nanos() as f64 / ITERS as f64
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    // With fewer cores than processors the spin-yield path dominates and
    // the growth trend is still visible; BE_MAX_P overrides the sweep.
    let max_p = std::env::var("BE_MAX_P")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| cores.max(4).min(8));
    println!("Figure: synchronization cost vs processors ({cores} cores available)\n");
    let mut t = Table::new(&["P", "central barrier ns", "tree barrier ns", "counter ns"]);
    let mut p = 1;
    while p <= max_p {
        t.row(vec![
            p.to_string(),
            format!("{:.0}", time_central(p)),
            format!("{:.0}", time_tree(p)),
            format!("{:.0}", time_counter(p)),
        ]);
        p *= 2;
    }
    print!("{}", t.render());
    println!("\nExpected shape: barrier cost grows with P; the counter handoff stays flat.");
}
