//! Write a custom kernel and interrogate the communication analysis
//! directly: for every pair of adjacent parallel loops, print what the
//! Fourier-Motzkin test decided and why the barrier stayed or went.
//!
//! ```sh
//! cargo run --example custom_kernel
//! ```

use barrier_elim::analysis::{Bindings, CommMode, CommQuery};
use barrier_elim::ir::build::*;

fn main() {
    // Three phases with different communication shapes:
    //   phase 1 -> phase 2: aligned        (no communication)
    //   phase 2 -> phase 3: shifted by one (neighbor)
    //   phase 3 -> phase 4: transposed-ish (general)
    let mut pb = ProgramBuilder::new("custom");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n)], dist_block());
    let b = pb.array("B", &[sym(n)], dist_block());
    let c = pb.array("C", &[sym(n)], dist_block());
    let d = pb.array("D", &[sym(n)], dist_block());

    let i1 = pb.begin_par("i1", con(0), sym(n) - 1);
    pb.assign(elem(b, [idx(i1)]), arr(a, [idx(i1)]) * ex(2.0));
    pb.end();
    let i2 = pb.begin_par("i2", con(0), sym(n) - 1);
    pb.assign(elem(c, [idx(i2)]), arr(b, [idx(i2)]) + ex(1.0));
    pb.end();
    let i3 = pb.begin_par("i3", con(1), sym(n) - 1);
    pb.assign(elem(d, [idx(i3)]), arr(c, [idx(i3) - 1]));
    pb.end();
    let i4 = pb.begin_par("i4", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i4)]), arr(d, [sym(n) - 1 - idx(i4)]));
    pb.end();
    let prog = pb.finish();

    println!("{}", barrier_elim::ir::pretty::pretty(&prog));

    let bind = Bindings::new(8).set(n, 128);
    let query = CommQuery::new(&prog, bind.clone());
    let stmts = prog.all_statements();

    println!("pairwise loop-independent communication (P = 8, n = 128):\n");
    for w in stmts.windows(2) {
        let outcome = query.comm_stmts_detailed(&w[0], &w[1], CommMode::LoopIndependent);
        println!(
            "  loop {} -> loop {}: {:?}",
            prog.loop_name(prog.expect_loop(w[0].loops[0]).id),
            prog.loop_name(prog.expect_loop(w[1].loops[0]).id),
            outcome.pattern,
        );
    }

    println!("\nresulting schedule:\n");
    let plan = barrier_elim::spmd_opt::optimize(&prog, &bind);
    print!("{}", barrier_elim::spmd_opt::render_plan(&prog, &plan));
    let st = plan.static_stats();
    println!(
        "\nstatic stats: {} barrier(s), {} neighbor, {} counter, {} eliminated",
        st.barriers, st.neighbor_syncs, st.counter_syncs, st.eliminated
    );
}
