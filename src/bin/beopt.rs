//! `beopt` — the barrier-elimination driver.
//!
//! Reads a kernel in the text dialect (see `kernels/*.be` and the
//! `frontend` crate docs), runs the synchronization optimizer, and
//! reports the schedule. With `--run` it also executes both schedules
//! with virtual processors, verifies the optimized results against the
//! sequential semantics, and prints dynamic synchronization counts.
//!
//! Observability flags:
//!
//! * `--explain` renders the optimizer's per-sync-slot decision log —
//!   which elimination condition fired (or failed) at every phase
//!   boundary, loop bottom, and region end.
//! * `--explain-json <path>` writes the same log as deterministic JSON
//!   (`-` for stdout).
//! * `--metrics-json <path>` (with `--run`) executes the optimized
//!   schedule on real threads, prints a per-sync-site wait table, and
//!   writes per-site/per-processor histograms as JSON.
//! * `--trace-out <path>` writes a Chrome-trace (chrome://tracing /
//!   Perfetto) timeline with one track per processor — from the real
//!   threads when `--metrics-json` ran them, otherwise from the virtual
//!   interleaver's logical clock.
//!
//! ```sh
//! beopt kernels/jacobi.be --nprocs 4 --set n=64 --set tmax=10 \
//!     --run --explain --metrics-json out.json --trace-out trace.json
//! ```

use barrier_elim::analysis::Bindings;
use barrier_elim::frontend;
use barrier_elim::interp::{
    run_parallel_degrading, run_parallel_observed, run_parallel_recovering, run_sequential,
    run_virtual, run_virtual_traced, Mem, ObserveOptions, ScheduleOrder, SyncChaos,
};
use barrier_elim::ir::Program;
use barrier_elim::obs::{self, TraceBuilder};
use barrier_elim::oracle::{ChaosConfig, ChaosInjector, DropSpec};
use barrier_elim::runtime::events::{self, EventKind, ProfileData, ProfileOptions, Profiler};
use barrier_elim::runtime::{RetryPolicy, Team, NO_SITE};
use barrier_elim::spmd_opt::{
    demote_sites, fork_join, optimize_explained, render_plan, OptimizeOptions, SyncOp,
};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    path: String,
    nprocs: i64,
    sets: Vec<(String, i64)>,
    run: bool,
    quiet: bool,
    explain: bool,
    explain_json: Option<String>,
    metrics_json: Option<String>,
    trace_out: Option<String>,
    deadline_ms: Option<u64>,
    recover: bool,
    degrade: bool,
    max_attempts: Option<u32>,
    chaos_seed: Option<u64>,
    chaos_drop: Option<DropSpec>,
    profile: bool,
    profile_json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: beopt <file.be> [--nprocs P] [--set sym=value]... [--run] [--quiet]\n\
         \x20            [--explain] [--explain-json PATH] [--metrics-json PATH] [--trace-out PATH]\n\
         \n\
         --nprocs P          number of processors for analysis/execution (default 4)\n\
         --set sym=v         bind a symbolic constant (required for --run)\n\
         --run               execute baseline + optimized schedules and verify\n\
         --quiet             suppress the schedule listing (stats only)\n\
         --explain           print the per-sync-point decision log (why each\n\
         \x20                    barrier was kept, downgraded, or eliminated)\n\
         --explain-json P    write the decision log as JSON to P (- for stdout)\n\
         --metrics-json P    with --run: execute on real threads, print the\n\
         \x20                    per-sync-site wait table, write histograms to P\n\
         --trace-out P       write a chrome://tracing timeline JSON to P\n\
         --deadline MS       with --run: execute on real threads under a\n\
         \x20                    watchdog; every blocking wait is bounded by MS\n\
         \x20                    milliseconds and a hang/panic becomes a printed\n\
         \x20                    failure report instead of a wedged process\n\
         --recover           with --run: execute under the self-healing\n\
         \x20                    supervisor — on a detected fault, roll back to\n\
         \x20                    the region checkpoint, demote the faulting site\n\
         \x20                    to a barrier, and retry with backoff; prints a\n\
         \x20                    recovery report and exits 0 when the run\n\
         \x20                    completes (even after retries)\n\
         --degrade           with --run: execute under the total-availability\n\
         \x20                    supervisor — recovery plus permanent-loss\n\
         \x20                    classification, elastic team shrink, and the\n\
         \x20                    sequential fallback; prints a degradation\n\
         \x20                    report and exits 0 whenever the run completes\n\
         \x20                    with verified results, even on a lower rung\n\
         --max-attempts N    with --recover/--degrade: per-round retry budget\n\
         \x20                    (default 9)\n\
         --chaos-seed S      with --run + --deadline: perturb every sync event\n\
         \x20                    with seeded benign chaos\n\
         --chaos-drop S:P:V  with --run + --deadline: drop processor P's posts\n\
         \x20                    at sync site S from dynamic visit V on (a\n\
         \x20                    persistent fault; without --recover this run\n\
         \x20                    fails, with it the supervisor absorbs it)\n\
         --profile           with --run: record lock-free event rings during\n\
         \x20                    the real-thread run (and the compile), run an\n\
         \x20                    all-barrier baseline, and print the per-site\n\
         \x20                    critical-path and observed-vs-predicted tables\n\
         --profile-json P    write the analyzed profile as JSON to P (- for\n\
         \x20                    stdout); implies --profile"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        path: String::new(),
        nprocs: 4,
        sets: Vec::new(),
        run: false,
        quiet: false,
        explain: false,
        explain_json: None,
        metrics_json: None,
        trace_out: None,
        deadline_ms: None,
        recover: false,
        degrade: false,
        max_attempts: None,
        chaos_seed: None,
        chaos_drop: None,
        profile: false,
        profile_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nprocs" => {
                args.nprocs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--set" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                let v: i64 = v.parse().unwrap_or_else(|_| usage());
                args.sets.push((k.to_string(), v));
            }
            "--run" => args.run = true,
            "--quiet" => args.quiet = true,
            "--explain" => args.explain = true,
            "--explain-json" => args.explain_json = Some(it.next().unwrap_or_else(|| usage())),
            "--metrics-json" => args.metrics_json = Some(it.next().unwrap_or_else(|| usage())),
            "--trace-out" => args.trace_out = Some(it.next().unwrap_or_else(|| usage())),
            "--deadline" => {
                args.deadline_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--recover" => args.recover = true,
            "--degrade" => args.degrade = true,
            "--max-attempts" => {
                args.max_attempts = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--chaos-seed" => {
                args.chaos_seed = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--chaos-drop" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let parts: Vec<_> = spec.split(':').collect();
                let parse3 = || -> Option<DropSpec> {
                    let [s, p, v] = parts.as_slice() else {
                        return None;
                    };
                    Some(DropSpec {
                        site: s.parse().ok()?,
                        pid: p.parse().ok()?,
                        from_visit: v.parse().ok()?,
                    })
                };
                args.chaos_drop = Some(parse3().unwrap_or_else(|| usage()));
            }
            "--profile" => args.profile = true,
            "--profile-json" => {
                args.profile = true;
                args.profile_json = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            _ if args.path.is_empty() && !a.starts_with('-') => args.path = a,
            _ => usage(),
        }
    }
    if args.path.is_empty() {
        usage();
    }
    args
}

fn bindings_for(prog: &Program, args: &Args) -> Result<Bindings, String> {
    let mut bind = Bindings::new(args.nprocs);
    for (name, value) in &args.sets {
        let Some(pos) = prog.syms.iter().position(|s| &s.name == name) else {
            return Err(format!("--set {name}: no such sym in the program"));
        };
        bind.bind(barrier_elim::ir::SymId(pos as u32), *value);
    }
    Ok(bind)
}

fn write_output(path: &str, what: &str, content: &str) -> Result<(), ExitCode> {
    if path == "-" {
        print!("{content}");
        return Ok(());
    }
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("beopt: cannot write {what} to {path}: {e}");
        return Err(ExitCode::FAILURE);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let src = match std::fs::read_to_string(&args.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("beopt: cannot read {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    let prog = match frontend::parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("beopt: {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    let bind = match bindings_for(&prog, &args) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("beopt: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Verify the DOALL markings before trusting them.
    let bad = barrier_elim::analysis::check_parallel_loops(&prog, &bind);
    if !bad.is_empty() {
        for node in &bad {
            let l = prog.expect_loop(*node);
            eprintln!(
                "beopt: warning: `doall {}` carries a dependence (treating results cautiously)",
                l.name
            );
        }
    }
    for w in barrier_elim::analysis::check_privatizable(&prog, &bind) {
        eprintln!("beopt: warning: {w}");
    }

    let mut oo = OptimizeOptions::default();
    let compile_profiler = if args.profile {
        // The ambient recorder is single-writer per track: pin analysis
        // to this thread so the pair probe never fires from a warming
        // worker. Decisions are config-invariant, so the plan and log
        // are unchanged — only compile wall-clock pays.
        oo.analysis.threads = 1;
        Some(Arc::new(Profiler::new(1, ProfileOptions::default())))
    } else {
        None
    };
    let guard = compile_profiler
        .as_ref()
        .map(|p| events::install(Arc::clone(p), 0));
    if guard.is_some() {
        barrier_elim::analysis::set_pair_probe(Some(Arc::new(|pr| {
            let kind = if pr.memo_hit {
                EventKind::FmeHit
            } else {
                EventKind::FmeMiss
            };
            events::emit(kind, NO_SITE, pr.elapsed_ns);
        })));
    }
    let (plan, log, stats) = optimize_explained(&prog, &bind, oo);
    if guard.is_some() {
        barrier_elim::analysis::set_pair_probe(None);
    }
    drop(guard);
    let compile_data: Option<ProfileData> = compile_profiler.as_ref().map(|p| p.snapshot());
    let base = fork_join(&prog, &bind);

    if !args.quiet {
        println!("--- optimized SPMD schedule ---");
        print!("{}", render_plan(&prog, &plan));
        println!();
    }

    if args.explain {
        print!("{}", obs::render_decisions(&prog, &log));
        println!();
        print!("{}", obs::render_analysis_stats(&stats));
        println!();
    }

    if let Some(path) = &args.explain_json {
        let doc = obs::explain_json(&prog, args.nprocs, &plan, &base, &log);
        if write_output(path, "explain JSON", &doc.to_string_pretty()).is_err() {
            return ExitCode::FAILURE;
        }
        if path != "-" {
            println!("explain: decision log written to {path}");
        }
    }

    let st_b = base.static_stats();
    let st_o = plan.static_stats();
    println!(
        "static: fork-join {} barriers | optimized {} barriers, {} neighbor, {} counter, {} eliminated",
        st_b.barriers, st_o.barriers, st_o.neighbor_syncs, st_o.counter_syncs, st_o.eliminated
    );

    if !args.run {
        if args.metrics_json.is_some() {
            eprintln!("beopt: --metrics-json needs --run");
            return ExitCode::FAILURE;
        }
        if args.deadline_ms.is_some() {
            eprintln!("beopt: --deadline needs --run (it guards the real-thread execution)");
            return ExitCode::FAILURE;
        }
        if args.recover {
            eprintln!("beopt: --recover needs --run (it supervises the real-thread execution)");
            return ExitCode::FAILURE;
        }
        if args.degrade {
            eprintln!("beopt: --degrade needs --run (it supervises the real-thread execution)");
            return ExitCode::FAILURE;
        }
        if args.chaos_seed.is_some() || args.chaos_drop.is_some() {
            eprintln!("beopt: --chaos-seed/--chaos-drop need --run");
            return ExitCode::FAILURE;
        }
        if args.profile {
            eprintln!("beopt: --profile needs --run (it measures the real-thread execution)");
            return ExitCode::FAILURE;
        }
        if let Some(path) = &args.trace_out {
            eprintln!("beopt: --trace-out needs --run (the timeline comes from an execution)");
            let _ = path;
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    // Need every sym bound.
    for (k, s) in prog.syms.iter().enumerate() {
        if bind.get(barrier_elim::ir::SymId(k as u32)).is_none() {
            eprintln!("beopt: --run needs --set {}=<value>", s.name);
            return ExitCode::FAILURE;
        }
    }
    let oracle = Mem::new(&prog, &bind);
    run_sequential(&prog, &bind, &oracle);
    let mem_b = Mem::new(&prog, &bind);
    let out_b = run_virtual(&prog, &bind, &base, &mem_b, ScheduleOrder::RoundRobin);

    // Optimized run: traced-virtual when a timeline is wanted (and real
    // threads are not providing one), plain-virtual otherwise.
    let mem_o = Mem::new(&prog, &bind);
    let want_virtual_trace = args.trace_out.is_some() && args.metrics_json.is_none();
    let (out_o, virt_spans) = if want_virtual_trace {
        let (o, s) = run_virtual_traced(&prog, &bind, &plan, &mem_o, ScheduleOrder::Reverse);
        (o, Some(s))
    } else {
        (
            run_virtual(&prog, &bind, &plan, &mem_o, ScheduleOrder::Reverse),
            None,
        )
    };
    let diff = mem_o.max_abs_diff(&oracle);
    println!(
        "dynamic: fork-join {} barriers, {} dispatches | optimized {} barriers, {} counters, {} neighbor posts",
        out_b.counts.barriers,
        out_b.counts.dispatches,
        out_o.counts.barriers,
        out_o.counts.counter_increments,
        out_o.counts.neighbor_posts,
    );
    if diff > 1e-9 {
        eprintln!("beopt: VERIFICATION FAILED: optimized results diverge by {diff:e}");
        return ExitCode::FAILURE;
    }
    println!("verify: optimized results match sequential execution (max diff {diff:e})");

    let mut spans: Option<Vec<obs::Span>> = virt_spans;
    let mut trace_source = "virtual interleaver (1 step = 1µs logical clock)";
    let mut run_profile: Option<(ProfileData, Vec<barrier_elim::runtime::SiteMeta>)> = None;

    if args.metrics_json.is_some()
        || args.deadline_ms.is_some()
        || args.recover
        || args.degrade
        || args.profile
    {
        // Real-thread execution with per-site telemetry (and a timeline
        // if one was requested), optionally watchdog-guarded and/or
        // supervised by the self-healing recovery loop.
        let prog_a = Arc::new(prog.clone());
        let bind_a = Arc::new(bind.clone());
        let mem_p = Arc::new(Mem::new(&prog, &bind));
        let team = Team::new(args.nprocs as usize);
        let chaos: Option<Arc<dyn SyncChaos>> =
            if args.chaos_seed.is_some() || args.chaos_drop.is_some() {
                Some(Arc::new(ChaosInjector::with_config(
                    args.chaos_seed.unwrap_or(0),
                    ChaosConfig {
                        drop: args.chaos_drop.clone(),
                        ..ChaosConfig::default()
                    },
                )))
            } else {
                None
            };
        if chaos.is_some() && args.deadline_ms.is_none() && !args.recover && !args.degrade {
            eprintln!("beopt: chaos injection needs --deadline (or --recover/--degrade), else a dropped post wedges the run");
            return ExitCode::FAILURE;
        }
        // Recovery needs bounded waits to detect faults at all: default
        // the watchdog when --recover/--degrade is given without
        // --deadline.
        let deadline_ms = match (args.deadline_ms, args.recover || args.degrade) {
            (Some(ms), _) => Some(ms),
            (None, true) => Some(250),
            (None, false) => None,
        };
        let opts = ObserveOptions {
            telemetry: true,
            trace: args.trace_out.is_some(),
            deadline: deadline_ms.map(std::time::Duration::from_millis),
            chaos,
            profile: args.profile.then(ProfileOptions::default),
            ..ObserveOptions::default()
        };
        let mut ledger: Option<(Vec<usize>, Vec<usize>)> = None;
        let mut stats_totals = None;
        let mut degrade_summary: Option<(String, usize, usize)> = None;
        let (out_p, attempts_used) = if args.degrade {
            let policy = RetryPolicy {
                max_attempts: args
                    .max_attempts
                    .unwrap_or(RetryPolicy::default().max_attempts),
                ..RetryPolicy::default()
            };
            let mut d = run_parallel_degrading(
                &prog_a,
                &bind_a,
                &plan,
                &mem_p,
                &team,
                &opts,
                &policy,
                &|p, b| barrier_elim::spmd_opt::optimize(p, b),
            );
            print!("{}", obs::render_degradation(&d.report(args.chaos_seed)));
            if !d.completed() {
                eprintln!("beopt: EXECUTION FAILED: degradation ladder did not complete the run");
                return ExitCode::FAILURE;
            }
            degrade_summary = Some((d.rung.name().to_string(), d.procs_lost, d.rounds.len()));
            stats_totals = Some(d.total_stats);
            let last = d
                .rounds
                .pop()
                .expect("a completed degrading run has at least one round");
            let attempts: u32 = d
                .rounds
                .iter()
                .map(|r| r.recovery.attempts_used)
                .sum::<u32>()
                + last.recovery.attempts_used;
            ledger = Some((
                last.recovery.demoted.iter().map(|(s, _)| *s).collect(),
                last.recovery.quarantined.clone(),
            ));
            (last.recovery.outcome, attempts)
        } else if args.recover {
            let policy = RetryPolicy {
                max_attempts: args
                    .max_attempts
                    .unwrap_or(RetryPolicy::default().max_attempts),
                ..RetryPolicy::default()
            };
            let r = run_parallel_recovering(&prog_a, &bind_a, &plan, &mem_p, &team, &opts, &policy);
            print!("{}", obs::render_recovery(&r.report(args.chaos_seed)));
            if !r.ok() {
                eprintln!(
                    "beopt: EXECUTION FAILED: recovery budget exhausted after {} attempt(s)",
                    r.attempts_used
                );
                return ExitCode::FAILURE;
            }
            let n = r.attempts_used;
            ledger = Some((
                r.demoted.iter().map(|(s, _)| *s).collect(),
                r.quarantined.clone(),
            ));
            // The fabric resets stats between attempts: the final
            // outcome covers only the last attempt, so metrics totals
            // (including escalation counters) come from the
            // across-attempts accumulator.
            stats_totals = Some(r.total_stats);
            (r.outcome, n)
        } else {
            let out_p = run_parallel_observed(&prog_a, &bind_a, &plan, &mem_p, &team, &opts);
            if let Some(failure) = &out_p.failure {
                eprint!("{}", obs::render_failure(failure));
                eprintln!("beopt: EXECUTION FAILED: {}", failure.headline());
                return ExitCode::FAILURE;
            }
            (out_p, 1)
        };
        let diff_p = mem_p.max_abs_diff(&oracle);
        if diff_p > 1e-9 {
            eprintln!("beopt: VERIFICATION FAILED: real-thread results diverge by {diff_p:e}");
            return ExitCode::FAILURE;
        }
        println!(
            "threads: optimized schedule on {} real threads in {:.3} ms{}{}",
            args.nprocs,
            out_p.elapsed.as_secs_f64() * 1e3,
            match deadline_ms {
                Some(ms) => format!(" (watchdog: {ms} ms per wait)"),
                None => String::new(),
            },
            if attempts_used > 1 {
                format!(" (attempt {attempts_used})")
            } else {
                String::new()
            }
        );
        println!();
        print!("{}", obs::render_site_table(&out_p.sites));
        if let Some(path) = &args.metrics_json {
            let totals = stats_totals.as_ref().unwrap_or(&out_p.stats);
            let mut doc = obs::metrics_json(&prog.name, args.nprocs as usize, &out_p.sites, totals)
                .set("attempt", attempts_used);
            if let Some((rung, procs_lost, rounds)) = &degrade_summary {
                doc = doc
                    .set("rung", rung.as_str())
                    .set("procs_lost", *procs_lost)
                    .set("rounds", *rounds);
            }
            if let Some((demoted, quarantined)) = &ledger {
                doc = doc
                    .set(
                        "demoted",
                        demoted
                            .iter()
                            .map(|&s| obs::Json::from(s))
                            .collect::<Vec<_>>(),
                    )
                    .set(
                        "quarantined",
                        quarantined
                            .iter()
                            .map(|&s| obs::Json::from(s))
                            .collect::<Vec<_>>(),
                    );
            }
            if write_output(path, "metrics JSON", &doc.to_string_pretty()).is_err() {
                return ExitCode::FAILURE;
            }
            if path != "-" {
                println!("metrics: per-sync-site telemetry written to {path}");
            }
        }
        if args.profile {
            let data = out_p
                .profile
                .clone()
                .expect("profiled run always returns its event stream");
            let metas = obs::site_metas(&prog, &plan);
            let report = obs::analyze(&data, &metas, args.nprocs as usize);

            // The observed-vs-predicted baseline: the *optimized* plan
            // with every decision-log site the optimizer changed put
            // back to a barrier. Same canonical walk, so every site id
            // joins 1:1 against the optimized run's profile.
            let changed: Vec<usize> = log
                .iter()
                .filter(|d| !matches!(d.placed, SyncOp::Barrier))
                .map(|d| d.site)
                .collect();
            let mut base_plan = plan.clone();
            demote_sites(&mut base_plan, &changed);
            let mem_base = Arc::new(Mem::new(&prog, &bind));
            let bopts = ObserveOptions {
                profile: Some(ProfileOptions::default()),
                ..ObserveOptions::default()
            };
            let out_base =
                run_parallel_observed(&prog_a, &bind_a, &base_plan, &mem_base, &team, &bopts);
            let base_report = out_base.profile.as_ref().map(|d| {
                obs::analyze(d, &obs::site_metas(&prog, &base_plan), args.nprocs as usize)
            });

            println!();
            print!("{}", obs::render_profile(&report));
            let rows = base_report
                .as_ref()
                .map(|br| obs::observed_vs_predicted(&log, br, &report));
            if let Some(rows) = &rows {
                println!();
                print!("{}", obs::render_saved_wait(rows));
            }
            if let Some(cd) = &compile_data {
                let cm = obs::analyze(cd, &[], 1).marks;
                println!(
                    "compile: {} pair queries ({} warm, {} fresh), {:.2} ms in analysis probes",
                    cm.fme_hits + cm.fme_misses,
                    cm.fme_hits,
                    cm.fme_misses,
                    (cm.fme_hit_ns + cm.fme_miss_ns) as f64 / 1e6
                );
            }
            if let Some(path) = &args.profile_json {
                let mut doc = obs::profile_json(&prog.name, &report, rows.as_deref());
                if let Some(cd) = &compile_data {
                    let cm = obs::analyze(cd, &[], 1).marks;
                    doc = doc.set(
                        "compile",
                        obs::Json::obj()
                            .set("fme_hits", cm.fme_hits)
                            .set("fme_misses", cm.fme_misses)
                            .set("fme_hit_ns", cm.fme_hit_ns)
                            .set("fme_miss_ns", cm.fme_miss_ns),
                    );
                }
                if write_output(path, "profile JSON", &doc.to_string_pretty()).is_err() {
                    return ExitCode::FAILURE;
                }
                if path != "-" {
                    println!("profile: analyzed event stream written to {path}");
                }
            }
            run_profile = Some((data, metas));
        }
        if args.trace_out.is_some() {
            spans = Some(out_p.spans);
            trace_source = "real threads (wall-clock µs)";
        }
    }

    if let Some(path) = &args.trace_out {
        // The compile profiler's clock starts at its own construction
        // while the run stream (and the run spans) are rebased to the
        // run's t0, so both begin near 0. Shift the run-side content
        // past the compile stream's last event so the merged timeline
        // reads compile-then-run instead of overlapping.
        let shift_ns = compile_data
            .as_ref()
            .and_then(|cd| cd.events.iter().map(|e| e.t_ns).max())
            .map(|last| last + 1_000)
            .unwrap_or(0);
        let mut run_spans = spans.unwrap_or_default();
        for s in &mut run_spans {
            s.start_us += shift_ns / 1_000;
            s.end_us += shift_ns / 1_000;
        }
        let mut tb = TraceBuilder::new(&prog.name, args.nprocs as usize);
        tb.extend(run_spans);
        if let Some((data, metas)) = &mut run_profile {
            for e in &mut data.events {
                e.t_ns += shift_ns;
            }
            tb.extend_with_profile(data, metas, args.nprocs as usize, 0, "");
        }
        if let Some(cd) = &compile_data {
            tb.extend_with_profile(
                cd,
                &[],
                args.nprocs as usize,
                args.nprocs as usize + 1,
                "compile ",
            );
        }
        if write_output(path, "trace JSON", &tb.to_json().to_string_compact()).is_err() {
            return ExitCode::FAILURE;
        }
        println!(
            "trace: {} spans from {trace_source} written to {path} (load in chrome://tracing or ui.perfetto.dev)",
            tb.len()
        );
    }

    ExitCode::SUCCESS
}
