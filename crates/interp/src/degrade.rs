//! Total-availability execution: elastic team shrink and serial
//! fallback under permanent processor loss.
//!
//! [`run_parallel_degrading`] stacks one more supervisor on top of the
//! recovery loop ([`crate::recover::run_parallel_recovering`]). The
//! recovery ladder handles *flaky sync sites* (demote → quarantine →
//! isolate); this layer handles what the ladder cannot: a processor
//! that is *permanently* gone (stuck core, repeated panic, a chaos
//! kill-pid policy). The degradation ladder has three rungs past
//! ordinary recovery:
//!
//! 1. **classify** — the recovery supervisor's sticky-fault rule
//!    ([`runtime::recovery::RetryPolicy::sticky_pid_k`]) watches the
//!    per-attempt suspect pid; the same pid implicated across K
//!    consecutive failed attempts is declared a permanent loss and the
//!    round aborts early with memory rolled back to the region entry
//!    checkpoint;
//! 2. **shrink** — the region is re-dispatched on a team of
//!    `nprocs - 1`: a fresh [`Team`]/`SyncFabric`, a fresh [`Bindings`]
//!    at the smaller count, and — crucially — a *re-planned* schedule
//!    from the caller's `replan` closure, because owner-computes bounds
//!    baked into the old plan are only sound for the proc count they
//!    were computed at (block ownership with a loop coefficient does
//!    not clamp, so a stale plan at fewer procs silently skips the
//!    iterations owned by the missing pids). Privatized arrays need no
//!    migration: the storage keeps one private copy per *original*
//!    pid, the shrunken team uses the prefix, and privatizable means
//!    written-before-read, so stale contents are harmless —
//!    re-privatization is a rollback-free no-op;
//! 3. **serial fallback** — when shrink bottoms out at one processor,
//!    or a round fails without a classifiable pid, memory is rolled
//!    back to the entry checkpoint one last time and the region runs
//!    to completion via [`run_sequential`] semantics, which use no
//!    inter-processor synchronization at all and therefore cannot be
//!    wedged by any sync-level fault.
//!
//! The result is a hard **availability guarantee**: under any seeded
//! chaos policy the run terminates with memory bit-identical to the
//! sequential oracle — at worst at serial speed. The entry checkpoint
//! is captured once from the *original* plan's schedule; owner-computes
//! partitions at any team size cover the same union of iterations, so
//! one write-set snapshot is valid for every round and for the serial
//! tail.

use crate::checkpoint::Checkpoint;
use crate::events::unroll;
use crate::mem::Mem;
use crate::par::ObserveOptions;
use crate::recover::{run_parallel_recovering, RecoveryOutcome};
use crate::run_sequential;
use analysis::Bindings;
use ir::Program;
use obs::{DegradationReport, RoundReport};
use runtime::recovery::RetryPolicy;
use runtime::stats::StatsSnapshot;
use runtime::Team;
use spmd_opt::SpmdProgram;
use std::sync::Arc;

/// Which rung of the degradation ladder completed the run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DegradeRung {
    /// First attempt at full width, no faults.
    Clean,
    /// Full width, after the site ladder absorbed one or more faults.
    Recovered,
    /// Completed on a shrunken team after one or more permanent
    /// processor losses.
    Shrunk,
    /// Completed via the sequential fallback.
    Serial,
}

impl DegradeRung {
    /// Stable lower-case name (report/JSON vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            DegradeRung::Clean => "clean",
            DegradeRung::Recovered => "recovered",
            DegradeRung::Shrunk => "shrunk",
            DegradeRung::Serial => "serial",
        }
    }
}

/// One team-width episode of the degradation ladder.
pub struct DegradeRound {
    /// Team width this round ran at.
    pub nprocs: usize,
    /// The recovery supervisor's full timeline for the round.
    pub recovery: RecoveryOutcome,
}

/// What a degrading execution produced. By construction the run always
/// completes ([`DegradeOutcome::completed`] documents the guarantee);
/// the interesting part is *how*.
pub struct DegradeOutcome {
    /// Every round, widest first. The last round is the one that
    /// completed (absent when the very first classification forced the
    /// serial fallback — impossible today, but the report tolerates
    /// it).
    pub rounds: Vec<DegradeRound>,
    /// The rung that completed the run.
    pub rung: DegradeRung,
    /// Team width of the first round.
    pub nprocs_initial: usize,
    /// Width the run completed at (1 for the serial fallback).
    pub nprocs_final: usize,
    /// Permanent processor losses classified along the way.
    pub procs_lost: usize,
    /// The schedule the completing parallel round ran (`None` when the
    /// serial fallback finished the job).
    pub final_plan: Option<SpmdProgram>,
    /// Array cells in the shared entry checkpoint.
    pub checkpoint_cells: usize,
    /// Sync stats summed over every attempt of every round.
    pub total_stats: StatsSnapshot,
    program: String,
    deadline_ms: f64,
}

impl DegradeOutcome {
    /// Always true — the availability guarantee. Kept as a method so
    /// call sites read like the recovery layer's.
    pub fn completed(&self) -> bool {
        match self.rung {
            DegradeRung::Serial => true,
            _ => self.rounds.last().map(|r| r.recovery.ok()).unwrap_or(false),
        }
    }

    /// True when completion needed anything beyond a clean first
    /// attempt.
    pub fn degraded(&self) -> bool {
        self.rung != DegradeRung::Clean
    }

    /// The deterministic degradation report (pass the chaos seed when a
    /// seeded injector was active).
    pub fn report(&self, chaos_seed: Option<u64>) -> DegradationReport {
        DegradationReport {
            program: self.program.clone(),
            nprocs_initial: self.nprocs_initial,
            nprocs_final: self.nprocs_final,
            procs_lost: self.procs_lost,
            rung: self.rung.name().to_string(),
            serial_fallback: self.rung == DegradeRung::Serial,
            completed: self.completed(),
            deadline_ms: self.deadline_ms,
            rounds: self
                .rounds
                .iter()
                .map(|r| RoundReport {
                    nprocs: r.nprocs,
                    lost_pid: r.recovery.lost_pid,
                    recovery: r.recovery.report(chaos_seed),
                })
                .collect(),
            checkpoint_cells: self.checkpoint_cells,
            chaos_seed,
        }
    }
}

/// Execute `plan` under the degradation supervisor (see the module
/// docs). `replan` must produce a schedule of the same family as
/// `plan` for an arbitrary processor count — callers pass
/// `spmd_opt::optimize` or `spmd_opt::fork_join` — and is consulted
/// once per shrink. When `policy.sticky_pid_k` is 0 (classification
/// disabled, the `RetryPolicy` default) the degrader enables it at 2:
/// without the classifier the shrink rung is unreachable and every
/// permanent loss would burn the whole budget before falling back to
/// serial.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_degrading(
    prog: &Arc<Program>,
    bind: &Arc<Bindings>,
    plan: &SpmdProgram,
    mem: &Arc<Mem>,
    team: &Team,
    opts: &ObserveOptions,
    policy: &RetryPolicy,
    replan: &dyn Fn(&Program, &Bindings) -> SpmdProgram,
) -> DegradeOutcome {
    let deadline = opts
        .deadline
        .expect("run_parallel_degrading needs an armed deadline (opts.deadline)");
    let policy = RetryPolicy {
        sticky_pid_k: if policy.sticky_pid_k == 0 {
            2
        } else {
            policy.sticky_pid_k
        },
        ..policy.clone()
    };
    // One write-set checkpoint for every rung: the union of owned
    // iterations is the whole iteration space at any team width, so
    // the original plan's schedule names the complete write set.
    let events = unroll(prog, bind, plan);
    let outer = Checkpoint::capture(prog, bind, &events, mem);
    let nprocs_initial = bind.nprocs as usize;
    let mut k = nprocs_initial;
    let mut procs_lost = 0usize;
    let mut rounds: Vec<DegradeRound> = Vec::new();
    let mut total_stats = StatsSnapshot::default();
    // Round state: the widest round reuses the caller's team and plan;
    // every shrink rebuilds all three at the new width.
    let mut cur_bind = Arc::clone(bind);
    let mut cur_plan: Option<SpmdProgram> = None;
    let mut cur_team: Option<Team> = None;
    loop {
        let round_plan = cur_plan.as_ref().unwrap_or(plan);
        let round_team = cur_team.as_ref().unwrap_or(team);
        let r =
            run_parallel_recovering(prog, &cur_bind, round_plan, mem, round_team, opts, &policy);
        total_stats.merge(&r.total_stats);
        let ok = r.ok();
        let lost = r.lost_pid;
        let recovered_here = r.recovered();
        let final_plan = ok.then(|| r.final_plan.clone());
        rounds.push(DegradeRound {
            nprocs: k,
            recovery: r,
        });
        if ok {
            let rung = if k < nprocs_initial {
                DegradeRung::Shrunk
            } else if recovered_here {
                DegradeRung::Recovered
            } else {
                DegradeRung::Clean
            };
            return DegradeOutcome {
                rounds,
                rung,
                nprocs_initial,
                nprocs_final: k,
                procs_lost,
                final_plan,
                checkpoint_cells: outer.elem_cells(),
                total_stats,
                program: prog.name.clone(),
                deadline_ms: deadline.as_secs_f64() * 1e3,
            };
        }
        // Failed round. A sticky classification already rolled memory
        // back; a residual (budget exhausted, no classifiable pid)
        // leaves the failed attempt's partial writes behind — either
        // way the entry checkpoint restores the region entry state
        // bit-exactly before the next rung.
        outer.rollback(mem);
        if lost.is_some() && k > 1 {
            procs_lost += 1;
            k -= 1;
            let mut nb = (**bind).clone();
            nb.nprocs = k as i64;
            // Owner-computes bounds are re-derived from scratch at the
            // new width; the old plan is unsound below the width it
            // was planned for.
            cur_plan = Some(replan(prog, &nb));
            cur_bind = Arc::new(nb);
            cur_team = Some(Team::new(k));
            continue;
        }
        // Unclassifiable fault, or nothing left to shrink: the serial
        // tail. Sequential semantics use no sync primitives, so no
        // sync-level chaos policy can touch it — this rung cannot
        // fail.
        run_sequential(prog, bind, mem);
        return DegradeOutcome {
            rounds,
            rung: DegradeRung::Serial,
            nprocs_initial,
            nprocs_final: 1,
            procs_lost,
            final_plan: None,
            checkpoint_cells: outer.elem_cells(),
            total_stats,
            program: prog.name.clone(),
            deadline_ms: deadline.as_secs_f64() * 1e3,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::{BarrierKind, ChaosAction, SyncChaos};
    use ir::build::*;
    use spmd_opt::{fork_join, optimize};
    use std::time::Duration;

    fn sweep(n_val: i64, steps: i64, nprocs: i64) -> (Arc<Program>, Arc<Bindings>) {
        let mut pb = ProgramBuilder::new("sweep");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let _t = pb.begin_seq("t", con(0), con(steps - 1));
        let i = pb.begin_par("i", con(1), sym(n) - 2);
        pb.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 2);
        pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
        pb.end();
        pb.end();
        let prog = Arc::new(pb.finish());
        let bind = Arc::new(Bindings::new(nprocs).set(n, n_val));
        (prog, bind)
    }

    fn guarded(chaos: Option<Arc<dyn SyncChaos>>) -> ObserveOptions {
        ObserveOptions {
            barrier: BarrierKind::Central,
            deadline: Some(Duration::from_millis(120)),
            chaos,
            ..ObserveOptions::default()
        }
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            sticky_pid_k: 2,
            ..RetryPolicy::default()
        }
    }

    /// A permanently dead core: drops every post on one pid, at every
    /// site, forever — and is not maskable, because quarantining a
    /// site cannot revive hardware.
    struct SilentKill {
        pid: usize,
    }

    impl SyncChaos for SilentKill {
        fn at_sync(&self, _site: usize, pid: usize, _visit: u64) -> ChaosAction {
            if pid == self.pid {
                ChaosAction::Drop
            } else {
                ChaosAction::None
            }
        }

        fn maskable(&self) -> bool {
            false
        }
    }

    /// A core that panics at its first sync event, every time.
    struct PanicKill {
        pid: usize,
    }

    impl SyncChaos for PanicKill {
        fn at_sync(&self, _site: usize, pid: usize, _visit: u64) -> ChaosAction {
            if pid == self.pid {
                panic!("injected: permanent processor fault on P{pid}");
            }
            ChaosAction::None
        }

        fn maskable(&self) -> bool {
            false
        }
    }

    fn oracle_for(prog: &Arc<Program>, bind: &Arc<Bindings>) -> Mem {
        let oracle = Mem::new(prog, bind);
        oracle.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
        crate::run_sequential(prog, bind, &oracle);
        oracle
    }

    #[test]
    fn clean_run_stays_on_the_top_rung() {
        let (prog, bind) = sweep(32, 3, 4);
        let team = Team::new(4);
        let plan = optimize(&prog, &bind);
        let mem = Arc::new(Mem::new(&prog, &bind));
        mem.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
        let d = run_parallel_degrading(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &guarded(None),
            &fast_policy(),
            &|p, b| optimize(p, b),
        );
        assert!(d.completed() && !d.degraded());
        assert_eq!(d.rung, DegradeRung::Clean);
        assert_eq!(d.nprocs_final, 4);
        assert_eq!(d.procs_lost, 0);
        assert_eq!(d.rounds.len(), 1);
        let oracle = oracle_for(&prog, &bind);
        assert_eq!(mem.max_abs_diff(&oracle), 0.0);
    }

    #[test]
    fn losing_the_top_pid_shrinks_once_and_completes() {
        let (prog, bind) = sweep(32, 3, 4);
        let team = Team::new(4);
        let plan = fork_join(&prog, &bind);
        let mem = Arc::new(Mem::new(&prog, &bind));
        mem.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
        let chaos: Arc<dyn SyncChaos> = Arc::new(SilentKill { pid: 3 });
        let d = run_parallel_degrading(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &guarded(Some(chaos)),
            &fast_policy(),
            &|p, b| fork_join(p, b),
        );
        assert!(d.completed() && d.degraded());
        assert_eq!(d.rung, DegradeRung::Shrunk);
        // P3 only exists at width 4: one shrink is enough.
        assert_eq!(d.nprocs_final, 3);
        assert_eq!(d.procs_lost, 1);
        assert_eq!(d.rounds.len(), 2);
        assert_eq!(d.rounds[0].recovery.lost_pid, Some(3));
        assert!(d.rounds[1].recovery.ok());
        assert!(d.final_plan.is_some());
        let oracle = oracle_for(&prog, &bind);
        assert_eq!(mem.max_abs_diff(&oracle), 0.0, "bitwise oracle-exact");
    }

    #[test]
    fn a_permanently_panicking_pid_zero_forces_the_serial_tail() {
        let (prog, bind) = sweep(32, 3, 4);
        let team = Team::new(4);
        let plan = optimize(&prog, &bind);
        let mem = Arc::new(Mem::new(&prog, &bind));
        mem.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
        let chaos: Arc<dyn SyncChaos> = Arc::new(PanicKill { pid: 0 });
        let d = run_parallel_degrading(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &guarded(Some(chaos)),
            &fast_policy(),
            &|p, b| optimize(p, b),
        );
        // P0 panics at every width, including 1: shrink all the way
        // down, then finish serially.
        assert!(d.completed() && d.degraded());
        assert_eq!(d.rung, DegradeRung::Serial);
        assert_eq!(d.nprocs_final, 1);
        assert!(d.final_plan.is_none());
        let rep = d.report(Some(3));
        assert_eq!(rep.rung, "serial");
        assert!(rep.serial_fallback && rep.completed);
        let oracle = oracle_for(&prog, &bind);
        assert_eq!(mem.max_abs_diff(&oracle), 0.0, "bitwise oracle-exact");
    }
}
