! Column sweep along the distributed dimension: the optimizer replaces
! the per-row barrier with neighbor flags (software pipelining).
program pipeline
sym n, tmax
array X(n, n) block
array L(n, n) block

doall i0 = 0, n-1
  do j0 = 0, n-1
    X(i0, j0) = sin(i0 * 11 + j0)
    L(i0, j0) = 0.2 + 0.05 * cos(i0 * 3 - j0)
  end
end

do t = 0, tmax-1
  do i = 1, n-1
    doall j = 0, n-1
      X(i, j) = 0.75 * X(i, j) + L(i, j) * X(i-1, j)
    end
  end
end
