//! The pipelining payoff: run the ADI column sweep fork-join versus
//! optimized on real threads and watch the barrier count collapse while
//! the results stay identical.
//!
//! ```sh
//! cargo run --release --example pipeline
//! ```

use barrier_elim::interp::{run_parallel, run_sequential, Mem};
use barrier_elim::runtime::Team;
use barrier_elim::spmd_opt::{fork_join, optimize};
use barrier_elim::suite::{self, Scale};
use std::sync::Arc;

fn main() {
    let def = suite::by_name("adi").unwrap();
    let built = (def.build)(Scale::Small);
    let nprocs = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let bind = Arc::new(built.bindings(nprocs as i64));
    let prog = Arc::new(built.prog);
    let team = Team::new(nprocs);

    let oracle = Mem::new(&prog, &bind);
    run_sequential(&prog, &bind, &oracle);

    println!("ADI integration, P = {nprocs} (real threads)\n");
    for (label, plan) in [
        ("fork-join", fork_join(&prog, &bind)),
        ("optimized", optimize(&prog, &bind)),
    ] {
        let mem = Arc::new(Mem::new(&prog, &bind));
        let out = run_parallel(&prog, &bind, &plan, &mem, &team);
        assert!(mem.max_abs_diff(&oracle) < 1e-9, "{label} diverged");
        println!(
            "{label:>10}: {:>6} barriers  {:>6} neighbor posts  {:>5} dispatches  {:>8.2} ms  (barrier wait {:.2} ms)",
            out.counts.barriers,
            out.counts.neighbor_posts,
            out.counts.dispatches,
            out.elapsed.as_secs_f64() * 1e3,
            out.stats.barrier_wait_ns as f64 / 1e6,
        );
    }
    println!("\nThe optimized schedule replaces the per-row barrier of the column");
    println!("sweep with neighbor flags: processor p+1 starts its block as soon as");
    println!("processor p finishes the boundary row — a software pipeline.");
}
