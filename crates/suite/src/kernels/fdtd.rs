//! 2-D FDTD (finite-difference time-domain) fragment: the staggered-grid
//! E/H update pattern of electromagnetic kernels (a Perfect-Club-style
//! physics code shape). Per step: update `HZ` from curl(E), then update
//! `EX`/`EY` from grad(HZ) — opposite-direction one-element shifts in
//! both dimensions, all within neighbor reach over block rows.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (10, 2),
        Scale::Small => (48, 8),
        Scale::Full => (384, 24),
    };
    let mut pb = ProgramBuilder::new("fdtd");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let ex_ = pb.array("EX", &[sym(n), sym(n)], dist_block());
    let ey = pb.array("EY", &[sym(n), sym(n)], dist_block());
    let hz = pb.array("HZ", &[sym(n), sym(n)], dist_block());

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(ex_, [idx(i0), idx(j0)]),
        ival(idx(i0) + idx(j0) * 3).sin(),
    );
    pb.assign(
        elem(ey, [idx(i0), idx(j0)]),
        ival(idx(i0) * 2 - idx(j0)).cos(),
    );
    pb.assign(elem(hz, [idx(i0), idx(j0)]), ex(0.0));
    pb.end();
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);

    // HZ update from the curl of E (reads at +1).
    let i1 = pb.begin_par("i1", con(0), sym(n) - 2);
    let j1 = pb.begin_seq("j1", con(0), sym(n) - 2);
    pb.assign(
        elem(hz, [idx(i1), idx(j1)]),
        arr(hz, [idx(i1), idx(j1)])
            - ex(0.7)
                * (arr(ey, [idx(i1) + 1, idx(j1)])
                    - arr(ey, [idx(i1), idx(j1)])
                    - arr(ex_, [idx(i1), idx(j1) + 1])
                    + arr(ex_, [idx(i1), idx(j1)])),
    );
    pb.end();
    pb.end();

    // E updates from the gradient of HZ (reads at -1).
    let i2 = pb.begin_par("i2", con(0), sym(n) - 1);
    let j2 = pb.begin_seq("j2", con(1), sym(n) - 1);
    pb.assign(
        elem(ex_, [idx(i2), idx(j2)]),
        arr(ex_, [idx(i2), idx(j2)])
            - ex(0.5) * (arr(hz, [idx(i2), idx(j2)]) - arr(hz, [idx(i2), idx(j2) - 1])),
    );
    pb.end();
    pb.end();
    let i3 = pb.begin_par("i3", con(1), sym(n) - 1);
    let j3 = pb.begin_seq("j3", con(0), sym(n) - 1);
    pb.assign(
        elem(ey, [idx(i3), idx(j3)]),
        arr(ey, [idx(i3), idx(j3)])
            - ex(0.5) * (arr(hz, [idx(i3), idx(j3)]) - arr(hz, [idx(i3) - 1, idx(j3)])),
    );
    pb.end();
    pb.end();

    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staggered_updates_become_neighbor_flags() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        assert_eq!(st.regions, 1, "{st:?}");
        assert_eq!(st.barriers, 1, "{st:?}");
        assert!(st.neighbor_syncs >= 2, "{st:?}");
    }
}
