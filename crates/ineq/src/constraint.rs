//! Individual affine constraints (`expr >= 0` / `expr == 0`).

use crate::linexpr::LinExpr;
use crate::rational::div_floor;
use crate::var::VarTable;
use std::fmt;

/// Whether a constraint is an inequality or an equality.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConstraintKind {
    /// `expr >= 0`.
    GeZero,
    /// `expr == 0`.
    EqZero,
}

/// An affine constraint over the variables of a [`VarTable`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// The affine expression compared against zero.
    pub expr: LinExpr,
    /// Inequality or equality.
    pub kind: ConstraintKind,
}

impl Constraint {
    /// `expr >= 0`.
    pub fn ge_zero(expr: LinExpr) -> Self {
        Constraint {
            expr,
            kind: ConstraintKind::GeZero,
        }
    }

    /// `expr == 0`.
    pub fn eq_zero(expr: LinExpr) -> Self {
        Constraint {
            expr,
            kind: ConstraintKind::EqZero,
        }
    }

    /// Normalize in place:
    /// * divide all coefficients by their gcd `g`;
    /// * for inequalities, tighten the constant to `floor(c / g)` — valid
    ///   for integer solutions and the source of the "dark shadow"-style
    ///   strengthening over the pure rational relaxation;
    /// * for equalities, if `g` does not divide the constant the
    ///   constraint is unsatisfiable over the integers and this returns
    ///   `false`.
    ///
    /// Returns `true` if the constraint remains (possibly) satisfiable.
    /// Trivially true constraints are left in place (callers dedup).
    pub fn normalize(&mut self) -> bool {
        let g = self.expr.coeff_gcd();
        if g == 0 {
            // Pure constant constraint: check it outright.
            return match self.kind {
                ConstraintKind::GeZero => self.expr.constant_term() >= 0,
                ConstraintKind::EqZero => self.expr.constant_term() == 0,
            };
        }
        if g > 1 {
            let c = self.expr.constant_term();
            match self.kind {
                ConstraintKind::GeZero => {
                    let mut out = LinExpr::constant(div_floor(c, g));
                    for (v, k) in self.expr.terms() {
                        out.set_coeff(v, k / g);
                    }
                    self.expr = out;
                }
                ConstraintKind::EqZero => {
                    if c % g != 0 {
                        return false;
                    }
                    let mut out = LinExpr::constant(c / g);
                    for (v, k) in self.expr.terms() {
                        out.set_coeff(v, k / g);
                    }
                    self.expr = out;
                }
            }
        }
        true
    }

    /// True if this constraint holds for every assignment
    /// (i.e. a constant expression satisfying the comparison).
    pub fn is_trivially_true(&self) -> bool {
        self.expr.is_constant()
            && match self.kind {
                ConstraintKind::GeZero => self.expr.constant_term() >= 0,
                ConstraintKind::EqZero => self.expr.constant_term() == 0,
            }
    }

    /// True if this constraint can never hold.
    pub fn is_trivially_false(&self) -> bool {
        self.expr.is_constant()
            && match self.kind {
                ConstraintKind::GeZero => self.expr.constant_term() < 0,
                ConstraintKind::EqZero => self.expr.constant_term() != 0,
            }
    }

    /// Check an integer assignment.
    pub fn holds_int(&self, assign: &dyn Fn(crate::VarId) -> i128) -> bool {
        let v = self.expr.eval_int(assign);
        match self.kind {
            ConstraintKind::GeZero => v >= 0,
            ConstraintKind::EqZero => v == 0,
        }
    }

    /// Render with variable names.
    pub fn display<'a>(&'a self, vt: &'a VarTable) -> impl fmt::Display + 'a {
        DisplayConstraint { c: self, vt }
    }
}

struct DisplayConstraint<'a> {
    c: &'a Constraint,
    vt: &'a VarTable,
}

impl fmt::Display for DisplayConstraint<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.c.kind {
            ConstraintKind::GeZero => ">=",
            ConstraintKind::EqZero => "==",
        };
        write!(f, "{} {} 0", self.c.expr.display(self.vt), op)
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.kind {
            ConstraintKind::GeZero => ">=",
            ConstraintKind::EqZero => "==",
        };
        write!(f, "{:?} {} 0", self.expr, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::{VarKind, VarTable};

    #[test]
    fn normalize_divides_gcd_and_tightens() {
        let mut vt = VarTable::new();
        let i = vt.fresh("i", VarKind::LoopIndex);
        // 2i - 3 >= 0  ->  i + floor(-3/2) >= 0  ->  i - 2 >= 0 (i >= 2,
        // correct for integers since 2i >= 3 means i >= 1.5).
        let mut c = Constraint::ge_zero(LinExpr::term(i, 2) + LinExpr::constant(-3));
        assert!(c.normalize());
        assert_eq!(c.expr.coeff(i), 1);
        assert_eq!(c.expr.constant_term(), -2);
    }

    #[test]
    fn normalize_detects_integer_infeasible_equality() {
        let mut vt = VarTable::new();
        let i = vt.fresh("i", VarKind::LoopIndex);
        // 2i == 5 has no integer solution.
        let mut c = Constraint::eq_zero(LinExpr::term(i, 2) + LinExpr::constant(-5));
        assert!(!c.normalize());
    }

    #[test]
    fn constant_constraints() {
        let mut t = Constraint::ge_zero(LinExpr::constant(3));
        assert!(t.normalize());
        assert!(t.is_trivially_true());
        let mut f = Constraint::ge_zero(LinExpr::constant(-1));
        assert!(!f.normalize());
        assert!(f.is_trivially_false());
        let mut e = Constraint::eq_zero(LinExpr::constant(0));
        assert!(e.normalize());
        assert!(e.is_trivially_true());
    }

    #[test]
    fn holds_int_checks_assignment() {
        let mut vt = VarTable::new();
        let i = vt.fresh("i", VarKind::LoopIndex);
        let c = Constraint::ge_zero(LinExpr::var(i) - LinExpr::constant(5));
        assert!(c.holds_int(&|_| 5));
        assert!(!c.holds_int(&|_| 4));
    }
}
