//! Unrolling a schedule into a linear event list, and the execution of
//! one work event by one processor.
//!
//! Every processor traverses the *same* event sequence (replicated
//! control flow — the SPMD model); work events carry the enclosing
//! sequential-loop indices so both executors can evaluate bounds and
//! owner functions.

use crate::eval::{exec_node, exec_subtree_seq, try_eval_affine, Env, RedAcc};
use crate::mem::Mem;
use analysis::{Bindings, LoopPartition};
use ineq::rational::{div_ceil, div_floor};
use ir::{AffAtom, LoopId, NodeId, Program};
use spmd_opt::{slot_count_items, slot_count_top, PhaseKind, RItem, SpmdProgram, SyncOp, TopItem};

/// One step of the SPMD event sequence.
#[derive(Clone, Debug)]
pub enum Event {
    /// Distributed/guarded/replicated phase work.
    Work {
        /// Phase subtree.
        node: NodeId,
        /// Work division.
        kind: PhaseKind,
        /// Enclosing loop indices at this point of the unrolling.
        env: Vec<(LoopId, i64)>,
    },
    /// Master-only serial work outside regions.
    SerialWork {
        /// Subtree to execute.
        node: NodeId,
        /// Enclosing loop indices.
        env: Vec<(LoopId, i64)>,
    },
    /// Region entry: workers wait for the master's arrival.
    Dispatch,
    /// A synchronization point (never [`SyncOp::None`]).
    Sync {
        /// The operation.
        op: SyncOp,
        /// Canonical sync-site id (the plan's slot-walk numbering —
        /// see [`spmd_opt::sync_sites`]); loop iterations of the same
        /// slot share one id, so runtime telemetry aggregates per
        /// static site.
        site: usize,
        /// Enclosing loop indices (needed to evaluate counter
        /// producers such as pivot-row owners).
        env: Vec<(LoopId, i64)>,
    },
}

/// Unroll a schedule into events under concrete bindings. Sequential
/// loops at region level and master loops are unrolled; loops inside
/// phases are not.
pub fn unroll(prog: &Program, bind: &Bindings, plan: &SpmdProgram) -> Vec<Event> {
    let mut out = Vec::new();
    let mut env = Env::new(prog);
    unroll_top(prog, bind, &plan.items, &mut env, 0, &mut out);
    out
}

/// Unroll top-level items. `slot` is the canonical site id of the first
/// slot under `items`; each master-loop iteration reuses the same static
/// ids (the numbering is structural, mirroring
/// [`spmd_opt::sync_sites`]). Returns the id past the last slot.
fn unroll_top(
    prog: &Program,
    bind: &Bindings,
    items: &[TopItem],
    env: &mut Env,
    mut slot: usize,
    out: &mut Vec<Event>,
) -> usize {
    for it in items {
        match it {
            TopItem::SerialStmt(n) => out.push(Event::SerialWork {
                node: *n,
                env: env.snapshot(),
            }),
            TopItem::MasterLoop { node, body } => {
                let l = prog.expect_loop(*node);
                let lo = crate::eval::eval_affine(bind, env, &l.lo);
                let hi = crate::eval::eval_affine(bind, env, &l.hi);
                for i in lo..=hi {
                    env.set(l.id, i);
                    unroll_top(prog, bind, body, env, slot, out);
                }
                env.clear(l.id);
                slot += slot_count_top(body);
            }
            TopItem::Region(r) => {
                out.push(Event::Dispatch);
                unroll_items(prog, bind, &r.items, env, slot, out);
                let end_site = slot + slot_count_items(&r.items);
                if r.end.is_some() {
                    out.push(Event::Sync {
                        op: r.end.clone(),
                        site: end_site,
                        env: env.snapshot(),
                    });
                }
                slot = end_site + 1;
            }
        }
    }
    slot
}

/// Unroll region items starting at canonical site id `slot`; returns the
/// id past the items' last slot.
fn unroll_items(
    prog: &Program,
    bind: &Bindings,
    items: &[RItem],
    env: &mut Env,
    mut slot: usize,
    out: &mut Vec<Event>,
) -> usize {
    for it in items {
        match it {
            RItem::Phase(p) => {
                out.push(Event::Work {
                    node: p.node,
                    kind: p.kind.clone(),
                    env: env.snapshot(),
                });
                if p.after.is_some() {
                    out.push(Event::Sync {
                        op: p.after.clone(),
                        site: slot,
                        env: env.snapshot(),
                    });
                }
                slot += 1;
            }
            RItem::Seq {
                node,
                body,
                bottom,
                after,
            } => {
                let l = prog.expect_loop(*node);
                let lo = crate::eval::eval_affine(bind, env, &l.lo);
                let hi = crate::eval::eval_affine(bind, env, &l.hi);
                let bottom_site = slot + slot_count_items(body);
                for i in lo..=hi {
                    env.set(l.id, i);
                    unroll_items(prog, bind, body, env, slot, out);
                    if bottom.is_some() {
                        out.push(Event::Sync {
                            op: bottom.clone(),
                            site: bottom_site,
                            env: env.snapshot(),
                        });
                    }
                }
                env.clear(l.id);
                if after.is_some() {
                    out.push(Event::Sync {
                        op: after.clone(),
                        site: bottom_site + 1,
                        env: env.snapshot(),
                    });
                }
                slot = bottom_site + 2;
            }
        }
    }
    slot
}

/// Execute one work event as processor `pid` of `nprocs`.
pub fn exec_work(
    prog: &Program,
    bind: &Bindings,
    mem: &Mem,
    pid: usize,
    _nprocs: usize,
    ev: &Event,
) {
    match ev {
        Event::SerialWork { node, env } => {
            if pid == 0 {
                let mut e = Env::new(prog);
                e.restore(env);
                exec_subtree_seq(prog, bind, mem, &mut e, *node, pid);
            }
        }
        Event::Work { node, kind, env } => {
            let mut e = Env::new(prog);
            e.restore(env);
            match kind {
                PhaseKind::Master => {
                    if pid == 0 {
                        exec_subtree_seq(prog, bind, mem, &mut e, *node, pid);
                    }
                }
                PhaseKind::Replicated => {
                    exec_subtree_seq(prog, bind, mem, &mut e, *node, pid);
                }
                PhaseKind::Par { partition } => {
                    exec_par_phase(prog, bind, mem, &mut e, *node, partition, pid);
                }
            }
        }
        Event::Dispatch | Event::Sync { .. } => unreachable!("not a work event"),
    }
}

/// Iterations of `[lo, hi]` owned by `pid` when the owner subscript is
/// affine in the phase loop with everything else already bound: returns
/// a contiguous range, a strided range, or `None` (fall back to
/// scanning).
enum OwnedIter {
    Range(i64, i64),
    Strided { start: i64, step: i64, hi: i64 },
}

fn owned_fast_path(
    bind: &Bindings,
    env: &Env,
    partition: &LoopPartition,
    loop_id: LoopId,
    lo: i64,
    hi: i64,
    pid: i64,
) -> Option<OwnedIter> {
    match partition {
        LoopPartition::BlockIndex { lo: plo, block, .. } => {
            let a = (plo + pid * block).max(lo);
            let b = (plo + (pid + 1) * block - 1).min(hi);
            Some(OwnedIter::Range(a, b))
        }
        LoopPartition::BlockOwner { block, sub, .. } => {
            let a = sub.coeff(AffAtom::Loop(loop_id));
            let mut rest = sub.clone();
            rest.set_coeff(AffAtom::Loop(loop_id), 0);
            let r = try_eval_affine(bind, env, &rest)?;
            if a == 0 {
                // Owner is iteration-independent: one processor runs the
                // whole phase (the pipelining shape).
                let owner = (r / block).clamp(0, bind.nprocs - 1);
                return Some(if owner == pid {
                    OwnedIter::Range(lo, hi)
                } else {
                    OwnedIter::Range(lo, lo - 1)
                });
            }
            // pid*block <= a*i + r <= pid*block + block - 1
            let lo_own = pid * block - r;
            let hi_own = pid * block + block - 1 - r;
            let (mut ilo, mut ihi) = if a > 0 {
                (
                    div_ceil(lo_own as i128, a as i128),
                    div_floor(hi_own as i128, a as i128),
                )
            } else {
                (
                    div_ceil(hi_own as i128, a as i128),
                    div_floor(lo_own as i128, a as i128),
                )
            };
            ilo = ilo.max(lo as i128);
            ihi = ihi.min(hi as i128);
            Some(OwnedIter::Range(ilo as i64, ihi as i64))
        }
        LoopPartition::CyclicOwner { sub, .. } => {
            let a = sub.coeff(AffAtom::Loop(loop_id));
            let mut rest = sub.clone();
            rest.set_coeff(AffAtom::Loop(loop_id), 0);
            let r = try_eval_affine(bind, env, &rest)?;
            let p = nprocs_of(bind);
            if a == 0 {
                let owner = r.rem_euclid(p);
                return Some(if owner == pid {
                    OwnedIter::Range(lo, hi)
                } else {
                    OwnedIter::Range(lo, lo - 1)
                });
            }
            if a.abs() != 1 {
                return None;
            }
            // (a*i + r) mod P == pid  =>  i ≡ a*(pid - r) (mod P)
            let residue = (a * (pid - r)).rem_euclid(p);
            let start = lo + (residue - lo).rem_euclid(p);
            Some(OwnedIter::Strided { start, step: p, hi })
        }
        LoopPartition::BlockCyclicOwner { .. } => {
            // Strided-block ranges are possible but fiddly; the scan
            // path evaluates owners per iteration instead.
            None
        }
        LoopPartition::SymbolicBlockOwner { .. } | LoopPartition::Unknown => None,
    }
}

fn nprocs_of(bind: &Bindings) -> i64 {
    bind.nprocs
}

fn exec_par_phase(
    prog: &Program,
    bind: &Bindings,
    mem: &Mem,
    env: &mut Env,
    loop_node: NodeId,
    partition: &LoopPartition,
    pid: usize,
) {
    let l = prog.expect_loop(loop_node);
    let lo = crate::eval::eval_affine(bind, env, &l.lo);
    let hi = crate::eval::eval_affine(bind, env, &l.hi);
    let mut red = RedAcc::active();
    let body = &l.body;

    let run_iter = |i: i64, env: &mut Env, red: &mut RedAcc| {
        env.set(l.id, i);
        for &c in body {
            exec_node(prog, bind, mem, env, c, None, red, pid);
        }
    };

    if matches!(
        partition,
        LoopPartition::Unknown | LoopPartition::SymbolicBlockOwner { .. }
    ) {
        // Conservative: the master executes everything.
        if pid == 0 {
            for i in lo..=hi {
                run_iter(i, env, &mut red);
            }
        }
    } else if let Some(iter) = owned_fast_path(bind, env, partition, l.id, lo, hi, pid as i64) {
        match iter {
            OwnedIter::Range(a, b) => {
                for i in a..=b {
                    run_iter(i, env, &mut red);
                }
            }
            OwnedIter::Strided { start, step, hi } => {
                let mut i = start;
                while i <= hi {
                    run_iter(i, env, &mut red);
                    i += step;
                }
            }
        }
    } else {
        // Scan mode: try loop-level ownership first; if the owner
        // subscript needs inner loop indices, fall back to a
        // per-statement ownership filter.
        let loop_level_ok = {
            // All loops mentioned by the owner subscript are either the
            // phase loop or already bound.
            let sub = match partition {
                LoopPartition::BlockOwner { sub, .. } => Some(sub),
                LoopPartition::CyclicOwner { sub, .. } => Some(sub),
                LoopPartition::BlockCyclicOwner { sub, .. } => Some(sub),
                _ => None,
            };
            sub.map(|s| s.loops().all(|lid| lid == l.id || env.get(lid).is_some()))
                .unwrap_or(true)
        };
        if loop_level_ok {
            for i in lo..=hi {
                env.set(l.id, i);
                let owner = {
                    let e = &*env;
                    partition.owner_of(bind, i, &|lid| e.get(lid))
                };
                if owner == Some(pid as i64) {
                    for &c in body {
                        exec_node(prog, bind, mem, env, c, None, &mut red, pid);
                    }
                }
            }
        } else {
            // Statement-level filter: execute the whole nest, skipping
            // instances owned by other processors.
            let part = partition.clone();
            let lid = l.id;
            let filter = move |e: &Env| {
                let i = e.get(lid).unwrap_or(0);
                part.owner_of(bind, i, &|x| e.get(x)) == Some(pid as i64)
            };
            for i in lo..=hi {
                env.set(l.id, i);
                for &c in body {
                    exec_node(prog, bind, mem, env, c, Some(&filter), &mut red, pid);
                }
            }
        }
    }
    env.clear(l.id);
    red.flush(mem, pid);
}

/// Dynamic synchronization counts extracted from an event walk (shared
/// by both executors so their numbers agree by construction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DynCounts {
    /// Region dispatches (fork-join startup broadcasts).
    pub dispatches: u64,
    /// Barrier episodes executed.
    pub barriers: u64,
    /// Counter increments executed.
    pub counter_increments: u64,
    /// Counter waits executed (consumers).
    pub counter_waits: u64,
    /// Neighbor posts executed.
    pub neighbor_posts: u64,
    /// Neighbor waits executed.
    pub neighbor_waits: u64,
    /// Pairwise posts executed.
    pub pair_posts: u64,
    /// Pairwise waits executed.
    pub pair_waits: u64,
}

impl DynCounts {
    /// Count the dynamic syncs a full traversal of `events` performs
    /// with `nprocs` processors.
    pub fn from_events(events: &[Event], nprocs: usize) -> DynCounts {
        let p = nprocs as u64;
        let mut c = DynCounts::default();
        for ev in events {
            match ev {
                Event::Dispatch => c.dispatches += 1,
                Event::Sync {
                    op: SyncOp::Barrier,
                    ..
                } => c.barriers += 1,
                Event::Sync {
                    op: SyncOp::Counter { .. },
                    ..
                } => {
                    c.counter_increments += 1;
                    c.counter_waits += p - 1;
                }
                Event::Sync {
                    op: SyncOp::Neighbor { fwd, bwd },
                    ..
                } => {
                    c.neighbor_posts += p;
                    // Each processor waits for each existing producing
                    // neighbor.
                    if *fwd {
                        c.neighbor_waits += p - 1; // everyone but pid 0 waits on p-1
                    }
                    if *bwd {
                        c.neighbor_waits += p - 1; // everyone but pid P-1 waits on p+1
                    }
                }
                Event::Sync {
                    op: SyncOp::PairCounter { dists, producers },
                    ..
                } => {
                    c.pair_posts += p;
                    for d in dists.iter() {
                        // Every pid whose `pid - d` is a real processor
                        // waits on it.
                        c.pair_waits += (p as i64 - d.abs()).max(0) as u64;
                    }
                    // Producer-target waits: every pid except the
                    // producer itself waits on it.
                    c.pair_waits += producers.len() as u64 * (p - 1);
                }
                _ => {}
            }
        }
        c
    }
}

/// Render an event list as one line per event (debugging aid; the
/// executors traverse exactly this sequence).
pub fn render_events(prog: &Program, events: &[Event]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let env_str = |env: &[(LoopId, i64)]| -> String {
        if env.is_empty() {
            String::new()
        } else {
            let parts: Vec<String> = env
                .iter()
                .map(|(l, v)| format!("{}={v}", prog.loop_name(*l)))
                .collect();
            format!(" [{}]", parts.join(", "))
        }
    };
    for (k, ev) in events.iter().enumerate() {
        match ev {
            Event::Dispatch => writeln!(out, "{k:4}  dispatch").unwrap(),
            Event::SerialWork { node, env } => {
                writeln!(out, "{k:4}  serial node {}{}", node.0, env_str(env)).unwrap()
            }
            Event::Work { node, kind, env } => {
                let kd = match kind {
                    PhaseKind::Par { .. } => "par",
                    PhaseKind::Master => "master",
                    PhaseKind::Replicated => "repl",
                };
                writeln!(out, "{k:4}  work({kd}) node {}{}", node.0, env_str(env)).unwrap()
            }
            Event::Sync { op, site, env } => {
                let s = match op {
                    SyncOp::None => "none".to_string(),
                    SyncOp::Barrier => "barrier".to_string(),
                    SyncOp::Neighbor { fwd, bwd } => format!("neighbor(fwd={fwd},bwd={bwd})"),
                    SyncOp::Counter { id, .. } => format!("counter#{id}"),
                    SyncOp::PairCounter { dists, producers } => {
                        if producers.is_empty() {
                            format!("pair{}", dists.render())
                        } else {
                            format!("pair{}+{}prod", dists.render(), producers.len())
                        }
                    }
                };
                writeln!(out, "{k:4}  sync s{site} {s}{}", env_str(env)).unwrap()
            }
        }
    }
    out
}

/// Which processor increments for a counter sync, under the event's
/// loop-index snapshot.
pub fn producer_pid(
    bind: &Bindings,
    prog: &Program,
    spec: &analysis::ProducerSpec,
    env_snap: &[(LoopId, i64)],
) -> i64 {
    let mut env = Env::new(prog);
    env.restore(env_snap);
    match spec {
        analysis::ProducerSpec::Master => 0,
        analysis::ProducerSpec::BlockOwner { block, sub } => {
            let x = try_eval_affine(bind, &env, sub).unwrap_or(0);
            (x / block).clamp(0, bind.nprocs - 1)
        }
        analysis::ProducerSpec::CyclicOwner { sub } => {
            let x = try_eval_affine(bind, &env, sub).unwrap_or(0);
            x.rem_euclid(bind.nprocs)
        }
        analysis::ProducerSpec::BlockCyclicOwner { block, sub } => {
            let x = try_eval_affine(bind, &env, sub).unwrap_or(0);
            (x.div_euclid(*block)).rem_euclid(bind.nprocs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::Bindings;
    use ir::build::*;
    use spmd_opt::{fork_join, optimize};

    fn sweep() -> (Program, Bindings) {
        let mut pb = ProgramBuilder::new("sweep");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let _t = pb.begin_seq("t", con(0), con(4));
        let i = pb.begin_par("i", con(1), sym(n) - 2);
        pb.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 2);
        pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
        pb.end();
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 32);
        (prog, bind)
    }

    #[test]
    fn render_events_is_line_per_event() {
        let (prog, bind) = sweep();
        let plan = optimize(&prog, &bind);
        let events = unroll(&prog, &bind, &plan);
        let text = render_events(&prog, &events);
        assert_eq!(text.lines().count(), events.len());
        assert!(text.contains("dispatch"), "{text}");
        assert!(text.contains("neighbor"), "{text}");
        assert!(text.contains("t="), "{text}");
    }

    #[test]
    fn fork_join_unrolls_barrier_per_loop_execution() {
        let (prog, bind) = sweep();
        let plan = fork_join(&prog, &bind);
        let events = unroll(&prog, &bind, &plan);
        let c = DynCounts::from_events(&events, 4);
        // 5 iterations × 2 parallel loops.
        assert_eq!(c.barriers, 10);
        assert_eq!(c.dispatches, 10);
    }

    #[test]
    fn optimized_unrolls_single_dispatch_and_end_barrier() {
        let (prog, bind) = sweep();
        let plan = optimize(&prog, &bind);
        let events = unroll(&prog, &bind, &plan);
        let c = DynCounts::from_events(&events, 4);
        assert_eq!(c.dispatches, 1);
        assert_eq!(c.barriers, 1, "only the region end barrier");
        assert!(c.neighbor_posts > 0);
    }

    #[test]
    fn block_owner_fast_path_partitions_iterations() {
        // DOALL i = 0..15 writing A(i), A block-distributed over 4 procs
        // with extent 16 → block 4: pid owns [4p, 4p+3].
        let mut pb = ProgramBuilder::new("fp");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(a, [idx(i)]), ex(1.0));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 16);
        let plan = optimize(&prog, &bind);
        let events = unroll(&prog, &bind, &plan);
        // Execute only pid 2's work; elements 8..11 get written.
        let mem = Mem::new(&prog, &bind);
        for ev in &events {
            if matches!(ev, Event::Work { .. }) {
                exec_work(&prog, &bind, &mem, 2, 4, ev);
            }
        }
        for k in 0..16i64 {
            let expect = if (8..12).contains(&k) { 1.0 } else { 0.0 };
            assert_eq!(mem.array(a).get(&[k]), expect, "element {k}");
        }
    }

    #[test]
    fn cyclic_fast_path_strides() {
        let mut pb = ProgramBuilder::new("cy");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_cyclic());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(a, [idx(i)]), ex(1.0));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 16);
        let plan = optimize(&prog, &bind);
        let events = unroll(&prog, &bind, &plan);
        let mem = Mem::new(&prog, &bind);
        for ev in &events {
            if matches!(ev, Event::Work { .. }) {
                exec_work(&prog, &bind, &mem, 1, 4, ev);
            }
        }
        for k in 0..16i64 {
            let expect = if k % 4 == 1 { 1.0 } else { 0.0 };
            assert_eq!(mem.array(a).get(&[k]), expect, "element {k}");
        }
    }

    #[test]
    fn all_processors_cover_every_iteration_exactly_once() {
        let (prog, bind) = sweep();
        let plan = optimize(&prog, &bind);
        let events = unroll(&prog, &bind, &plan);
        let mem = Mem::new(&prog, &bind);
        let a = ir::ArrayId(0);
        mem.fill(a, |s| (s[0] * s[0]) as f64);
        // Run all 4 pids' work in pid order for every event (a legal
        // schedule for this program since syncs are respected by phase
        // order here).
        for ev in &events {
            if matches!(ev, Event::Work { .. }) {
                for pid in 0..4 {
                    exec_work(&prog, &bind, &mem, pid, 4, ev);
                }
            }
        }
        // Compare against sequential execution.
        let mem2 = Mem::new(&prog, &bind);
        mem2.fill(a, |s| (s[0] * s[0]) as f64);
        crate::run_sequential(&prog, &bind, &mem2);
        assert!(mem.max_abs_diff(&mem2) == 0.0);
    }
}
