//! Counter synchronization — the paper's flexible event variables.
//!
//! "Processors defining (producing) values can increment a counter, and
//! processors accessing (consuming) the values wait until the counter is
//! incremented to the proper value." Unlike full barriers, only the
//! processors actually involved in the communication pay for the
//! synchronization, and only one synchronization happens per pair of
//! communicating processors.

use crate::fault::{SyncError, WaitPoll, Watchdog};
use crate::spin::{SpinPolicy, SpinWait};
use crate::stats::{SyncKind, SyncStats};
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A bank of monotonically increasing synchronization counters.
pub struct Counters {
    c: Vec<CachePadded<AtomicU64>>,
    policy: SpinPolicy,
    stats: Option<Arc<SyncStats>>,
    /// Bumped by every [`Counters::reset`]; guarded waits capture it on
    /// entry and fail if it moves mid-wait (a reset raced the wait).
    generation: CachePadded<AtomicU64>,
    /// Consumers currently blocked in a wait; [`Counters::reset`]
    /// refuses to run while nonzero.
    waiting: CachePadded<AtomicUsize>,
}

/// RAII registration of one blocked consumer (keeps the waiter count
/// correct on every exit path, including deadline errors).
struct WaitingGuard<'a>(&'a AtomicUsize);

impl<'a> WaitingGuard<'a> {
    fn enter(w: &'a AtomicUsize) -> Self {
        w.fetch_add(1, Ordering::AcqRel);
        WaitingGuard(w)
    }
}

impl Drop for WaitingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Counters {
    /// A bank of `n` counters, all starting at zero.
    pub fn new(n: usize) -> Self {
        Counters {
            c: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            policy: SpinPolicy::auto(),
            stats: None,
            generation: CachePadded::new(AtomicU64::new(0)),
            waiting: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Attach instrumentation.
    pub fn with_stats(mut self, stats: Arc<SyncStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Override the spin → yield → park escalation policy.
    pub fn with_policy(mut self, policy: SpinPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of counters in the bank.
    pub fn len(&self) -> usize {
        self.c.len()
    }

    /// True if the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.c.is_empty()
    }

    /// Producer side: increment counter `id` (release ordering — the
    /// produced data becomes visible to waiters).
    pub fn increment(&self, id: usize) {
        self.c[id].fetch_add(1, Ordering::Release);
        if let Some(s) = &self.stats {
            s.counter_increment();
        }
    }

    /// Consumer side: block until counter `id` reaches at least `v`
    /// (acquire ordering).
    pub fn wait_ge(&self, id: usize, v: u64) {
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        let _w = WaitingGuard::enter(&self.waiting);
        let mut sw = SpinWait::new(self.policy);
        while self.c[id].load(Ordering::Acquire) < v {
            sw.snooze();
        }
        if let Some(s) = &self.stats {
            s.escalation(sw.effort());
            if let Some(t0) = t0 {
                s.counter_wait(t0.elapsed());
            }
        }
    }

    /// As [`Counters::wait_ge`], but guarded: returns
    /// [`SyncError::DeadlineExceeded`] (attributed to `site`/`pid`)
    /// instead of hanging when the counter never arrives, bails out on
    /// region poison, and detects a concurrent [`Counters::reset`]
    /// (stale generation) instead of waiting for a value that will
    /// never be reached again.
    pub fn wait_ge_until(
        &self,
        id: usize,
        v: u64,
        wd: &Watchdog,
        site: usize,
        pid: usize,
    ) -> Result<(), SyncError> {
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        let _w = WaitingGuard::enter(&self.waiting);
        let gen0 = self.generation.load(Ordering::Acquire);
        let r = wd.guarded_wait(site, pid, SyncKind::Counter, v, self.policy, || {
            if self.generation.load(Ordering::Acquire) != gen0 {
                return WaitPoll::Failed(SyncError::StaleGeneration { site, pid });
            }
            let cur = self.c[id].load(Ordering::Acquire);
            if cur >= v {
                WaitPoll::Ready
            } else {
                WaitPoll::Pending(cur)
            }
        });
        match r {
            Ok(effort) => {
                if let Some(s) = &self.stats {
                    s.escalation(effort);
                    if let Some(t0) = t0 {
                        s.counter_wait(t0.elapsed());
                    }
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Current value of counter `id`.
    pub fn value(&self, id: usize) -> u64 {
        self.c[id].load(Ordering::Acquire)
    }

    /// Reset every counter to zero (only between regions, never while
    /// other processors may be waiting).
    ///
    /// A reset racing a waiter is a lost-wakeup factory: the waiter's
    /// target can become unreachable and it spins forever. The bank
    /// therefore tracks blocked consumers and panics here if any are
    /// still waiting — a detected error at the reset site instead of a
    /// silent hang at the wait site. Guarded waits additionally carry a
    /// generation stamp, so even a reset that slips past this check
    /// (the waiter registers just after it) surfaces as
    /// [`SyncError::StaleGeneration`] rather than a hang.
    pub fn reset(&self) {
        let waiting = self.waiting.load(Ordering::Acquire);
        assert!(
            waiting == 0,
            "Counters::reset while {waiting} consumer(s) are blocked in wait_ge \
             (reset is only legal between regions)"
        );
        self.generation.fetch_add(1, Ordering::AcqRel);
        for c in &self.c {
            c.store(0, Ordering::Release);
        }
    }

    /// Number of consumers currently blocked in a wait (diagnostics).
    pub fn waiting(&self) -> usize {
        self.waiting.load(Ordering::Acquire)
    }

    /// Current reset generation (bumped by every [`Counters::reset`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_consumer_ordering() {
        let c = Arc::new(Counters::new(1));
        let data = Arc::new(AtomicU64::new(0));
        let consumer = {
            let c = Arc::clone(&c);
            let data = Arc::clone(&data);
            std::thread::spawn(move || {
                c.wait_ge(0, 1);
                // Release/acquire on the counter publishes the data.
                assert_eq!(data.load(Ordering::Relaxed), 42);
            })
        };
        data.store(42, Ordering::Relaxed);
        c.increment(0);
        consumer.join().unwrap();
    }

    #[test]
    fn wait_for_multiple_increments() {
        let c = Arc::new(Counters::new(2));
        let n_producers = 4;
        let handles: Vec<_> = (0..n_producers)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    c.increment(1);
                })
            })
            .collect();
        c.wait_ge(1, n_producers as u64);
        assert_eq!(c.value(1), n_producers as u64);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn stats_count_operations() {
        let stats = Arc::new(SyncStats::new());
        let c = Counters::new(1).with_stats(Arc::clone(&stats));
        c.increment(0);
        c.wait_ge(0, 1);
        assert_eq!(stats.counter_increments_count(), 1);
        assert_eq!(stats.counter_waits_count(), 1);
    }

    #[test]
    fn reset_zeroes() {
        let c = Counters::new(3);
        c.increment(2);
        c.reset();
        assert_eq!(c.value(2), 0);
        assert_eq!(c.generation(), 1);
    }

    #[test]
    fn guarded_wait_succeeds_and_times_out() {
        use crate::fault::{SyncError, Watchdog};
        use std::time::Duration;
        let wd = Watchdog::new(Duration::from_millis(40));
        let c = Counters::new(1);
        c.increment(0);
        assert_eq!(c.wait_ge_until(0, 1, &wd, 5, 2), Ok(()));
        let err = c.wait_ge_until(0, 3, &wd, 5, 2).unwrap_err();
        assert_eq!(
            err,
            SyncError::DeadlineExceeded {
                site: 5,
                pid: 2,
                kind: SyncKind::Counter,
                expected: 3,
                observed: 1,
            }
        );
        assert_eq!(c.waiting(), 0, "waiter count must unwind on error");
    }

    #[test]
    #[should_panic(expected = "Counters::reset while")]
    fn reset_with_blocked_waiter_is_detected() {
        let c = Arc::new(Counters::new(1));
        let waiter = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || c.wait_ge(0, 1))
        };
        // Wait for the consumer to register.
        while c.waiting() == 0 {
            std::thread::yield_now();
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.reset()));
        // Unblock the waiter before re-raising so the test thread is
        // not left with a dangling spinner.
        c.increment(0);
        waiter.join().unwrap();
        if let Err(p) = r {
            std::panic::resume_unwind(p);
        }
    }

    /// The recovery loop's contract: each retry attempt resets the bank
    /// between attempts (bumping the generation), and waits issued
    /// *after* the reset run against the fresh generation — they must
    /// succeed normally, never trip [`SyncError::StaleGeneration`] on
    /// their own attempt's stamp.
    #[test]
    fn reset_generations_do_not_go_stale_for_fresh_waits() {
        use crate::fault::Watchdog;
        use std::time::Duration;
        let c = Arc::new(Counters::new(2));
        for attempt in 0..4u64 {
            assert_eq!(c.generation(), attempt);
            // Fresh watchdog per attempt, like the executor's guarded
            // runs re-armed by the recovery supervisor.
            let wd = Arc::new(Watchdog::new(Duration::from_secs(30)));
            let waiter = {
                let (wd, c) = (Arc::clone(&wd), Arc::clone(&c));
                std::thread::spawn(move || c.wait_ge_until(0, 3, &wd, 1, 1))
            };
            for _ in 0..3 {
                c.increment(0);
            }
            assert_eq!(waiter.join().unwrap(), Ok(()), "attempt {attempt}");
            // Counter values from the abandoned attempt must not leak
            // into the next: reset zeroes them and stamps a new
            // generation.
            c.increment(1);
            c.reset();
            assert_eq!(c.value(0), 0);
            assert_eq!(c.value(1), 0);
        }
        assert_eq!(c.generation(), 4);
    }

    #[test]
    fn guarded_wait_detects_stale_generation() {
        use crate::fault::{SyncError, Watchdog};
        use std::time::Duration;
        let wd = Arc::new(Watchdog::new(Duration::from_secs(30)));
        let c = Arc::new(Counters::new(1));
        let waiter = {
            let (wd, c) = (Arc::clone(&wd), Arc::clone(&c));
            std::thread::spawn(move || c.wait_ge_until(0, 1, &wd, 2, 1))
        };
        while c.waiting() == 0 {
            std::thread::yield_now();
        }
        // Bypass the reset assertion to model a reset that raced past
        // it: bump the generation directly.
        c.generation.fetch_add(1, Ordering::AcqRel);
        let err = waiter.join().unwrap().unwrap_err();
        assert_eq!(err, SyncError::StaleGeneration { site: 2, pid: 1 });
    }
}
