//! Self-healing execution: checkpoint, bounded retry, and per-site
//! barrier fallback.
//!
//! [`run_parallel_recovering`] wraps the guarded executor
//! ([`crate::par::run_parallel_observed_on`]) in a supervisor loop that
//! turns a detected region failure (deadline, stale generation, panic
//! poison) into a bounded, observable retry instead of a terminal
//! report:
//!
//! 1. before the first attempt, the live-in memory is checkpointed
//!    ([`crate::checkpoint`]) — pre-images of exactly the schedule's
//!    write set — and one [`SyncFabric`] is built for the whole
//!    session;
//! 2. each failed attempt rolls memory back to the checkpoint, re-arms
//!    the fabric ([`SyncFabric::reset`] — barriers re-zeroed, counter
//!    generations bumped, stats cleared so attempts never conflate),
//!    sleeps a deterministic exponential backoff, and re-executes;
//! 3. every *implicated* sync site (all primary per-processor faults,
//!    not just whichever one won the race into the headline) climbs the
//!    escalation ladder of [`runtime::recovery::Quarantine`]: first
//!    fault *demotes* the site's optimized sync op to a full barrier
//!    (`spmd_opt::demote_site` — the paper's conservative fork-join
//!    placement), a second fault *quarantines* it, which additionally
//!    masks injected dropped posts there ([`SiteMaskedChaos`]) so a
//!    deterministic injector cannot re-kill every retry, and a third
//!    fault *isolates* the run (masks every injected drop — a fault
//!    that survives quarantine is barrier aliasing from another site);
//!    faults with no attributable site (worker panics, dispatch
//!    timeouts) are plainly retried.
//!
//! The loop is bounded by [`RetryPolicy::max_attempts`]; when the
//! budget runs out the last failure is returned as the residual. The
//! whole timeline is summarized by [`RecoveryOutcome::report`] as a
//! deterministic [`obs::RecoveryReport`] (planned backoffs, no
//! wall-clock).

use crate::checkpoint::Checkpoint;
use crate::events::unroll;
use crate::mem::Mem;
use crate::par::{
    run_parallel_observed_on, ChaosAction, ObserveOptions, ParallelOutcome, SyncChaos, SyncFabric,
};
use analysis::Bindings;
use ir::Program;
use obs::{AttemptReport, RecoveryReport, SiteActionReport};
use runtime::events::{EventKind, NO_SITE};
use runtime::fault::DISPATCH_SITE;
use runtime::recovery::{FaultDisposition, Quarantine, RetryPolicy};
use runtime::stats::StatsSnapshot;
use runtime::Team;
use spmd_opt::{demote_site, set_site_op, sync_sites, SpmdProgram, SyncOp};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Chaos pass-through that masks [`ChaosAction::Drop`] at quarantined
/// sites (benign perturbations — delays, stalls, spurious wakes — still
/// flow). Without this, a deterministic injector that drops every visit
/// of a site would defeat any finite retry budget.
struct SiteMaskedChaos {
    inner: Arc<dyn SyncChaos>,
    masked: Mutex<BTreeSet<usize>>,
    isolated: AtomicBool,
}

impl SiteMaskedChaos {
    fn new(inner: Arc<dyn SyncChaos>) -> Self {
        SiteMaskedChaos {
            inner,
            masked: Mutex::new(BTreeSet::new()),
            isolated: AtomicBool::new(false),
        }
    }

    /// Mask drops at `site` for every later attempt. Only called
    /// between attempts (no workers running).
    fn mask(&self, site: usize) {
        self.masked.lock().unwrap().insert(site);
    }

    /// Lift a site's mask again (probation served: the site is trusted
    /// with its optimized op, so injected faults there must count
    /// again). Only called between attempts.
    fn unmask(&self, site: usize) {
        self.masked.lock().unwrap().remove(&site);
    }

    /// Mask drops everywhere (the ladder's last rung before giving
    /// up — a fault that survives per-site quarantine is aliasing from
    /// somewhere else).
    fn isolate(&self) {
        self.isolated.store(true, Ordering::Release);
    }
}

impl SyncChaos for SiteMaskedChaos {
    fn at_sync(&self, site: usize, pid: usize, visit: u64) -> ChaosAction {
        let action = self.inner.at_sync(site, pid, visit);
        // A non-maskable policy models permanent hardware loss: its
        // drops flow through quarantine and isolation untouched, so
        // the sticky-fault classifier (not the site ladder) has to
        // resolve it.
        if matches!(action, ChaosAction::Drop)
            && self.inner.maskable()
            && (self.isolated.load(Ordering::Acquire)
                || self.masked.lock().unwrap().contains(&site))
        {
            ChaosAction::None
        } else {
            action
        }
    }

    fn maskable(&self) -> bool {
        self.inner.maskable()
    }
}

/// Infer which processor a failed attempt implicates, if any.
///
/// Four signals, checked in order:
/// 1. exactly one worker *panicked* — its pid (peers that observed the
///    poison are victims, and a poison-derived headline carries the
///    observer's pid, so the per-processor states are authoritative);
/// 2. exactly one worker owes neighbor posts — its traversal passed
///    more neighbor sync events than its shared flag cell recorded
///    ([`ParallelOutcome::post_deficits`]). This is physical evidence,
///    not positional inference: a healthy worker can never claim a
///    post that did not land. It is the only signal that survives
///    neighbor-chained plans, where the wedge cascades pid-to-pid and
///    the dead processor is as likely to be *waiting* (on a victim of
///    its own dropped posts) as it is to be ahead of the pack;
/// 3. exactly one worker finished `"ok"` while at least one peer holds
///    a primary sync fault — a silently-dead processor skips its own
///    waits and sails through while everyone else times out waiting
///    for its posts, so the lone survivor is the suspect;
/// 4. exactly one worker's terminal wait is at the *dispatch/join
///    gate* while at least one peer holds a primary fault at a real
///    sync site — under a barrier-only plan a dead pid posts nothing
///    and waits for nothing, so it outruns the region its whole team
///    is still wedged inside and parks at the gate.
///
/// Anything else (multiple panics, several survivors, a wedge with no
/// survivors) returns `None`: the attempt breaks any sticky streak and
/// is handled by the site ladder alone.
fn infer_suspect(out: &ParallelOutcome) -> Option<usize> {
    let failure = out.failure.as_ref()?;
    let panicked: Vec<usize> = failure
        .per_proc
        .iter()
        .enumerate()
        .filter(|(_, s)| s.starts_with("panicked"))
        .map(|(p, _)| p)
        .collect();
    if panicked.len() == 1 {
        return Some(panicked[0]);
    }
    if !panicked.is_empty() {
        return None;
    }
    let owing: Vec<usize> = out
        .post_deficits
        .iter()
        .enumerate()
        .filter(|(_, &d)| d > 0)
        .map(|(p, _)| p)
        .collect();
    if owing.len() == 1 {
        return Some(owing[0]);
    }
    let finished: Vec<usize> = failure
        .per_proc
        .iter()
        .enumerate()
        .filter(|(_, s)| s.as_str() == "ok")
        .map(|(p, _)| p)
        .collect();
    let primary_real = out
        .proc_errors
        .iter()
        .flatten()
        .filter(|e| e.is_primary() && e.site() != DISPATCH_SITE)
        .count();
    if finished.len() == 1 && primary_real >= 1 {
        return Some(finished[0]);
    }
    let at_dispatch: Vec<usize> = out
        .proc_errors
        .iter()
        .enumerate()
        .filter(|(_, e)| e.as_ref().is_some_and(|e| e.site() == DISPATCH_SITE))
        .map(|(p, _)| p)
        .collect();
    if finished.is_empty() && at_dispatch.len() == 1 && primary_real >= 1 {
        return Some(at_dispatch[0]);
    }
    None
}

/// What a supervised execution produced: the final attempt's outcome
/// plus the full recovery timeline.
pub struct RecoveryOutcome {
    /// The final attempt (success, or the residual failure when the
    /// budget ran out). Its stats/telemetry cover that attempt only —
    /// the fabric is reset between attempts.
    pub outcome: ParallelOutcome,
    /// The failed-and-retried attempts, in order.
    pub attempts: Vec<AttemptReport>,
    /// Total executions spent (1 = clean first run).
    pub attempts_used: u32,
    /// Sites demoted to a full barrier, with labels, in demotion order.
    pub demoted: Vec<(usize, String)>,
    /// Sites quarantined after demotion did not help.
    pub quarantined: Vec<usize>,
    /// Sites restored to their optimized op after serving probation
    /// ([`RetryPolicy::probation_k`] consecutive clean episodes), with
    /// labels, in restoration order.
    pub restored: Vec<(usize, String)>,
    /// Fault count per site, sorted by site.
    pub fault_counts: Vec<(usize, u32)>,
    /// Fault count per processor, sorted by pid.
    pub pid_fault_counts: Vec<(usize, u32)>,
    /// The processor the sticky-fault rule classified as permanently
    /// lost ([`RetryPolicy::sticky_pid_k`] consecutive attempts with
    /// the same primary suspect). When set, the supervisor aborted
    /// early with memory rolled back to the region checkpoint so a
    /// degrading caller can re-dispatch on a smaller team.
    pub lost_pid: Option<usize>,
    /// The plan the final attempt ran (demotions applied).
    pub final_plan: SpmdProgram,
    /// Array cells in the write-set checkpoint.
    pub checkpoint_cells: usize,
    /// Sync stats summed over *every* attempt (the fabric clears its
    /// counters on reset, so [`RecoveryOutcome::outcome`] covers only
    /// the final attempt; metrics totals must use this field).
    pub total_stats: StatsSnapshot,
    program: String,
    nprocs: usize,
    deadline_ms: f64,
    max_attempts: u32,
}

impl RecoveryOutcome {
    /// True when the final attempt completed.
    pub fn ok(&self) -> bool {
        self.outcome.ok()
    }

    /// True when completion took at least one retry.
    pub fn recovered(&self) -> bool {
        self.ok() && !self.attempts.is_empty()
    }

    /// The deterministic recovery report (pass the chaos seed when a
    /// seeded injector was active, so repro bundles carry it).
    pub fn report(&self, chaos_seed: Option<u64>) -> RecoveryReport {
        RecoveryReport {
            program: self.program.clone(),
            nprocs: self.nprocs,
            deadline_ms: self.deadline_ms,
            max_attempts: self.max_attempts,
            attempts_used: self.attempts_used,
            recovered: self.recovered(),
            ok: self.ok(),
            attempts: self.attempts.clone(),
            demoted: self.demoted.clone(),
            quarantined: self.quarantined.clone(),
            fault_counts: self.fault_counts.clone(),
            pid_fault_counts: self.pid_fault_counts.clone(),
            restored: self.restored.clone(),
            lost_pid: self.lost_pid,
            checkpoint_cells: self.checkpoint_cells,
            chaos_seed,
            residual: self.outcome.failure.clone(),
        }
    }
}

/// Execute `plan` under the recovery supervisor (see the module docs).
///
/// `opts.deadline` must be armed — without a watchdog a fault is a hang,
/// not a detected, retryable failure. Memory is rolled back to the
/// entry checkpoint before every retry, so on success `mem` holds a
/// result indistinguishable from a clean run.
pub fn run_parallel_recovering(
    prog: &Arc<Program>,
    bind: &Arc<Bindings>,
    plan: &SpmdProgram,
    mem: &Arc<Mem>,
    team: &Team,
    opts: &ObserveOptions,
    policy: &RetryPolicy,
) -> RecoveryOutcome {
    let deadline = opts
        .deadline
        .expect("run_parallel_recovering needs an armed deadline (opts.deadline)");
    let site_labels: Vec<String> = sync_sites(prog, plan)
        .into_iter()
        .map(|s| s.label)
        .collect();
    let events = unroll(prog, bind, plan);
    let checkpoint = Checkpoint::capture(prog, bind, &events, mem);
    let fabric = SyncFabric::for_plan_with(opts, prog, bind, plan);
    // Supervisor-side profile marks go on the extra track past the
    // workers' (index `nprocs`), so they never race a worker's ring.
    if let Some(p) = fabric.profiler() {
        p.record(
            p.supervisor_track(),
            EventKind::Checkpoint,
            NO_SITE,
            checkpoint.elem_cells() as u64,
        );
    }
    let mut working = plan.clone();
    let masked = opts
        .chaos
        .as_ref()
        .map(|c| Arc::new(SiteMaskedChaos::new(Arc::clone(c))));
    let mut ledger = Quarantine::new();
    let mut attempts: Vec<AttemptReport> = Vec::new();
    let mut demoted: Vec<(usize, String)> = Vec::new();
    let mut restored: Vec<(usize, String)> = Vec::new();
    // Ops displaced by demotion, kept so probation can restore them.
    let mut displaced: BTreeMap<usize, SyncOp> = BTreeMap::new();
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    let mut total_stats = StatsSnapshot::default();
    loop {
        attempt += 1;
        let mut aopts = opts.clone();
        if let Some(m) = &masked {
            aopts.chaos = Some(Arc::clone(m) as Arc<dyn SyncChaos>);
        }
        let out = run_parallel_observed_on(prog, bind, &working, mem, team, &aopts, &fabric);
        total_stats.merge(&out.stats);
        let failed = out.failure.is_some();
        let suspect = if failed { infer_suspect(&out) } else { None };
        let streak = if failed {
            ledger.record_attempt_suspect(suspect)
        } else {
            0
        };
        // Sticky-fault classification: the same pid implicated across
        // K consecutive failed attempts is a permanent processor loss,
        // not a flaky site — stop burning the retry budget and hand
        // the decision up (the degrading executor shrinks the team).
        let sticky = policy.sticky_pid_k > 0 && suspect.is_some() && streak >= policy.sticky_pid_k;
        if !failed || sticky || attempt >= max_attempts {
            if sticky {
                let failure = out.failure.as_ref().unwrap();
                attempts.push(AttemptReport {
                    attempt,
                    headline: failure.headline(),
                    actions: Vec::new(),
                    backoff_ms: 0,
                    barrier_episodes: out.stats.barrier_episodes,
                    counter_increments: out.stats.counter_increments,
                    neighbor_posts: out.stats.neighbor_posts,
                    spin_rounds: out.stats.spin_rounds,
                    yield_rounds: out.stats.yield_rounds,
                    parks: out.stats.parks,
                    suspect_pid: suspect,
                });
                // Leave memory at the region entry state so the caller
                // can re-dispatch on a smaller team immediately.
                checkpoint.rollback(mem);
                if let Some(p) = fabric.profiler() {
                    p.record(
                        p.supervisor_track(),
                        EventKind::Rollback,
                        NO_SITE,
                        checkpoint.elem_cells() as u64,
                    );
                }
            }
            return RecoveryOutcome {
                outcome: out,
                attempts,
                attempts_used: attempt,
                demoted,
                quarantined: ledger.quarantined().to_vec(),
                restored,
                fault_counts: ledger.fault_counts(),
                pid_fault_counts: ledger.pid_fault_counts(),
                lost_pid: if sticky { suspect } else { None },
                final_plan: working,
                checkpoint_cells: checkpoint.elem_cells(),
                total_stats,
                program: prog.name.clone(),
                nprocs: bind.nprocs as usize,
                deadline_ms: deadline.as_secs_f64() * 1e3,
                max_attempts,
            };
        }
        let failure = out.failure.as_ref().unwrap();
        // Every implicated site: the headline plus all primary
        // per-processor faults (poison observations are victims, not
        // causes; the dispatch sentinel is outside the site walk).
        let mut sites_hit = BTreeSet::new();
        if let Some(s) = failure.cause.site() {
            if s != DISPATCH_SITE {
                sites_hit.insert(s);
            }
        }
        for e in out.proc_errors.iter().flatten() {
            if e.is_primary() && e.site() != DISPATCH_SITE {
                sites_hit.insert(e.site());
            }
        }
        let mut actions = Vec::new();
        for &site in &sites_hit {
            let label = site_labels
                .get(site)
                .cloned()
                .unwrap_or_else(|| format!("s{site}"));
            let action = match ledger.record_fault(site) {
                FaultDisposition::Demote => {
                    if let Some(old) = demote_site(&mut working, site) {
                        displaced.insert(site, old);
                    }
                    demoted.push((site, label.clone()));
                    "demote"
                }
                FaultDisposition::Quarantine => {
                    if let Some(m) = &masked {
                        m.mask(site);
                    }
                    "quarantine"
                }
                FaultDisposition::Isolate => {
                    if let Some(m) = &masked {
                        m.isolate();
                    }
                    "isolate"
                }
                FaultDisposition::Retry => "retry",
            };
            actions.push(SiteActionReport {
                site,
                label,
                action: action.to_string(),
            });
        }
        // Probation: every site in the fault ledger that was *not*
        // implicated by this failed attempt earns a clean episode; a
        // site clean for `probation_k` consecutive episodes is
        // forgiven — quarantine mask lifted and the optimized sync op
        // it was demoted from put back in the working plan.
        if policy.probation_k > 0 {
            let on_ledger: Vec<usize> = ledger.fault_counts().iter().map(|&(s, _)| s).collect();
            for site in on_ledger {
                if sites_hit.contains(&site) {
                    continue;
                }
                if ledger.record_clean(site, policy.probation_k) {
                    if let Some(op) = displaced.remove(&site) {
                        set_site_op(&mut working, site, op);
                    }
                    if let Some(m) = &masked {
                        m.unmask(site);
                    }
                    let label = site_labels
                        .get(site)
                        .cloned()
                        .unwrap_or_else(|| format!("s{site}"));
                    restored.push((site, label.clone()));
                    actions.push(SiteActionReport {
                        site,
                        label,
                        action: "restore".to_string(),
                    });
                }
            }
        }
        let backoff = policy.backoff_before(attempt);
        attempts.push(AttemptReport {
            attempt,
            headline: failure.headline(),
            actions,
            backoff_ms: backoff.as_millis() as u64,
            barrier_episodes: out.stats.barrier_episodes,
            counter_increments: out.stats.counter_increments,
            neighbor_posts: out.stats.neighbor_posts,
            spin_rounds: out.stats.spin_rounds,
            yield_rounds: out.stats.yield_rounds,
            parks: out.stats.parks,
            suspect_pid: suspect,
        });
        checkpoint.rollback(mem);
        if let Some(p) = fabric.profiler() {
            let track = p.supervisor_track();
            p.record(
                track,
                EventKind::Rollback,
                NO_SITE,
                checkpoint.elem_cells() as u64,
            );
            p.record(track, EventKind::Retry, NO_SITE, attempt as u64);
        }
        fabric.reset();
        std::thread::sleep(backoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::BarrierKind;
    use crate::run_sequential;
    use ir::build::*;
    use spmd_opt::{fork_join, optimize};
    use std::time::Duration;

    fn sweep(n_val: i64, steps: i64, nprocs: i64) -> (Arc<Program>, Arc<Bindings>) {
        let mut pb = ProgramBuilder::new("sweep");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let _t = pb.begin_seq("t", con(0), con(steps - 1));
        let i = pb.begin_par("i", con(1), sym(n) - 2);
        pb.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 2);
        pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
        pb.end();
        pb.end();
        let prog = Arc::new(pb.finish());
        let bind = Arc::new(Bindings::new(nprocs).set(n, n_val));
        (prog, bind)
    }

    fn guarded(chaos: Option<Arc<dyn SyncChaos>>) -> ObserveOptions {
        ObserveOptions {
            barrier: BarrierKind::Central,
            deadline: Some(Duration::from_millis(120)),
            chaos,
            ..ObserveOptions::default()
        }
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 7,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..RetryPolicy::default()
        }
    }

    /// Drops every visit of one (site, pid) — a persistent fault a
    /// single retry cannot outrun; only the full ladder converges.
    ///
    /// The site must be one whose dropped post actually wedges the
    /// region: with one shared barrier across sites, a skipped arrival
    /// mid-run is backfilled by the dropper's *next* arrival (episode
    /// aliasing), so the tests drop at the run's final barrier site,
    /// where no later arrival can paper over the hole.
    struct DropAt {
        site: usize,
        pid: usize,
    }

    impl SyncChaos for DropAt {
        fn at_sync(&self, site: usize, pid: usize, _visit: u64) -> ChaosAction {
            if site == self.site && pid == self.pid {
                ChaosAction::Drop
            } else {
                ChaosAction::None
            }
        }
    }

    #[test]
    fn persistent_dropped_arrival_converges_via_the_ladder() {
        let (prog, bind) = sweep(32, 3, 4);
        let team = Team::new(4);
        let oracle = Mem::new(&prog, &bind);
        oracle.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
        run_sequential(&prog, &bind, &oracle);

        let plan = fork_join(&prog, &bind);
        let last = sync_sites(&prog, &plan).len() - 1;
        let mem = Arc::new(Mem::new(&prog, &bind));
        mem.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
        let chaos: Arc<dyn SyncChaos> = Arc::new(DropAt { site: last, pid: 0 });
        let r = run_parallel_recovering(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &guarded(Some(chaos)),
            &fast_policy(),
        );
        assert!(r.ok(), "must converge: {:?}", r.outcome.failure);
        assert!(r.recovered());
        // Fault 1 → demote s0, fault 2 → quarantine s0, attempt 3 is
        // clean: exactly two failed attempts.
        assert_eq!(r.attempts.len(), 2);
        assert_eq!(r.attempts_used, 3);
        assert_eq!(r.attempts[0].actions[0].action, "demote");
        assert_eq!(r.attempts[0].actions[0].site, last);
        assert_eq!(r.attempts[1].actions[0].action, "quarantine");
        assert!(r.quarantined.contains(&last));
        assert_eq!(r.demoted[0].0, last);
        // Rolled-back retries leave no trace in memory: the recovered
        // result is bit-identical to the sequential oracle.
        assert_eq!(mem.max_abs_diff(&oracle), 0.0);
        // Backoffs in the report are the planned policy values.
        assert_eq!(r.attempts[0].backoff_ms, 1);
        assert_eq!(r.attempts[1].backoff_ms, 2);
    }

    #[test]
    fn clean_run_spends_one_attempt_and_is_not_a_recovery() {
        let (prog, bind) = sweep(32, 3, 4);
        let team = Team::new(4);
        let plan = optimize(&prog, &bind);
        let mem = Arc::new(Mem::new(&prog, &bind));
        let r = run_parallel_recovering(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &guarded(None),
            &fast_policy(),
        );
        assert!(r.ok() && !r.recovered());
        assert_eq!(r.attempts_used, 1);
        assert!(r.attempts.is_empty() && r.demoted.is_empty());
        let rep = r.report(None);
        assert!(rep.ok && !rep.recovered);
    }

    #[test]
    fn exhausted_budget_surfaces_the_residual_failure() {
        let (prog, bind) = sweep(32, 2, 4);
        let team = Team::new(4);
        let plan = fork_join(&prog, &bind);
        let last = sync_sites(&prog, &plan).len() - 1;
        let mem = Arc::new(Mem::new(&prog, &bind));
        let chaos: Arc<dyn SyncChaos> = Arc::new(DropAt { site: last, pid: 0 });
        let policy = RetryPolicy {
            max_attempts: 1,
            ..fast_policy()
        };
        let r = run_parallel_recovering(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &guarded(Some(chaos)),
            &policy,
        );
        assert!(!r.ok());
        assert_eq!(r.attempts_used, 1);
        let rep = r.report(Some(9));
        assert!(!rep.ok && rep.residual.is_some());
        assert_eq!(rep.chaos_seed, Some(9));
    }

    /// A permanently dead core: drops every post on one pid, at every
    /// site, forever — and not maskable, because quarantining a site
    /// cannot revive hardware.
    struct SilentKill {
        pid: usize,
    }

    impl SyncChaos for SilentKill {
        fn at_sync(&self, _site: usize, pid: usize, _visit: u64) -> ChaosAction {
            if pid == self.pid {
                ChaosAction::Drop
            } else {
                ChaosAction::None
            }
        }

        fn maskable(&self) -> bool {
            false
        }
    }

    #[test]
    fn sticky_fault_classifies_a_dead_pid_instead_of_burning_the_budget() {
        let (prog, bind) = sweep(32, 3, 4);
        let team = Team::new(4);
        let plan = fork_join(&prog, &bind);
        let mem = Arc::new(Mem::new(&prog, &bind));
        mem.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
        let pristine = Mem::new(&prog, &bind);
        pristine.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
        let chaos: Arc<dyn SyncChaos> = Arc::new(SilentKill { pid: 0 });
        let policy = RetryPolicy {
            sticky_pid_k: 2,
            ..fast_policy()
        };
        let r = run_parallel_recovering(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &guarded(Some(chaos)),
            &policy,
        );
        // The dead pid finishes "ok" (its waits are all skipped) while
        // every peer wedges: two consecutive attempts with the same
        // lone survivor classify it as a permanent loss, well inside
        // the 7-attempt budget the site ladder would have burned.
        assert!(!r.ok());
        assert_eq!(r.lost_pid, Some(0));
        assert_eq!(r.attempts_used, 2);
        assert_eq!(r.attempts.len(), 2);
        assert_eq!(r.attempts[0].suspect_pid, Some(0));
        assert_eq!(r.attempts[1].suspect_pid, Some(0));
        assert_eq!(r.pid_fault_counts, vec![(0, 2)]);
        // The early abort leaves memory at the region entry state so a
        // degrading caller can re-dispatch immediately.
        assert_eq!(mem.max_abs_diff(&pristine), 0.0);
        let rep = r.report(None);
        assert_eq!(rep.lost_pid, Some(0));
    }

    /// The canonical sync-op sequence of a plan (mirrors the walk of
    /// `spmd_opt::set_site_op`), so tests can compare a site's op
    /// before demotion and after probation restores it.
    fn site_ops(plan: &SpmdProgram) -> Vec<SyncOp> {
        use spmd_opt::{RItem, TopItem};
        fn items(list: &[RItem], out: &mut Vec<SyncOp>) {
            for it in list {
                match it {
                    RItem::Phase(p) => out.push(p.after.clone()),
                    RItem::Seq {
                        body,
                        bottom,
                        after,
                        ..
                    } => {
                        items(body, out);
                        out.push(bottom.clone());
                        out.push(after.clone());
                    }
                }
            }
        }
        fn top(list: &[TopItem], out: &mut Vec<SyncOp>) {
            for it in list {
                match it {
                    TopItem::SerialStmt(_) => {}
                    TopItem::MasterLoop { body, .. } => top(body, out),
                    TopItem::Region(r) => {
                        items(&r.items, out);
                        out.push(r.end.clone());
                    }
                }
            }
        }
        let mut out = Vec::new();
        top(&plan.items, &mut out);
        out
    }

    /// Stateful injector for the probation scenario: P1 drops its
    /// neighbor posts at `site` during attempt 1 only (a transient
    /// flake that wedges the flag consumers at a neighbor site right
    /// away — no later post backfills), and P2 panics during attempts
    /// 2 and 3 (an unrelated siteless fault streak, during which the
    /// flaked site stays clean and must be forgiven). Attempts are
    /// counted per pid at `visit == 0` of `site`, which each pid
    /// reaches exactly once per attempt (visit counters reset between
    /// attempts) before anything can wedge it.
    struct TransientThenElsewhere {
        site: usize,
        p1_attempts: std::sync::atomic::AtomicU32,
        p2_attempts: std::sync::atomic::AtomicU32,
    }

    impl SyncChaos for TransientThenElsewhere {
        fn at_sync(&self, site: usize, pid: usize, visit: u64) -> ChaosAction {
            use std::sync::atomic::Ordering::SeqCst;
            if site == self.site && visit == 0 {
                if pid == 1 {
                    self.p1_attempts.fetch_add(1, SeqCst);
                }
                if pid == 2 {
                    let a = self.p2_attempts.fetch_add(1, SeqCst) + 1;
                    if a == 2 || a == 3 {
                        panic!("injected: unrelated worker fault");
                    }
                }
            }
            if site == self.site && pid == 1 && self.p1_attempts.load(SeqCst) == 1 {
                return ChaosAction::Drop;
            }
            ChaosAction::None
        }
    }

    /// Satellite: probation. A transiently-flaky site is demoted on
    /// its one fault, stays clean while later failures land elsewhere,
    /// and after `probation_k` clean episodes gets its optimized sync
    /// op back — the run does not pay the barrier tax forever.
    #[test]
    fn transient_flake_serves_probation_and_returns_to_its_optimized_op() {
        let (prog, bind) = sweep(32, 3, 4);
        let team = Team::new(4);
        let oracle = Mem::new(&prog, &bind);
        oracle.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
        run_sequential(&prog, &bind, &oracle);

        let plan = optimize(&prog, &bind);
        let ops = site_ops(&plan);
        let site = ops
            .iter()
            .position(|op| matches!(op, SyncOp::Neighbor { .. }))
            .expect("optimized sweep must place a neighbor sync");
        let mem = Arc::new(Mem::new(&prog, &bind));
        mem.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
        let chaos: Arc<dyn SyncChaos> = Arc::new(TransientThenElsewhere {
            site,
            p1_attempts: Default::default(),
            p2_attempts: Default::default(),
        });
        let policy = RetryPolicy {
            probation_k: 2,
            ..fast_policy()
        };
        let r = run_parallel_recovering(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &guarded(Some(chaos)),
            &policy,
        );
        assert!(r.ok(), "must converge: {:?}", r.outcome.failure);
        assert!(r.recovered());
        // Attempt 1 flakes: P1's dropped posts wedge the flag consumers
        // at a neighbor site (which of the two neighbor sites wins the
        // deadline race is timing-dependent, but a barrier site cannot
        // — nobody reaches the region end). Attempts 2-3 fail elsewhere
        // (sitelessly) while the demoted site serves probation; attempt
        // 4 is clean.
        assert_eq!(r.attempts_used, 4);
        assert!(!r.demoted.is_empty());
        for &(s, _) in &r.demoted {
            assert!(
                matches!(ops[s], SyncOp::Neighbor { .. }),
                "attempt 1 must wedge at a neighbor site, demoted s{s} ({:?})",
                ops[s]
            );
            assert!(
                r.restored.iter().any(|&(rs, _)| rs == s),
                "probation must lift s{s}: restored={:?}",
                r.restored
            );
            assert!(r
                .attempts
                .iter()
                .flat_map(|a| a.actions.iter())
                .any(|x| x.site == s && x.action == "restore"));
            // And the forgiven site's fault ledger is clean again.
            assert!(!r.fault_counts.iter().any(|&(fs, _)| fs == s));
            assert!(!r.quarantined.contains(&s));
        }
        // The restored plan carries the original optimized ops
        // everywhere — no demotion barrier survives probation.
        assert_eq!(site_ops(&r.final_plan), ops);
        assert_eq!(mem.max_abs_diff(&oracle), 0.0);
    }

    /// Satellite: per-attempt telemetry isolation. The final outcome's
    /// stats must equal the final attempt's schedule-derived counts —
    /// nothing from the abandoned attempts leaks through the reset.
    #[test]
    fn final_attempt_stats_are_not_conflated_with_retries() {
        let (prog, bind) = sweep(32, 3, 4);
        let team = Team::new(4);
        let plan = fork_join(&prog, &bind);
        let last = sync_sites(&prog, &plan).len() - 1;
        let mem = Arc::new(Mem::new(&prog, &bind));
        let chaos: Arc<dyn SyncChaos> = Arc::new(DropAt { site: last, pid: 0 });
        let r = run_parallel_recovering(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &guarded(Some(chaos)),
            &fast_policy(),
        );
        assert!(r.ok());
        assert_eq!(r.outcome.stats.barrier_episodes, r.outcome.counts.barriers);
        assert_eq!(
            r.outcome.stats.counter_increments,
            r.outcome.counts.counter_increments
        );
        // Each failed attempt recorded its own (partial) numbers; a
        // doubled-up count would exceed one schedule's worth.
        for a in &r.attempts {
            assert!(a.barrier_episodes <= r.outcome.counts.barriers);
        }
    }
}
