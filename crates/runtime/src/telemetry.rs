//! Per-sync-site, per-processor wait telemetry.
//!
//! [`crate::stats::SyncStats`] aggregates over the whole run; this module
//! attributes every synchronization operation to its *site* — a slot in
//! the optimized schedule, identified by the canonical site id the
//! optimizer assigns — and to the processor executing it. Each
//! (site, processor) cell holds lock-free counters plus a log2-bucket
//! wait-time histogram, so a per-site table can show which sync points
//! convoy and which are free (after the per-barrier breakdowns of
//! Chen/Su/Yew that the paper's cost model cites).
//!
//! The executor is handed an `Arc<SiteTelemetry>` sized from the plan's
//! site walk; recording is a few relaxed atomic RMWs, safe to call
//! concurrently from every worker.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets (covers 1ns .. ~2s and beyond; the last bucket
/// absorbs everything larger).
pub const HIST_BUCKETS: usize = 32;

/// Lock-free log2-bucket histogram of wait times in nanoseconds.
///
/// Bucket `k` counts waits with `ns` in `[2^k, 2^(k+1))` (bucket 0 also
/// takes zero-length waits); the final bucket absorbs the overflow.
#[derive(Debug)]
pub struct WaitHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for WaitHistogram {
    fn default() -> Self {
        WaitHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl WaitHistogram {
    /// Bucket index for a wait of `ns` nanoseconds.
    pub fn bucket_of(ns: u64) -> usize {
        if ns <= 1 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Lower bound (inclusive) of bucket `k` in nanoseconds.
    pub fn bucket_floor(k: usize) -> u64 {
        1u64 << k
    }

    /// Record one wait.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot all bucket counts.
    pub fn counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|k| self.buckets[k].load(Ordering::Relaxed))
    }
}

/// Static description of one sync site (plain strings — the runtime does
/// not know the optimizer's types; the caller renders them).
#[derive(Clone, Debug)]
pub struct SiteMeta {
    /// Canonical site id (index into the telemetry).
    pub id: usize,
    /// Structural slot kind ("phase-after", "loop-bottom", ...).
    pub kind: String,
    /// Human-readable slot location.
    pub label: String,
    /// The synchronization placed there ("barrier", "counter", ...).
    pub op: String,
}

/// One (site, processor) telemetry cell.
#[derive(Debug, Default)]
pub struct SiteCell {
    ops: AtomicU64,
    waits: AtomicU64,
    wait_ns: AtomicU64,
    max_wait_ns: AtomicU64,
    hist: WaitHistogram,
}

impl SiteCell {
    /// Record a primary operation (barrier arrival counts as one, as do
    /// counter increments and neighbor posts).
    pub fn op(&self) {
        self.ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one blocked interval of `ns` nanoseconds.
    pub fn wait(&self, ns: u64) {
        self.waits.fetch_add(1, Ordering::Relaxed);
        self.wait_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_wait_ns.fetch_max(ns, Ordering::Relaxed);
        self.hist.record(ns);
    }

    /// Plain-struct copy.
    pub fn snapshot(&self) -> CellSnapshot {
        CellSnapshot {
            ops: self.ops.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            wait_ns: self.wait_ns.load(Ordering::Relaxed),
            max_wait_ns: self.max_wait_ns.load(Ordering::Relaxed),
            hist: self.hist.counts(),
        }
    }
}

/// A point-in-time copy of one telemetry cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellSnapshot {
    /// Primary operations executed at the site by the processor.
    pub ops: u64,
    /// Blocked intervals.
    pub waits: u64,
    /// Total nanoseconds blocked.
    pub wait_ns: u64,
    /// Longest single blocked interval.
    pub max_wait_ns: u64,
    /// Log2-bucket wait histogram.
    pub hist: [u64; HIST_BUCKETS],
}

impl Default for CellSnapshot {
    fn default() -> Self {
        CellSnapshot {
            ops: 0,
            waits: 0,
            wait_ns: 0,
            max_wait_ns: 0,
            hist: [0; HIST_BUCKETS],
        }
    }
}

impl CellSnapshot {
    /// Merge another cell into this one (bucket-wise sum, max of maxes).
    pub fn merge(&mut self, other: &CellSnapshot) {
        self.ops += other.ops;
        self.waits += other.waits;
        self.wait_ns += other.wait_ns;
        self.max_wait_ns = self.max_wait_ns.max(other.max_wait_ns);
        for (a, b) in self.hist.iter_mut().zip(other.hist.iter()) {
            *a += b;
        }
    }
}

/// Per-site, per-processor telemetry for one run.
#[derive(Debug)]
pub struct SiteTelemetry {
    nprocs: usize,
    sites: Vec<SiteMeta>,
    cells: Vec<SiteCell>,
}

/// Snapshot of one site across the team.
#[derive(Clone, Debug)]
pub struct SiteSnapshot {
    /// The site's static description.
    pub meta: SiteMeta,
    /// One cell per processor.
    pub per_proc: Vec<CellSnapshot>,
    /// All processors merged.
    pub total: CellSnapshot,
}

impl SiteTelemetry {
    /// Telemetry for `sites` over a team of `nprocs` processors.
    pub fn new(sites: Vec<SiteMeta>, nprocs: usize) -> Self {
        let cells = (0..sites.len() * nprocs)
            .map(|_| SiteCell::default())
            .collect();
        SiteTelemetry {
            nprocs,
            sites,
            cells,
        }
    }

    /// Team size.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The static site descriptions.
    pub fn sites(&self) -> &[SiteMeta] {
        &self.sites
    }

    /// The cell for (site, processor).
    pub fn cell(&self, site: usize, pid: usize) -> &SiteCell {
        debug_assert!(pid < self.nprocs);
        &self.cells[site * self.nprocs + pid]
    }

    /// Snapshot every site.
    pub fn snapshot(&self) -> Vec<SiteSnapshot> {
        self.sites
            .iter()
            .map(|meta| {
                let per_proc: Vec<CellSnapshot> = (0..self.nprocs)
                    .map(|pid| self.cell(meta.id, pid).snapshot())
                    .collect();
                let mut total = CellSnapshot::default();
                for c in &per_proc {
                    total.merge(c);
                }
                SiteSnapshot {
                    meta: meta.clone(),
                    per_proc,
                    total,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(WaitHistogram::bucket_of(0), 0);
        assert_eq!(WaitHistogram::bucket_of(1), 0);
        assert_eq!(WaitHistogram::bucket_of(2), 1);
        assert_eq!(WaitHistogram::bucket_of(3), 1);
        assert_eq!(WaitHistogram::bucket_of(4), 2);
        assert_eq!(WaitHistogram::bucket_of(1023), 9);
        assert_eq!(WaitHistogram::bucket_of(1024), 10);
        assert_eq!(WaitHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let h = WaitHistogram::default();
        h.record(3);
        h.record(3);
        h.record(1024);
        let c = h.counts();
        assert_eq!(c[1], 2);
        assert_eq!(c[10], 1);
        assert_eq!(c.iter().sum::<u64>(), 3);
    }

    #[test]
    fn cells_attribute_by_site_and_processor() {
        let sites = (0..3)
            .map(|id| SiteMeta {
                id,
                kind: "phase-after".into(),
                label: format!("site {id}"),
                op: "barrier".into(),
            })
            .collect();
        let t = SiteTelemetry::new(sites, 2);
        t.cell(0, 0).op();
        t.cell(0, 0).wait(100);
        t.cell(0, 1).wait(900);
        t.cell(2, 1).op();
        let snap = t.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].per_proc[0].ops, 1);
        assert_eq!(snap[0].per_proc[0].waits, 1);
        assert_eq!(snap[0].total.waits, 2);
        assert_eq!(snap[0].total.wait_ns, 1000);
        assert_eq!(snap[0].total.max_wait_ns, 900);
        assert_eq!(snap[1].total, CellSnapshot::default());
        assert_eq!(snap[2].per_proc[1].ops, 1);
        assert_eq!(snap[2].total.hist.iter().sum::<u64>(), 0);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let t = Arc::new(SiteTelemetry::new(
            vec![SiteMeta {
                id: 0,
                kind: "region-end".into(),
                label: "end".into(),
                op: "barrier".into(),
            }],
            4,
        ));
        let handles: Vec<_> = (0..4)
            .map(|pid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for k in 0..1000u64 {
                        t.cell(0, pid).op();
                        t.cell(0, pid).wait(k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = t.snapshot();
        assert_eq!(snap[0].total.ops, 4000);
        assert_eq!(snap[0].total.waits, 4000);
        assert_eq!(snap[0].total.hist.iter().sum::<u64>(), 4000);
        assert_eq!(snap[0].total.max_wait_ns, 999);
    }
}
