//! End-to-end total-availability tests: the degradation supervisor on
//! every shipped `.be` kernel, plus the `beopt --run --degrade`
//! exit-code contract.
//!
//! The unit tests in `interp::degrade` cover the ladder mechanics;
//! these tests cover the tool-level promise — under a *persistent*
//! kill-pid chaos policy (any pid silently dead, or pid 0 panicking
//! forever, which survives every team shrink and forces the serial
//! tail), every kernel under both plan families still completes with
//! memory **bitwise** equal to the sequential oracle, and the
//! degradation report records which rung finished the job.

use barrier_elim::analysis::Bindings;
use barrier_elim::frontend;
use barrier_elim::interp::{run_parallel_degrading, DegradeRung, Mem, ObserveOptions, SyncChaos};
use barrier_elim::ir::SymId;
use barrier_elim::oracle::{degrade_check, KillMode, KillPidChaos};
use barrier_elim::runtime::{RetryPolicy, Team};
use barrier_elim::spmd_opt::{fork_join, optimize, SpmdProgram};
use std::sync::Arc;
use std::time::Duration;

fn load(
    kernel: &str,
    sets: &[(&str, i64)],
    nprocs: i64,
) -> (Arc<barrier_elim::ir::Program>, Arc<Bindings>) {
    let src = std::fs::read_to_string(format!("kernels/{kernel}")).unwrap();
    let prog = frontend::parse(&src).unwrap_or_else(|e| panic!("{kernel}: {e}"));
    let mut bind = Bindings::new(nprocs);
    for (name, v) in sets {
        let pos = prog
            .syms
            .iter()
            .position(|s| &s.name == name)
            .unwrap_or_else(|| panic!("sym {name} missing"));
        bind.bind(SymId(pos as u32), *v);
    }
    (Arc::new(prog), Arc::new(bind))
}

/// Tight budgets keep the full kill matrix fast; the sticky classifier
/// needs two strikes, so three attempts per round is plenty.
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(2),
        sticky_pid_k: 2,
        ..RetryPolicy::default()
    }
}

const DEADLINE: Duration = Duration::from_millis(120);

/// The acceptance property of the tentpole, for one kernel: every pid
/// silently killed (plus pid 0 panic-killed — the forced worst case)
/// under both plan families, and every run must complete bitwise
/// oracle-exact, on a degraded rung, with the rung recorded in the
/// report.
fn kill_matrix(kernel: &str, sets: &[(&str, i64)]) {
    let (prog, bind) = load(kernel, sets, 4);
    let team = Team::new(4);
    type Replan = fn(&barrier_elim::ir::Program, &Bindings) -> SpmdProgram;
    let plans: [(&str, SpmdProgram, Replan); 2] = [
        ("fork-join", fork_join(&prog, &bind), fork_join),
        ("optimized", optimize(&prog, &bind), optimize),
    ];
    for (label, plan, replan) in plans {
        let r = degrade_check(
            &prog,
            &bind,
            &plan,
            &team,
            DEADLINE,
            0.0,
            &fast_policy(),
            &replan,
        );
        assert!(
            r.ok(),
            "{kernel} {label} kill matrix failed: {:?}",
            r.failures()
        );
        // Every pid once, silently, plus the panic kill of P0.
        assert_eq!(r.runs.len(), 5);
        for run in &r.runs {
            assert!(run.completed, "{kernel} {label}: P{} kill", run.pid);
            assert_eq!(
                run.diff,
                0.0,
                "{kernel} {label}: P{} {} kill not bitwise",
                run.pid,
                run.mode.as_str()
            );
            // The report records the rung that finished the job, and a
            // killed pid never yields a clean run.
            assert_eq!(run.report.rung, run.rung);
            assert!(
                run.rung != "clean",
                "{kernel} {label}: kill absorbed silently"
            );
            assert!(run.report.completed);
            assert_eq!(run.report.nprocs_initial, 4);
            assert_eq!(run.report.nprocs_final, run.nprocs_final);
        }
        // P0 exists at every width: its panic kill must descend all
        // the way to the sequential tail.
        let worst = r
            .runs
            .iter()
            .find(|k| k.mode == KillMode::Panic)
            .expect("campaign includes the panic kill");
        assert_eq!(worst.pid, 0);
        assert_eq!(worst.rung, "serial", "{kernel} {label}");
        assert_eq!(worst.nprocs_final, 1);
        assert!(worst.report.serial_fallback);
    }
}

#[test]
fn broadcast_survives_every_kill_pid_policy() {
    kill_matrix("broadcast.be", &[("n", 12)]);
}

#[test]
fn jacobi_survives_every_kill_pid_policy() {
    kill_matrix("jacobi.be", &[("n", 48), ("tmax", 4)]);
}

#[test]
fn pipeline_survives_every_kill_pid_policy() {
    kill_matrix("pipeline.be", &[("n", 16), ("tmax", 3)]);
}

#[test]
fn private_gather_survives_every_kill_pid_policy() {
    kill_matrix("private_gather.be", &[("n", 10)]);
}

#[test]
fn shallow_survives_every_kill_pid_policy() {
    kill_matrix("shallow.be", &[("n", 12), ("tmax", 2)]);
}

/// Losing the top pid is recoverable by a single shrink: the report's
/// timeline shows the classification round at full width and the
/// completing round one narrower, with the plan re-derived at the new
/// width.
#[test]
fn shrink_timeline_is_recorded_round_by_round() {
    let (prog, bind) = load("jacobi.be", &[("n", 48), ("tmax", 4)], 4);
    let team = Team::new(4);
    let plan = optimize(&prog, &bind);
    let oracle = Mem::new(&prog, &bind);
    barrier_elim::interp::run_sequential(&prog, &bind, &oracle);
    let mem = Arc::new(Mem::new(&prog, &bind));
    let chaos: Arc<dyn SyncChaos> = Arc::new(KillPidChaos {
        pid: 3,
        mode: KillMode::Silent,
    });
    let d = run_parallel_degrading(
        &prog,
        &bind,
        &plan,
        &mem,
        &team,
        &ObserveOptions {
            deadline: Some(DEADLINE),
            chaos: Some(chaos),
            ..ObserveOptions::default()
        },
        &fast_policy(),
        &|p, b| optimize(p, b),
    );
    assert!(d.completed() && d.degraded());
    assert_eq!(d.rung, DegradeRung::Shrunk);
    assert_eq!(d.nprocs_final, 3);
    assert_eq!(d.procs_lost, 1);
    assert_eq!(mem.max_abs_diff(&oracle), 0.0, "bitwise");
    let rep = d.report(None);
    assert_eq!(rep.rung, "shrunk");
    assert_eq!(rep.rounds.len(), 2);
    assert_eq!(rep.rounds[0].nprocs, 4);
    assert_eq!(rep.rounds[0].lost_pid, Some(3));
    assert_eq!(rep.rounds[1].nprocs, 3);
    assert!(rep.rounds[1].recovery.ok);
    // The rendered timeline tells the same story.
    let txt = barrier_elim::obs::render_degradation(&rep);
    assert!(txt.contains("rung    : shrunk"), "{txt}");
    assert!(txt.contains("P3 classified as permanent loss"), "{txt}");
    assert!(txt.contains("round P=3: completed"), "{txt}");
    assert!(txt.contains("oracle-exact"), "{txt}");
}

mod cli {
    use super::*;
    use barrier_elim::oracle::droppable_posts;
    use std::process::Command;

    fn beopt(args: &[&str]) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_beopt"))
            .args(args)
            .output()
            .expect("spawn beopt")
    }

    /// Satellite: a degraded-but-completed run is a *successful* run —
    /// exit 0, with the degradation report on stdout.
    #[test]
    fn degrade_flag_turns_a_persistent_drop_into_exit_zero() {
        // A drop the optimized jacobi plan is guaranteed to wedge on:
        // the last precisely-attributable post of the schedule.
        let (prog, bind) = load("jacobi.be", &[("n", 48), ("tmax", 4)], 4);
        let plan = optimize(&prog, &bind);
        let spec = droppable_posts(&prog, &bind, &plan)
            .pop()
            .expect("jacobi has droppable posts")
            .spec;
        let drop = format!("{}:{}:{}", spec.site, spec.pid, spec.from_visit);
        let out = beopt(&[
            "kernels/jacobi.be",
            "--nprocs",
            "4",
            "--set",
            "n=48",
            "--set",
            "tmax=4",
            "--run",
            "--quiet",
            "--degrade",
            "--deadline",
            "150",
            "--chaos-drop",
            &drop,
        ]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "beopt --degrade must exit 0 on a degraded-but-completed run:\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout.contains("--- degradation report ---"), "{stdout}");
        assert!(stdout.contains("rung    :"), "{stdout}");
        assert!(
            stdout.contains("run completed with oracle-exact memory"),
            "{stdout}"
        );
    }

    /// A clean run under `--degrade` stays on the top rung and also
    /// exits 0.
    #[test]
    fn degrade_flag_is_a_no_op_on_a_clean_run() {
        let out = beopt(&[
            "kernels/shallow.be",
            "--nprocs",
            "4",
            "--set",
            "n=12",
            "--set",
            "tmax=2",
            "--run",
            "--quiet",
            "--degrade",
        ]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout.contains("rung    : clean"), "{stdout}");
    }
}
