//! Affine index expressions and floating-point value expressions.

use crate::decl::{ArrayId, ScalarId, SymId};
use crate::node::LoopId;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An atom an affine expression can mention: a loop index or a symbolic
/// program constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum AffAtom {
    /// A loop index variable.
    Loop(LoopId),
    /// A symbolic constant (problem size, processor count…).
    Sym(SymId),
}

/// An affine integer expression `constant + Σ coeff·atom` with `i64`
/// coefficients, used for loop bounds, array subscripts, extents, and
/// guard conditions.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Affine {
    terms: BTreeMap<AffAtom, i64>,
    constant: i64,
}

impl Affine {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        Affine {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression `1·atom`.
    pub fn atom(a: AffAtom) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(a, 1);
        Affine { terms, constant: 0 }
    }

    /// The loop-index expression `i`.
    pub fn index(i: LoopId) -> Self {
        Self::atom(AffAtom::Loop(i))
    }

    /// The symbolic-constant expression `s`.
    pub fn sym(s: SymId) -> Self {
        Self::atom(AffAtom::Sym(s))
    }

    /// Coefficient of an atom (0 if absent).
    pub fn coeff(&self, a: AffAtom) -> i64 {
        self.terms.get(&a).copied().unwrap_or(0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Iterate `(atom, coeff)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (AffAtom, i64)> + '_ {
        self.terms.iter().map(|(a, c)| (*a, *c))
    }

    /// True if no atoms appear.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// All loop indices mentioned.
    pub fn loops(&self) -> impl Iterator<Item = LoopId> + '_ {
        self.terms.keys().filter_map(|a| match a {
            AffAtom::Loop(l) => Some(*l),
            AffAtom::Sym(_) => None,
        })
    }

    /// Set a coefficient (removing zero terms).
    pub fn set_coeff(&mut self, a: AffAtom, c: i64) {
        if c == 0 {
            self.terms.remove(&a);
        } else {
            self.terms.insert(a, c);
        }
    }

    /// Add `c·a`.
    pub fn add_term(&mut self, a: AffAtom, c: i64) {
        let n = self.coeff(a).checked_add(c).expect("affine overflow");
        self.set_coeff(a, n);
    }

    /// Multiply by an integer.
    pub fn scaled(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::default();
        }
        let mut out = Affine::constant(self.constant.checked_mul(k).expect("affine overflow"));
        for (a, c) in self.terms() {
            out.set_coeff(a, c.checked_mul(k).expect("affine overflow"));
        }
        out
    }

    /// Evaluate under an atom assignment.
    pub fn eval(&self, assign: &dyn Fn(AffAtom) -> i64) -> i64 {
        let mut acc = self.constant;
        for (a, c) in self.terms() {
            acc = acc
                .checked_add(c.checked_mul(assign(a)).expect("affine eval overflow"))
                .expect("affine eval overflow");
        }
        acc
    }

    /// Substitute an affine expression for a loop index.
    pub fn substituted(&self, l: LoopId, replacement: &Affine) -> Affine {
        let c = self.coeff(AffAtom::Loop(l));
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.set_coeff(AffAtom::Loop(l), 0);
        out + replacement.scaled(c)
    }
}

impl fmt::Debug for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (a, c) in self.terms() {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{c}*{a:?}")?;
            first = false;
        }
        if first || self.constant != 0 {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

impl From<i64> for Affine {
    fn from(c: i64) -> Self {
        Affine::constant(c)
    }
}

impl Add for Affine {
    type Output = Affine;
    fn add(mut self, rhs: Affine) -> Affine {
        self.constant = self
            .constant
            .checked_add(rhs.constant)
            .expect("affine overflow");
        for (a, c) in rhs.terms() {
            self.add_term(a, c);
        }
        self
    }
}

impl Add<i64> for Affine {
    type Output = Affine;
    fn add(self, rhs: i64) -> Affine {
        self + Affine::constant(rhs)
    }
}

impl Sub for Affine {
    type Output = Affine;
    fn sub(self, rhs: Affine) -> Affine {
        self + rhs.scaled(-1)
    }
}

impl Sub<i64> for Affine {
    type Output = Affine;
    fn sub(self, rhs: i64) -> Affine {
        self + Affine::constant(-rhs)
    }
}

impl Mul<i64> for Affine {
    type Output = Affine;
    fn mul(self, k: i64) -> Affine {
        self.scaled(k)
    }
}

impl Neg for Affine {
    type Output = Affine;
    fn neg(self) -> Affine {
        self.scaled(-1)
    }
}

/// Binary floating-point operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl BinOp {
    /// Apply to two values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }
}

/// Unary floating-point operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Negation.
    Neg,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Exponential.
    Exp,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
}

impl UnOp {
    /// Apply to a value.
    pub fn apply(self, a: f64) -> f64 {
        match self {
            UnOp::Neg => -a,
            UnOp::Sqrt => a.sqrt(),
            UnOp::Abs => a.abs(),
            UnOp::Exp => a.exp(),
            UnOp::Sin => a.sin(),
            UnOp::Cos => a.cos(),
        }
    }
}

/// A floating-point value expression — the right-hand side of an
/// assignment. Array subscripts inside are [`Affine`].
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A literal.
    Lit(f64),
    /// The value of an affine integer expression, as `f64`.
    Idx(Affine),
    /// A scalar variable read.
    Scalar(ScalarId),
    /// An array element read.
    Elem(ArrayId, Vec<Affine>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Un(UnOp, Box<Expr>),
}

impl Expr {
    /// All array reads in the expression, with their subscripts.
    pub fn array_reads(&self) -> Vec<(ArrayId, Vec<Affine>)> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Elem(a, subs) = e {
                out.push((*a, subs.clone()));
            }
        });
        out
    }

    /// All scalar reads in the expression.
    pub fn scalar_reads(&self) -> Vec<ScalarId> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Scalar(s) = e {
                out.push(*s);
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Bin(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Un(_, a) => a.walk(f),
            _ => {}
        }
    }

    /// Minimum of two expressions.
    pub fn min(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(self), Box::new(other))
    }

    /// Maximum of two expressions.
    pub fn max(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(self), Box::new(other))
    }

    /// Square root.
    pub fn sqrt(self) -> Expr {
        Expr::Un(UnOp::Sqrt, Box::new(self))
    }

    /// Absolute value.
    pub fn abs(self) -> Expr {
        Expr::Un(UnOp::Abs, Box::new(self))
    }

    /// Sine.
    pub fn sin(self) -> Expr {
        Expr::Un(UnOp::Sin, Box::new(self))
    }

    /// Cosine.
    pub fn cos(self) -> Expr {
        Expr::Un(UnOp::Cos, Box::new(self))
    }

    /// Exponential.
    pub fn exp(self) -> Expr {
        Expr::Un(UnOp::Exp, Box::new(self))
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Self {
        Expr::Lit(v)
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }
}

impl Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(self), Box::new(rhs))
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Un(UnOp::Neg, Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn li(n: u32) -> LoopId {
        LoopId(n)
    }

    #[test]
    fn affine_arithmetic() {
        let i = Affine::index(li(0));
        let e = i.clone() * 2 + 3;
        assert_eq!(e.coeff(AffAtom::Loop(li(0))), 2);
        assert_eq!(e.constant_term(), 3);
        let z = e.clone() - e;
        assert!(z.is_constant());
        assert_eq!(z.constant_term(), 0);
    }

    #[test]
    fn affine_eval_and_subst() {
        let i = Affine::index(li(0));
        let j = Affine::index(li(1));
        let e = i.clone() + j.clone() * 3 - 1;
        let v = e.eval(&|a| match a {
            AffAtom::Loop(LoopId(0)) => 10,
            AffAtom::Loop(LoopId(1)) => 2,
            _ => panic!(),
        });
        assert_eq!(v, 10 + 6 - 1);
        // substitute j := i + 1 → i + 3i + 3 - 1 = 4i + 2
        let s = e.substituted(li(1), &(i.clone() + 1));
        assert_eq!(s.coeff(AffAtom::Loop(li(0))), 4);
        assert_eq!(s.constant_term(), 2);
    }

    #[test]
    fn expr_collects_reads() {
        let a = ArrayId(0);
        let s = ScalarId(0);
        let e = Expr::Elem(a, vec![Affine::constant(1)])
            + Expr::Scalar(s) * Expr::Lit(2.0)
            + Expr::Elem(a, vec![Affine::constant(2)]);
        assert_eq!(e.array_reads().len(), 2);
        assert_eq!(e.scalar_reads(), vec![s]);
    }

    #[test]
    fn ops_apply() {
        assert_eq!(BinOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(BinOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(UnOp::Abs.apply(-2.0), 2.0);
        assert_eq!(UnOp::Neg.apply(2.0), -2.0);
    }
}
