//! Ablation A1 — the value of synchronization *replacement* (counters
//! and neighbor flags) separate from barrier *elimination*: compare the
//! optimized plan against the same plan with every remaining sync turned
//! back into a barrier (`barrierize`), on the pipelined kernels where
//! replacement matters most.

use interp::{run_parallel, Mem};
use runtime::Team;
use spmd_bench::{barrierize, dyn_counts, instance, Table};
use std::sync::Arc;
use suite::Scale;

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    // At least 4 logical processors so the sync structure is exercised;
    // on smaller hosts the threads are oversubscribed (counts stay
    // exact, wait times are inflated). BE_MAX_P overrides.
    let p = std::env::var("BE_MAX_P")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| cores.clamp(4, 8));
    let team = Team::new(p);
    println!("Ablation: counters/neighbor flags vs equivalent barriers (P = {p})\n");
    let mut t = Table::new(&[
        "program",
        "barriers opt",
        "barriers barrierized",
        "time opt ms",
        "time barrierized ms",
    ]);
    for name in ["adi", "erlebacher", "seidel_pipe", "lu", "jacobi2d"] {
        let def = suite::by_name(name).unwrap();
        let (built, _) = instance(&def, Scale::Small, p as i64);
        let prog = Arc::new(built.prog);
        let bind = Arc::new({
            let mut b = analysis::Bindings::new(p as i64);
            for &(s, v) in &built.values {
                b.bind(s, v);
            }
            b
        });
        let opt = spmd_opt::optimize(&prog, &bind);
        let bar = barrierize(&opt);
        let c_opt = dyn_counts(&prog, &bind, &opt);
        let c_bar = dyn_counts(&prog, &bind, &bar);
        let time_plan = |plan: &spmd_opt::SpmdProgram| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let mem = Arc::new(Mem::new(&prog, &bind));
                let out = run_parallel(&prog, &bind, plan, &mem, &team);
                best = best.min(out.elapsed.as_secs_f64() * 1e3);
            }
            best
        };
        t.row(vec![
            name.to_string(),
            c_opt.barriers.to_string(),
            c_bar.barriers.to_string(),
            format!("{:.2}", time_plan(&opt)),
            format!("{:.2}", time_plan(&bar)),
        ]);
    }
    print!("{}", t.render());
    println!("\nExpected shape: replacement removes nearly all remaining barriers and");
    println!("is at least as fast (pipelines overlap instead of lock-stepping).");
}
