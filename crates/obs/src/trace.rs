//! Chrome-trace (chrome://tracing / Perfetto) timeline writer.
//!
//! Executors record [`Span`]s — one per work phase, dispatch, or sync
//! wait, per processor — and this module lowers them to the Trace Event
//! Format: a `traceEvents` array of `B`/`E` duration events with
//! microsecond timestamps, one track (`tid`) per processor, plus
//! `thread_name` metadata so Perfetto labels the tracks `proc 0..P-1`.
//!
//! Within one track, events are emitted in timestamp order with `E`
//! before `B` at equal timestamps, so adjacent spans (a wait ending
//! exactly where the next phase begins) nest correctly.
//!
//! Beyond plain duration events the writer knows three more classes,
//! used by the profiler ([`TraceBuilder::extend_with_profile`]):
//! instants (`ph:"i"` — escalation transitions, recovery marks), async
//! spans (`ph:"b"`/`"e"` — FME pair-query spans, which may interleave
//! and so cannot nest as B/E), and flow arrows (`ph:"s"`/`"f"` — one
//! per site pointing from the first arriver of the site's worst
//! episode to the straggler that gated it).

use crate::json::Json;
use runtime::events::{EventKind, ProfileData, NO_SITE};
use runtime::telemetry::SiteMeta;

/// Span categories (the trace viewer colors by category).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanCat {
    /// Executing a work phase (parallel/replicated/master).
    Work,
    /// Blocked in a synchronization operation.
    Sync,
    /// Master-to-worker dispatch of a fork-join region.
    Dispatch,
}

impl SpanCat {
    /// Stable category name.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanCat::Work => "work",
            SpanCat::Sync => "sync",
            SpanCat::Dispatch => "dispatch",
        }
    }
}

/// One closed interval of one processor's timeline.
#[derive(Clone, Debug)]
pub struct Span {
    /// Processor (trace track).
    pub pid: usize,
    /// Displayed name, e.g. `DOALL i` or `barrier wait @s3`.
    pub name: String,
    /// Category.
    pub cat: SpanCat,
    /// Start, microseconds from run start.
    pub start_us: u64,
    /// End, microseconds from run start (clamped to `start_us + 1` when
    /// equal, so zero-length spans stay visible and well-nested).
    pub end_us: u64,
}

/// A non-duration trace point (instant, async endpoint, or flow
/// endpoint) on any track, including named extra tracks past the
/// processor range.
#[derive(Clone, Debug)]
struct ExtraEvent {
    tid: usize,
    name: String,
    cat: &'static str,
    ts_us: u64,
    /// Trace phase: `"i"`, `"b"`, `"e"`, `"s"`, or `"f"`.
    ph: &'static str,
    /// Correlation id for async (`b`/`e`) and flow (`s`/`f`) pairs.
    id: Option<u64>,
}

/// Collects spans and emits the Chrome-trace JSON document.
#[derive(Debug)]
pub struct TraceBuilder {
    process_name: String,
    nprocs: usize,
    spans: Vec<Span>,
    extras: Vec<ExtraEvent>,
    named_tracks: Vec<(usize, String)>,
    next_id: u64,
}

impl TraceBuilder {
    /// A trace for `nprocs` processor tracks.
    pub fn new(process_name: impl Into<String>, nprocs: usize) -> Self {
        TraceBuilder {
            process_name: process_name.into(),
            nprocs,
            spans: Vec::new(),
            extras: Vec::new(),
            named_tracks: Vec::new(),
            next_id: 1,
        }
    }

    /// Record one span.
    pub fn push(&mut self, span: Span) {
        debug_assert!(span.pid < self.nprocs);
        debug_assert!(span.start_us <= span.end_us);
        self.spans.push(span);
    }

    /// Record a span from raw parts.
    pub fn span(
        &mut self,
        pid: usize,
        name: impl Into<String>,
        cat: SpanCat,
        start_us: u64,
        end_us: u64,
    ) {
        self.push(Span {
            pid,
            name: name.into(),
            cat,
            start_us,
            end_us,
        });
    }

    /// Merge the spans of another builder (used to combine per-thread
    /// buffers after a real-thread run).
    pub fn extend(&mut self, spans: impl IntoIterator<Item = Span>) {
        self.spans.extend(spans);
    }

    /// Label an extra track past the processor range (supervisor,
    /// compile). Processor tracks `0..nprocs` are named automatically.
    pub fn named_track(&mut self, tid: usize, name: impl Into<String>) {
        let name = name.into();
        if !self.named_tracks.iter().any(|(t, _)| *t == tid) {
            self.named_tracks.push((tid, name));
        }
    }

    /// Record a thread-scoped instant (`ph:"i"`).
    pub fn instant(&mut self, tid: usize, name: impl Into<String>, cat: &'static str, ts_us: u64) {
        self.extras.push(ExtraEvent {
            tid,
            name: name.into(),
            cat,
            ts_us,
            ph: "i",
            id: None,
        });
    }

    /// Record an async span (`ph:"b"`/`"e"`): a duration that may
    /// interleave with others on the same track, so it cannot be a
    /// nested B/E pair.
    pub fn async_span(
        &mut self,
        tid: usize,
        name: impl Into<String>,
        cat: &'static str,
        start_us: u64,
        end_us: u64,
    ) {
        let id = self.next_id;
        self.next_id += 1;
        let name = name.into();
        self.extras.push(ExtraEvent {
            tid,
            name: name.clone(),
            cat,
            ts_us: start_us,
            ph: "b",
            id: Some(id),
        });
        self.extras.push(ExtraEvent {
            tid,
            name,
            cat,
            ts_us: end_us.max(start_us),
            ph: "e",
            id: Some(id),
        });
    }

    /// Record a flow arrow (`ph:"s"` → `"f"`) from one track/time to
    /// another; the viewer draws it between the enclosing slices.
    pub fn flow(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        from: (usize, u64),
        to: (usize, u64),
    ) {
        let id = self.next_id;
        self.next_id += 1;
        let name = name.into();
        self.extras.push(ExtraEvent {
            tid: from.0,
            name: name.clone(),
            cat,
            ts_us: from.1,
            ph: "s",
            id: Some(id),
        });
        self.extras.push(ExtraEvent {
            tid: to.0,
            name,
            cat,
            ts_us: to.1.max(from.1 + 1),
            ph: "f",
            id: Some(id),
        });
    }

    /// Lower a merged profile-event stream onto this trace: escalation
    /// transitions and recovery marks become instants, FME pair-query
    /// spans become async spans, and each site's *worst* episode (the
    /// one with the largest last-minus-second-last arrival gap) becomes
    /// a flow arrow from its first arriver to the straggler. `tid_base`
    /// offsets the stream's tracks — 0 maps run data onto the processor
    /// tracks (the track past `nprocs` is named "supervisor"), while a
    /// compile-time stream passes `nprocs + 1` and gets tracks named
    /// from `label_prefix`.
    pub fn extend_with_profile(
        &mut self,
        data: &ProfileData,
        metas: &[SiteMeta],
        nprocs: usize,
        tid_base: usize,
        label_prefix: &str,
    ) {
        for t in 0..data.tracks {
            let tid = tid_base + t;
            if tid_base == 0 && t >= nprocs {
                self.named_track(tid, "supervisor");
            } else if tid_base > 0 {
                self.named_track(tid, format!("{label_prefix}{t}"));
            }
        }
        let us = |ns: u64| ns / 1_000;
        let label_of = |site: u32| {
            metas
                .iter()
                .find(|m| m.id == site as usize)
                .map(|m| m.label.clone())
                .unwrap_or_else(|| format!("s{site}"))
        };
        // Per-(epoch, site, visit) arrivals for the flow pass.
        use std::collections::HashMap;
        let mut arrivals: HashMap<(u16, u32, u64), Vec<(u64, usize)>> = HashMap::new();
        for e in &data.events {
            let tid = tid_base + e.track as usize;
            match e.kind {
                EventKind::EscalateYield => {
                    self.instant(tid, "escalate: spin\u{2192}yield", "escalation", us(e.t_ns))
                }
                EventKind::EscalatePark => {
                    self.instant(tid, "escalate: yield\u{2192}park", "escalation", us(e.t_ns))
                }
                EventKind::Checkpoint => self.instant(
                    tid,
                    format!("checkpoint ({} cells)", e.arg),
                    "recovery",
                    us(e.t_ns),
                ),
                EventKind::Rollback => self.instant(
                    tid,
                    format!("rollback ({} cells)", e.arg),
                    "recovery",
                    us(e.t_ns),
                ),
                EventKind::Retry => self.instant(
                    tid,
                    format!("retry after attempt {}", e.arg),
                    "recovery",
                    us(e.t_ns),
                ),
                EventKind::FmeHit | EventKind::FmeMiss => {
                    // The probe records at query end with arg = elapsed
                    // ns: the span is [t_ns − arg, t_ns].
                    let name = if e.kind == EventKind::FmeHit {
                        "pair query (memo hit)"
                    } else {
                        "pair query (fme scan)"
                    };
                    self.async_span(
                        tid,
                        name,
                        "fme",
                        us(e.t_ns.saturating_sub(e.arg)),
                        us(e.t_ns),
                    );
                }
                EventKind::SyncArrive if e.site != NO_SITE => arrivals
                    .entry((e.epoch, e.site, e.arg))
                    .or_default()
                    .push((e.t_ns, e.track as usize)),
                _ => {}
            }
        }
        // One flow per site: its worst complete episode only, so the
        // timeline stays readable at any episode count.
        let mut worst: HashMap<u32, (u64, (u64, usize), (u64, usize))> = HashMap::new();
        for ((_, site, _), mut eps) in arrivals {
            if eps.len() != nprocs || nprocs < 2 {
                continue;
            }
            eps.sort();
            let crit = eps[nprocs - 1].0 - eps[nprocs - 2].0;
            let entry = worst.entry(site).or_insert((crit, eps[0], eps[nprocs - 1]));
            if crit > entry.0 {
                *entry = (crit, eps[0], eps[nprocs - 1]);
            }
        }
        let mut worst: Vec<_> = worst.into_iter().collect();
        worst.sort_by_key(|&(site, _)| site);
        for (site, (_, first, last)) in worst {
            self.flow(
                format!("last arriver @{}", label_of(site)),
                "crit-path",
                (tid_base + first.1, us(first.0)),
                (tid_base + last.1, us(last.0)),
            );
        }
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no span was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Lower to the Trace Event Format document.
    pub fn to_json(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        for pid in 0..self.nprocs {
            events.push(
                Json::obj()
                    .set("name", "thread_name")
                    .set("ph", "M")
                    .set("pid", 1u64)
                    .set("tid", pid)
                    .set("args", Json::obj().set("name", format!("proc {pid}"))),
            );
        }
        let mut named = self.named_tracks.clone();
        named.sort();
        for (tid, name) in &named {
            events.push(
                Json::obj()
                    .set("name", "thread_name")
                    .set("ph", "M")
                    .set("pid", 1u64)
                    .set("tid", *tid)
                    .set("args", Json::obj().set("name", name.as_str())),
            );
        }
        // Unified sort key (tid, ts, rank, insertion index). Rank E=0,
        // B=1, everything else=2: at one timestamp a span closes before
        // the next opens, and instants/async/flow points land inside
        // whatever slice encloses them.
        let mut points: Vec<(usize, u64, u8, usize)> = Vec::new();
        for (k, s) in self.spans.iter().enumerate() {
            let end = s.end_us.max(s.start_us + 1);
            points.push((s.pid, s.start_us, 1, k));
            points.push((s.pid, end, 0, k));
        }
        for (k, x) in self.extras.iter().enumerate() {
            points.push((x.tid, x.ts_us, 2, self.spans.len() + k));
        }
        points.sort_by_key(|&(tid, ts, rank, k)| (tid, ts, rank, k));
        for (tid, ts, rank, k) in points {
            let ev = if rank < 2 {
                let s = &self.spans[k];
                Json::obj()
                    .set("name", s.name.as_str())
                    .set("cat", s.cat.as_str())
                    .set("ph", if rank == 1 { "B" } else { "E" })
                    .set("ts", ts)
                    .set("pid", 1u64)
                    .set("tid", tid)
            } else {
                let x = &self.extras[k - self.spans.len()];
                let mut ev = Json::obj()
                    .set("name", x.name.as_str())
                    .set("cat", x.cat)
                    .set("ph", x.ph)
                    .set("ts", ts)
                    .set("pid", 1u64)
                    .set("tid", tid);
                if let Some(id) = x.id {
                    ev = ev.set("id", id);
                }
                if x.ph == "i" {
                    ev = ev.set("s", "t");
                }
                if x.ph == "f" {
                    // Bind the arrowhead to the enclosing slice even
                    // when the finish timestamp sits exactly on its
                    // boundary.
                    ev = ev.set("bp", "e");
                }
                ev
            };
            events.push(ev);
        }
        Json::obj()
            .set("traceEvents", Json::Arr(events))
            .set("displayTimeUnit", "ms")
            .set(
                "otherData",
                Json::obj().set("process", self.process_name.as_str()),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_metadata_and_balanced_spans() {
        let mut tb = TraceBuilder::new("test", 2);
        tb.span(0, "DOALL i", SpanCat::Work, 0, 5);
        tb.span(0, "barrier wait @s0", SpanCat::Sync, 5, 7);
        tb.span(1, "DOALL i", SpanCat::Work, 0, 7);
        let doc = tb.to_json();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let meta = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .count();
        assert_eq!(meta, 2);
        let b = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("B"))
            .count();
        let e = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("E"))
            .count();
        assert_eq!(b, 3);
        assert_eq!(e, 3);
    }

    #[test]
    fn per_track_timestamps_are_monotone_and_nested() {
        let mut tb = TraceBuilder::new("test", 2);
        tb.span(0, "a", SpanCat::Work, 0, 3);
        tb.span(0, "b", SpanCat::Sync, 3, 3); // zero-length, clamps to 4
        tb.span(0, "c", SpanCat::Work, 4, 9);
        tb.span(1, "d", SpanCat::Work, 1, 2);
        let doc = tb.to_json();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let mut last_ts = std::collections::HashMap::new();
        let mut depth = std::collections::HashMap::new();
        for e in evs {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            if ph == "M" {
                continue;
            }
            let tid = e.get("tid").unwrap().as_u64().unwrap();
            let ts = e.get("ts").unwrap().as_u64().unwrap();
            let prev = last_ts.entry(tid).or_insert(0);
            assert!(ts >= *prev, "non-monotone ts on track {tid}");
            *prev = ts;
            let d = depth.entry(tid).or_insert(0i64);
            *d += if ph == "B" { 1 } else { -1 };
            assert!(*d >= 0, "E without B on track {tid}");
        }
        for (tid, d) in depth {
            assert_eq!(d, 0, "unbalanced spans on track {tid}");
        }
    }

    #[test]
    fn instants_async_and_flows_carry_their_phases() {
        let mut tb = TraceBuilder::new("test", 2);
        tb.span(0, "work", SpanCat::Work, 0, 10);
        tb.instant(0, "escalate", "escalation", 5);
        tb.async_span(1, "pair query", "fme", 2, 8);
        tb.flow("crit", "crit-path", (0, 3), (1, 6));
        tb.named_track(2, "supervisor");
        let doc = tb.to_json();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let phase = |ph: &str| {
            evs.iter()
                .filter(|e| e.get("ph").unwrap().as_str() == Some(ph))
                .count()
        };
        assert_eq!(phase("i"), 1);
        assert_eq!(phase("b"), 1);
        assert_eq!(phase("e"), 1);
        assert_eq!(phase("s"), 1);
        assert_eq!(phase("f"), 1);
        // The supervisor track got thread_name metadata beside the two
        // processor tracks.
        assert_eq!(phase("M"), 3);
        // Async b/e and flow s/f pairs share a correlation id.
        let id_of = |ph: &str| {
            evs.iter()
                .find(|e| e.get("ph").unwrap().as_str() == Some(ph))
                .and_then(|e| e.get("id"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert_eq!(id_of("b"), id_of("e"));
        assert_eq!(id_of("s"), id_of("f"));
        assert_ne!(id_of("b"), id_of("s"));
        // The instant is thread-scoped.
        let inst = evs
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .unwrap();
        assert_eq!(inst.get("s").unwrap().as_str(), Some("t"));
    }

    #[test]
    fn profile_stream_lowers_to_all_three_classes() {
        use runtime::events::{ProfileOptions, Profiler};
        let p = Profiler::new(3, ProfileOptions { capacity: 64 });
        // Two procs, one episode at site 0: P0 first, P1 the straggler.
        p.record_at(0, EventKind::SyncArrive, 0, 0, 1_000);
        p.record_at(1, EventKind::SyncArrive, 0, 0, 9_000);
        p.record_at(0, EventKind::EscalateYield, NO_SITE, 64, 5_000);
        p.record_at(0, EventKind::SyncRelease, 0, 8_000, 9_000);
        p.record_at(1, EventKind::SyncRelease, 0, 0, 9_000);
        // Supervisor mark + a compile-side FME span.
        p.record_at(2, EventKind::Checkpoint, NO_SITE, 46, 0);
        p.record_at(2, EventKind::FmeMiss, NO_SITE, 3_000, 20_000);
        let data = p.snapshot();
        let metas = vec![SiteMeta {
            id: 0,
            kind: "phase-after".into(),
            label: "after DOALL i".into(),
            op: "barrier".into(),
        }];
        let mut tb = TraceBuilder::new("test", 2);
        tb.extend_with_profile(&data, &metas, 2, 0, "");
        let doc = tb.to_json();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let names: Vec<&str> = evs
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"escalate: spin\u{2192}yield"));
        assert!(names.contains(&"checkpoint (46 cells)"));
        assert!(names.contains(&"pair query (fme scan)"));
        assert!(names.contains(&"last arriver @after DOALL i"));
        // The supervisor track (tid 2) was named.
        assert!(evs.iter().any(|e| {
            e.get("ph").unwrap().as_str() == Some("M")
                && e.get("tid").unwrap().as_u64() == Some(2)
                && e.get("args").unwrap().get("name").unwrap().as_str() == Some("supervisor")
        }));
        // The flow points from P0's early arrival to P1's late one.
        let s = evs
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("s"))
            .unwrap();
        let f = evs
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("f"))
            .unwrap();
        assert_eq!(s.get("tid").unwrap().as_u64(), Some(0));
        assert_eq!(s.get("ts").unwrap().as_u64(), Some(1));
        assert_eq!(f.get("tid").unwrap().as_u64(), Some(1));
        assert_eq!(f.get("ts").unwrap().as_u64(), Some(9));
        // The FME async span recovered its start from arg: [17us, 20us].
        let b = evs
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("b"))
            .unwrap();
        assert_eq!(b.get("ts").unwrap().as_u64(), Some(17));
    }

    #[test]
    fn compile_stream_maps_past_the_processor_tracks() {
        use runtime::events::{ProfileOptions, Profiler};
        let p = Profiler::new(1, ProfileOptions { capacity: 16 });
        p.record_at(0, EventKind::FmeHit, NO_SITE, 100, 2_000);
        let mut tb = TraceBuilder::new("test", 2);
        tb.extend_with_profile(&p.snapshot(), &[], 2, 3, "compile ");
        let doc = tb.to_json();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(evs.iter().any(|e| {
            e.get("ph").unwrap().as_str() == Some("M")
                && e.get("tid").unwrap().as_u64() == Some(3)
                && e.get("args").unwrap().get("name").unwrap().as_str() == Some("compile 0")
        }));
        assert!(evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("b"))
            .all(|e| e.get("tid").unwrap().as_u64() == Some(3)));
    }
}
