//! Sync-primitive latency gate: `BENCH_6.json`.
//!
//! Measures the round-trip latency of every blocking primitive —
//! central barrier, dissemination tree barrier, counter handoff,
//! neighbor ring — at several team sizes, on both latency paths:
//!
//! * **pure** — the lock-free fast path (`wait`): a CAS/fetch-add plus
//!   the spin → yield → park poll loop, no clocks, no watchdog;
//! * **guarded** — the same wait through the sampled watchdog
//!   (`wait_until` with a generous deadline): what the fault-tolerant
//!   executor runs.
//!
//! The harness is a regression gate for the fast-path/fault-path split:
//! at the gate team size the pure path must be strictly faster than the
//! guarded path, and the guarded path must cost no more than
//! [`GATE_FACTOR`]× the pure path. Any violation is printed and the
//! process exits 1.
//!
//! Latencies are min-of-reps: the minimum ns/episode over several
//! interleaved repetitions, which converges on each path's deterministic
//! floor and cancels scheduler noise (essential on small hosts where the
//! team oversubscribes the cores).
//!
//! Usage: `bench6 [--quick] [--out PATH] [--baseline PATH]`
//!   --quick     fewer episodes/reps and no 16-thread column (CI smoke mode)
//!   --out       output path (default BENCH_6.json; `-` for stdout)
//!   --baseline  prior BENCH_6.json to compare against; refused unless
//!               its `schema_version` matches this binary's

use criterion::black_box;
use obs::Json;
use runtime::{BarrierEpoch, CentralBarrier, Counters, NeighborFlags, Team, TreeBarrier, Watchdog};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The guarded path may cost at most this many times the pure path at
/// the gate point (central barrier, [`GATE_PROCS`] threads).
const GATE_FACTOR: f64 = 4.0;
const GATE_PROCS: usize = 8;
/// Deadline for the guarded runs: generous enough to never fire, so the
/// measurement sees only the guard's bookkeeping, not its recovery.
const DEADLINE: Duration = Duration::from_secs(30);

#[derive(Clone, Copy, PartialEq, Eq)]
enum Path {
    Pure,
    Guarded,
}

/// One measurement: `episodes` round trips of `prim` on a team of `p`,
/// returning ns/episode.
fn measure(team: &Team, p: usize, prim: &str, path: Path, episodes: u64) -> f64 {
    let wd = Arc::new(Watchdog::new(DEADLINE));
    let t0;
    match prim {
        "central" => {
            let b = Arc::new(CentralBarrier::new(p));
            t0 = Instant::now();
            team.run(move |pid| {
                let mut local = BarrierEpoch::default();
                for _ in 0..episodes {
                    match path {
                        Path::Pure => b.wait(&mut local),
                        Path::Guarded => b.wait_until(&mut local, &wd, 0, pid).unwrap(),
                    }
                }
                black_box(local);
            });
        }
        "tree" => {
            let b = Arc::new(TreeBarrier::new(p));
            t0 = Instant::now();
            team.run(move |pid| {
                let mut epoch = 0usize;
                for _ in 0..episodes {
                    match path {
                        Path::Pure => b.wait(pid, &mut epoch),
                        Path::Guarded => b.wait_until(pid, &mut epoch, &wd, 0).unwrap(),
                    }
                }
                black_box(epoch);
            });
        }
        "counter" => {
            // One producer, p-1 consumers: each episode is a full
            // post → wake round trip for every consumer.
            let c = Arc::new(Counters::new(1));
            t0 = Instant::now();
            team.run(move |pid| {
                for k in 1..=episodes {
                    if pid == 0 {
                        c.increment(0);
                    } else {
                        match path {
                            Path::Pure => c.wait_ge(0, k),
                            Path::Guarded => c.wait_ge_until(0, k, &wd, 0, pid).unwrap(),
                        }
                    }
                }
                black_box(c.value(0));
            });
        }
        "neighbor" => {
            // Post + wait on both neighbors: the stencil exchange.
            let f = Arc::new(NeighborFlags::new(p));
            t0 = Instant::now();
            team.run(move |pid| {
                for k in 1..=episodes {
                    f.post(pid);
                    match path {
                        Path::Pure => {
                            f.wait(pid as isize - 1, k);
                            f.wait(pid as isize + 1, k);
                        }
                        Path::Guarded => {
                            f.wait_until(pid as isize - 1, k, &wd, 0, pid).unwrap();
                            f.wait_until(pid as isize + 1, k, &wd, 0, pid).unwrap();
                        }
                    }
                }
                black_box(f.epoch(pid));
            });
        }
        other => panic!("unknown primitive {other}"),
    }
    t0.elapsed().as_nanos() as f64 / episodes as f64
}

struct Cell {
    prim: &'static str,
    p: usize,
    pure_ns: f64,
    guarded_ns: f64,
}

impl Cell {
    fn overhead(&self) -> f64 {
        if self.pure_ns > 0.0 {
            self.guarded_ns / self.pure_ns
        } else {
            0.0
        }
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = "BENCH_6.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = it.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(it.next().expect("--baseline needs a path")),
            other => {
                eprintln!("bench6: unknown argument {other}");
                eprintln!("usage: bench6 [--quick] [--out PATH] [--baseline PATH]");
                return ExitCode::from(2);
            }
        }
    }
    let baseline = match &baseline_path {
        Some(p) => match spmd_bench::load_baseline(p, "sync-primitive-latency") {
            Ok(doc) => Some(doc),
            Err(e) => {
                eprintln!("bench6: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let (episodes, reps, procs): (u64, usize, &[usize]) = if quick {
        (300, 5, &[2, 4, 8])
    } else {
        (1000, 7, &[2, 4, 8, 16])
    };

    let mut cells: Vec<Cell> = Vec::new();
    for &p in procs {
        let team = Team::new(p);
        for prim in ["central", "tree", "counter", "neighbor"] {
            // Interleave pure/guarded reps so slow-machine drift (CPU
            // frequency, background load) hits both paths equally, and
            // take the min: the deterministic floor of each path.
            let mut pure_ns = f64::INFINITY;
            let mut guarded_ns = f64::INFINITY;
            // Warm-up rep per path (first region on a fresh team pays
            // dispatch cold-start).
            measure(&team, p, prim, Path::Pure, episodes / 4);
            measure(&team, p, prim, Path::Guarded, episodes / 4);
            let refine = |pure_ns: &mut f64, guarded_ns: &mut f64, rounds: usize| {
                for _ in 0..rounds {
                    *pure_ns = pure_ns.min(measure(&team, p, prim, Path::Pure, episodes));
                    *guarded_ns = guarded_ns.min(measure(&team, p, prim, Path::Guarded, episodes));
                }
            };
            refine(&mut pure_ns, &mut guarded_ns, reps);
            // The min estimator only improves with more samples: when
            // the floors are still inverted at the gate point, keep
            // sampling a bounded number of extra rounds before
            // concluding the fast path really is slower.
            if prim == "central" && p == GATE_PROCS {
                let mut extra = 0;
                while pure_ns >= guarded_ns && extra < 5 {
                    refine(&mut pure_ns, &mut guarded_ns, 2);
                    extra += 1;
                }
            }
            cells.push(Cell {
                prim,
                p,
                pure_ns,
                guarded_ns,
            });
        }
    }

    let mut table = spmd_bench::Table::new(&["primitive", "P", "pure ns", "guarded ns", "guard x"]);
    for c in &cells {
        table.row(vec![
            c.prim.to_string(),
            c.p.to_string(),
            format!("{:.0}", c.pure_ns),
            format!("{:.0}", c.guarded_ns),
            format!("{:.2}x", c.overhead()),
        ]);
    }
    println!("{}", table.render());

    // The gate: at GATE_PROCS threads the central barrier's pure fast
    // path must beat the guarded path, and the guard's overhead must
    // stay under GATE_FACTOR.
    let gate = cells
        .iter()
        .find(|c| c.prim == "central" && c.p == GATE_PROCS)
        .expect("gate cell measured");
    let strictly_faster = gate.pure_ns < gate.guarded_ns;
    let within_factor = gate.guarded_ns <= GATE_FACTOR * gate.pure_ns;
    let gate_ok = strictly_faster && within_factor;
    println!(
        "gate (central @ {GATE_PROCS} threads): pure {:.0} ns, guarded {:.0} ns \
         ({:.2}x overhead, limit {GATE_FACTOR:.1}x) — {}",
        gate.pure_ns,
        gate.guarded_ns,
        gate.overhead(),
        if gate_ok { "OK" } else { "FAILED" }
    );

    let cell_json: Vec<Json> = cells
        .iter()
        .map(|c| {
            Json::obj()
                .set("primitive", c.prim)
                .set("procs", c.p as f64)
                .set("pure_ns", c.pure_ns)
                .set("guarded_ns", c.guarded_ns)
                .set("guard_overhead", c.overhead())
        })
        .collect();
    let doc = Json::obj()
        .set("bench", "sync-primitive-latency")
        .set("mode", if quick { "quick" } else { "full" })
        .set("episodes", episodes as f64)
        .set("reps", reps as f64)
        .set(
            "cores",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1) as f64,
        )
        .set("cells", Json::Arr(cell_json))
        .set(
            "gate",
            Json::obj()
                .set("primitive", "central")
                .set("procs", GATE_PROCS as f64)
                .set("factor_limit", GATE_FACTOR)
                .set("pure_ns", gate.pure_ns)
                .set("guarded_ns", gate.guarded_ns)
                .set("pure_strictly_faster", strictly_faster)
                .set("within_factor", within_factor)
                .set("ok", gate_ok),
        );
    let doc = spmd_bench::stamp_schema(doc);
    let rendered = doc.to_string_pretty();
    if out_path == "-" {
        println!("{rendered}");
    } else if let Err(e) = std::fs::write(&out_path, rendered + "\n") {
        eprintln!("bench6: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    } else {
        println!("bench6: wrote {out_path}");
    }

    if let Some(base) = &baseline {
        let prev = base
            .get("gate")
            .and_then(|g| g.get("pure_ns"))
            .and_then(|v| v.as_num())
            .unwrap_or(0.0);
        println!(
            "baseline {}: gate pure path {prev:.0} ns then, {:.0} ns now",
            baseline_path.as_deref().unwrap_or("-"),
            gate.pure_ns
        );
    }

    if !gate_ok {
        eprintln!(
            "bench6: FAILED — deadline-guarded waits regress the central barrier \
             beyond the gate at {GATE_PROCS} threads"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
