! Pivot-column broadcast: unique producer per step -> counter sync.
program broadcast
sym n
array A(n, n) cyclic@1

doall i0 = 0, n-1
  do j0 = 0, n-1
    A(i0, j0) = 0.25 * sin(i0 + 2 * j0)
    if i0 - j0 == 0 then
      A(i0, j0) = 8.0 + sin(i0)
    end
  end
end

do k = 0, n-2
  doall i1 = 1, n-1
    if i1 - k >= 1 then
      A(i1, k) = A(i1, k) / A(k, k)
    end
  end
  doall j2 = 1, n-1
    do i2 = 1, n-1
      if j2 - k >= 1 and i2 - k >= 1 then
        A(i2, j2) = A(i2, j2) - A(i2, k) * A(k, j2)
      end
    end
  end
end
