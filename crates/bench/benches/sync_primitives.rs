//! Criterion benches for the synchronization primitives (feeds the
//! barrier-cost motivation figure): central barrier, tree barrier,
//! counter handoff, neighbor post/wait, at several team sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use runtime::{BarrierEpoch, CentralBarrier, Counters, NeighborFlags, Team, TreeBarrier};
use std::sync::Arc;

const ROUNDS: u64 = 1000;

fn bench_barriers(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut group = c.benchmark_group("barrier");
    for p in [2usize, 4, cores.min(8)] {
        let team = Team::new(p);
        let central = Arc::new(CentralBarrier::new(p));
        group.bench_with_input(BenchmarkId::new("central", p), &p, |b, _| {
            b.iter(|| {
                let bb = Arc::clone(&central);
                team.run(move |_| {
                    let mut sense = BarrierEpoch::default();
                    for _ in 0..ROUNDS {
                        bb.wait(&mut sense);
                    }
                });
            })
        });
        let tree = Arc::new(TreeBarrier::new(p));
        group.bench_with_input(BenchmarkId::new("tree", p), &p, |b, _| {
            b.iter(|| {
                let bb = Arc::clone(&tree);
                team.run(move |pid| {
                    let mut epoch = 0usize;
                    for _ in 0..ROUNDS {
                        bb.wait(pid, &mut epoch);
                    }
                });
            })
        });
    }
    group.finish();
}

fn bench_counter_and_neighbor(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let p = cores.min(8);
    let team = Team::new(p);
    let mut group = c.benchmark_group("replacement");
    group.bench_function(format!("counter_p{p}"), |b| {
        b.iter(|| {
            let ctr = Arc::new(Counters::new(1));
            team.run(move |pid| {
                for k in 1..=ROUNDS {
                    if pid == 0 {
                        ctr.increment(0);
                    } else {
                        ctr.wait_ge(0, k);
                    }
                }
            });
        })
    });
    group.bench_function(format!("neighbor_p{p}"), |b| {
        b.iter(|| {
            let flags = Arc::new(NeighborFlags::new(p));
            team.run(move |pid| {
                for k in 1..=ROUNDS {
                    flags.post(pid);
                    flags.wait(pid as isize - 1, k);
                    flags.wait(pid as isize + 1, k);
                }
            });
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_barriers, bench_counter_and_neighbor
}
criterion_main!(benches);
