//! Plain data-dependence analysis (no processors): used to validate that
//! loops marked `DOALL` really carry no dependence, which is the
//! precondition the paper inherits from the parallelizing front end.

use crate::bindings::Bindings;
use crate::comm::stmt_accesses;
use crate::translate::{build_pair_system, SharedLoopMode};
use ir::{LoopKind, NodeId, Program};

/// Does the loop at `loop_node` carry a data dependence between two of
/// its iterations? (True ⇒ the loop must not be marked parallel.)
///
/// Scalars are handled conservatively: any non-privatizable scalar
/// written inside the loop is a carried dependence unless the write is a
/// reduction paired only with itself.
pub fn loop_carries_dependence(prog: &Program, bind: &Bindings, loop_node: NodeId) -> bool {
    let prefix = prog
        .enclosing_loops(loop_node)
        .expect("loop node must be part of the program");
    let stmts = prog.statements_under(loop_node, &prefix);
    // Scalar test.
    for s in &stmts {
        let (_, scalars) = stmt_accesses(prog, s.node);
        for sc in &scalars {
            if sc.is_write && !prog.scalar(sc.scalar).privatizable {
                let is_reduction = prog
                    .node(s.node)
                    .as_assign()
                    .map(|a| a.reduction.is_some())
                    .unwrap_or(false);
                if !is_reduction {
                    return true;
                }
            }
        }
    }
    // Array test: any pair of accesses (one a write) to the same array,
    // same element, in *different* iterations of this loop.
    for s1 in &stmts {
        for s2 in &stmts {
            let (a1s, _) = stmt_accesses(prog, s1.node);
            let (a2s, _) = stmt_accesses(prog, s2.node);
            for a1 in &a1s {
                for a2 in &a2s {
                    if a1.array != a2.array || (!a1.is_write && !a2.is_write) {
                        continue;
                    }
                    // Privatization removes storage-related dependences
                    // (each iteration/processor gets a fresh copy).
                    if prog.array(a1.array).privatizable {
                        continue;
                    }
                    let mut ps =
                        build_pair_system(prog, bind, s1, s2, SharedLoopMode::CarriedBy(loop_node));
                    // Drop the partition constraints' effect by not
                    // constraining processors: the pair system already
                    // has them, but a dependence between different
                    // iterations on the *same* processor is still a
                    // dependence, so we must not require p != q. We ask
                    // only for element equality.
                    ps.add_elem_equality(bind, &a1.subs, &a2.subs);
                    if ps.feasible_with(|_| {}) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Check every loop marked parallel; returns the offending loop nodes
/// (empty = all markings are consistent with the dependence test).
pub fn check_parallel_loops(prog: &Program, bind: &Bindings) -> Vec<NodeId> {
    let mut bad = Vec::new();
    let mut candidates = Vec::new();
    prog.walk_all(&mut |id, _| {
        if let Some(l) = prog.node(id).as_loop() {
            if l.kind == LoopKind::Par {
                candidates.push(id);
            }
        }
    });
    for id in candidates {
        if loop_carries_dependence(prog, bind, id) {
            bad.push(id);
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::Bindings;
    use ir::build::*;

    #[test]
    fn independent_loop_is_clean() {
        let mut pb = ProgramBuilder::new("ok");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(b, [idx(i)]), arr(a, [idx(i)]) * ex(2.0));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 32);
        assert!(check_parallel_loops(&prog, &bind).is_empty());
    }

    #[test]
    fn recurrence_is_flagged() {
        let mut pb = ProgramBuilder::new("rec");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(1), sym(n) - 1);
        pb.assign(elem(a, [idx(i)]), arr(a, [idx(i) - 1]) + ex(1.0));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 32);
        assert_eq!(check_parallel_loops(&prog, &bind).len(), 1);
    }

    #[test]
    fn reduction_write_is_tolerated() {
        let mut pb = ProgramBuilder::new("red");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_repl());
        let s = pb.scalar("s", 0.0);
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.reduce(svar(s), ir::RedOp::Add, arr(a, [idx(i)]));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 32);
        assert!(check_parallel_loops(&prog, &bind).is_empty());
    }

    #[test]
    fn plain_scalar_write_is_flagged() {
        let mut pb = ProgramBuilder::new("sw");
        let n = pb.sym("n");
        let s = pb.scalar("s", 0.0);
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(svar(s), ival(idx(i)));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 32);
        assert_eq!(check_parallel_loops(&prog, &bind).len(), 1);
    }
}
