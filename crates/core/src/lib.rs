//! The synchronization optimizer — the paper's contribution.
//!
//! Starting from a compiler-parallelized program (parallel loop markings
//! + data decompositions), this crate:
//!
//! 1. **forms SPMD regions** by merging adjacent parallel loops together
//!    with replicated (privatizable-scalar) and guarded (master-only)
//!    serial statements, including whole sequential loops whose bodies are
//!    SPMD-able — the hybrid fork-join/SPMD model of §2 (after Cytron et
//!    al.);
//! 2. runs the **greedy barrier-elimination algorithm** of §3.2.2 inside
//!    each region: statements are accumulated into groups; the barrier in
//!    front of the next statement is eliminated when communication
//!    analysis proves no inter-processor data movement, and groups merge;
//! 3. where communication exists but is structured, **replaces the
//!    barrier** with cheaper synchronization: nearest-neighbor post/wait
//!    flags or producer-consumer counters (§3.3);
//! 4. analyzes **loop-carried communication** at the bottom of sequential
//!    loops inside regions, eliminating the bottom barrier or replacing
//!    it with per-iteration pipelining synchronization.
//!
//! The result is an executable [`SpmdProgram`] schedule, consumed by the
//! `interp` crate for both correctness validation and the dynamic
//! synchronization counts of the evaluation.
//!
//! ```
//! use ir::build::*;
//! use analysis::Bindings;
//!
//! // Two aligned parallel loops: the barrier between them is eliminated.
//! let mut pb = ProgramBuilder::new("demo");
//! let n = pb.sym("n");
//! let a = pb.array("A", &[sym(n)], dist_block());
//! let b = pb.array("B", &[sym(n)], dist_block());
//! let i = pb.begin_par("i", con(0), sym(n) - 1);
//! pb.assign(elem(a, [idx(i)]), ival(idx(i)).sin());
//! pb.end();
//! let j = pb.begin_par("j", con(0), sym(n) - 1);
//! pb.assign(elem(b, [idx(j)]), arr(a, [idx(j)]) * ex(2.0));
//! pb.end();
//! let prog = pb.finish();
//!
//! let bind = Bindings::new(8).set(n, 64);
//! let opt = spmd_opt::optimize(&prog, &bind).static_stats();
//! let base = spmd_opt::fork_join(&prog, &bind).static_stats();
//! assert_eq!(opt.barriers, 1);     // only the region-end barrier
//! assert_eq!(opt.eliminated, 1);   // the inter-loop barrier is gone
//! assert_eq!(base.barriers, 2);    // fork-join pays one per loop
//! ```

pub mod build;
pub mod plan;
pub mod report;
pub mod sites;

pub use analysis::{AnalysisConfig, AnalysisStats};
pub use build::{
    fork_join, optimize, optimize_explained, optimize_explained_shared, optimize_logged,
    optimize_with, placed_str, Decision, OptimizeOptions,
};
pub use plan::{
    demote_site, demote_sites, set_site_op, Phase, PhaseKind, RItem, Region, SpmdProgram,
    StaticStats, SyncOp, TopItem,
};
pub use report::render_plan;
pub use sites::{node_label, slot_count_items, slot_count_top, sync_sites, SlotKind, SyncSite};
