//! Reconstructed benchmark kernels.
//!
//! The paper evaluates on standard Fortran benchmark suites (SPEC, NAS,
//! Perfect Club, RiCEPS, Livermore); the sources and inputs are not
//! reproducible here, so each kernel in this crate reconstructs the
//! *loop and communication structure* of a named benchmark class — the
//! only thing the synchronization optimizer can see. Every kernel:
//!
//! * builds its own initialization loops in the IR (no external setup —
//!   initialization parallel loops contribute barriers exactly as real
//!   programs' do);
//! * is valid under the dependence test (`DOALL` markings carry no
//!   dependence);
//! * documents the synchronization outcome the optimizer is expected to
//!   achieve (all-eliminated / neighbor / counters / barrier-bound).
//!
//! See `DESIGN.md` for the full suite-to-kernel mapping and
//! `EXPERIMENTS.md` for measured results.

pub mod kernels;

use analysis::Bindings;
use ir::{Program, SymId};

/// Problem-size scales.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny sizes for unit tests and adversarial-order validation.
    Test,
    /// Moderate sizes for dynamic synchronization counting.
    Small,
    /// Large sizes for wall-clock speedup measurement.
    Full,
}

/// A built benchmark instance: the program plus concrete symbol values.
pub struct Built {
    /// The program.
    pub prog: Program,
    /// Concrete values for each symbolic constant.
    pub values: Vec<(SymId, i64)>,
}

impl Built {
    /// Bindings for `nprocs` processors with this instance's sizes.
    pub fn bindings(&self, nprocs: i64) -> Bindings {
        let mut b = Bindings::new(nprocs);
        for &(s, v) in &self.values {
            b.bind(s, v);
        }
        b
    }
}

/// The expected synchronization outcome class, used by tests and the
/// table harness to sanity-check the optimizer against the paper's
/// qualitative claims.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expectation {
    /// Nearly all barriers eliminated (aligned communication).
    Eliminated,
    /// Barriers replaced by neighbor post/wait flags.
    Neighbor,
    /// Barriers replaced by producer-consumer counters.
    Counters,
    /// Barriers replaced by distance-vector pairwise counters
    /// (multi-hop or mixed-pattern communication, wavefront-pipelined).
    PairWise,
    /// Reductions or unstructured communication keep most barriers.
    BarrierBound,
}

/// One benchmark definition.
pub struct BenchDef {
    /// Kernel name.
    pub name: &'static str,
    /// Which published suite/benchmark this kernel stands in for.
    pub stands_in_for: &'static str,
    /// One-line description.
    pub desc: &'static str,
    /// Expected optimizer outcome class.
    pub expect: Expectation,
    /// Builder.
    pub build: fn(Scale) -> Built,
}

/// All benchmarks, in the order used by the tables.
pub fn all() -> Vec<BenchDef> {
    use kernels::*;
    vec![
        BenchDef {
            name: "jacobi2d",
            stands_in_for: "motivating stencil (paper §1 example class)",
            desc: "5-point Jacobi relaxation, time sweep, block rows",
            expect: Expectation::Neighbor,
            build: jacobi2d::build,
        },
        BenchDef {
            name: "copy_chain",
            stands_in_for: "aligned BLAS-1 chains (best case)",
            desc: "chain of aligned element-wise parallel loops",
            expect: Expectation::Eliminated,
            build: copy_chain::build,
        },
        BenchDef {
            name: "stencil3d",
            stands_in_for: "NAS MG smoothing class",
            desc: "7-point 3-D stencil sweep, block planes",
            expect: Expectation::Neighbor,
            build: stencil3d::build,
        },
        BenchDef {
            name: "redblack",
            stands_in_for: "red-black SOR solvers (NAS/Perfect class)",
            desc: "1-D red-black Gauss-Seidel via doubled indices",
            expect: Expectation::Neighbor,
            build: redblack::build,
        },
        BenchDef {
            name: "shallow",
            stands_in_for: "RiCEPS shallow / SPEC swm256",
            desc: "shallow-water time step: 3 stencil phases + copies",
            expect: Expectation::Neighbor,
            build: shallow::build,
        },
        BenchDef {
            name: "fdtd",
            stands_in_for: "FDTD electromagnetic kernels (Perfect class)",
            desc: "staggered-grid E/H updates, opposite one-cell shifts",
            expect: Expectation::Neighbor,
            build: fdtd::build,
        },
        BenchDef {
            name: "cg_dense",
            stands_in_for: "NAS CG (dense stand-in)",
            desc: "matvec + dot-product reductions + axpy chain",
            expect: Expectation::BarrierBound,
            build: cg_dense::build,
        },
        BenchDef {
            name: "tomcatv_mesh",
            stands_in_for: "SPEC92 tomcatv",
            desc: "mesh relaxation with max-residual reduction",
            expect: Expectation::BarrierBound,
            build: tomcatv_mesh::build,
        },
        BenchDef {
            name: "livermore7",
            stands_in_for: "Livermore kernel 7 (equation of state)",
            desc: "wide element-wise loop with short shifted reads",
            expect: Expectation::Neighbor,
            build: livermore7::build,
        },
        BenchDef {
            name: "livermore18",
            stands_in_for: "Livermore kernel 18 (explicit hydro)",
            desc: "2-D hydro fragment: three stencil phases per step",
            expect: Expectation::Neighbor,
            build: livermore18::build,
        },
        BenchDef {
            name: "adi",
            stands_in_for: "ADI integration (Perfect/NAS appsp class)",
            desc: "row sweep (local) + column sweep (pipelined)",
            expect: Expectation::Neighbor,
            build: adi::build,
        },
        BenchDef {
            name: "erlebacher",
            stands_in_for: "Erlebacher tridiagonal solver",
            desc: "forward/backward substitution along distributed dim",
            expect: Expectation::Neighbor,
            build: erlebacher::build,
        },
        BenchDef {
            name: "lu",
            stands_in_for: "LU decomposition (Perfect/linpackd class)",
            desc: "right-looking LU, cyclic columns, pivot broadcast",
            expect: Expectation::Counters,
            build: lu::build,
        },
        BenchDef {
            name: "tred2",
            stands_in_for: "EISPACK tred2 (Bodin et al. comparison)",
            desc: "Householder-style reduction with row broadcasts",
            expect: Expectation::BarrierBound,
            build: tred2::build,
        },
        BenchDef {
            name: "matmul",
            stands_in_for: "dense BLAS-3 kernels",
            desc: "blocked matrix multiply, row-owned output",
            expect: Expectation::Eliminated,
            build: matmul::build,
        },
        BenchDef {
            name: "mgrid",
            stands_in_for: "NAS mgrid (multigrid V-cycle)",
            desc: "fine/coarse smooth + stride-2 restrict/prolongate",
            expect: Expectation::Neighbor,
            build: mgrid::build,
        },
        BenchDef {
            name: "seidel_pipe",
            stands_in_for: "Gauss-Seidel wavefront solvers",
            desc: "in-place 2-D relaxation pipelined over rows",
            expect: Expectation::Neighbor,
            build: seidel_pipe::build,
        },
        BenchDef {
            name: "wavepipe2d",
            stands_in_for: "skewed wavefront solvers (SOR/line-relaxation class)",
            desc: "2-D row sweep with a two-block reach, pipelined pairwise",
            expect: Expectation::PairWise,
            build: wavepipe2d::build,
        },
        BenchDef {
            name: "trisolve_pipe",
            stands_in_for: "blocked triangular solves (LU/linpackd class)",
            desc: "forward substitution with reaches {1,2} blocks",
            expect: Expectation::PairWise,
            build: trisolve_pipe::build,
        },
        BenchDef {
            name: "multihop",
            stands_in_for: "long-range shift/FFT butterfly stages",
            desc: "two-phase time loop shifting by two ownership blocks",
            expect: Expectation::PairWise,
            build: multihop::build,
        },
        BenchDef {
            name: "shift_bcast",
            stands_in_for: "mixed shift + broadcast phases (join-cliff regression)",
            desc: "one-cell shift and B[0] broadcast over one sync site",
            expect: Expectation::PairWise,
            build: shift_bcast::build,
        },
        BenchDef {
            name: "pivot_shift",
            stands_in_for: "pivot broadcast + shift phases (Neighbor⊔Producer1 regression)",
            desc: "per-step pivot row and one-cell shift over one sync site",
            expect: Expectation::PairWise,
            build: pivot_shift::build,
        },
        BenchDef {
            name: "workvec",
            stands_in_for: "privatization-dependent codes (Tu-Padua class)",
            desc: "gather into a privatized work vector + rank-1 update",
            expect: Expectation::BarrierBound,
            build: workvec::build,
        },
        BenchDef {
            name: "transpose",
            stands_in_for: "FFT/transpose phases (worst case)",
            desc: "repeated out-of-place transpose (all-to-all)",
            expect: Expectation::BarrierBound,
            build: transpose::build,
        },
    ]
}

/// Find a benchmark by name.
pub fn by_name(name: &str) -> Option<BenchDef> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_and_validate_at_test_scale() {
        for b in all() {
            let built = (b.build)(Scale::Test);
            let problems = built.prog.validate();
            assert!(problems.is_empty(), "{}: {problems:?}", b.name);
            assert!(
                !built.prog.parallel_loops().is_empty(),
                "{} has no parallel loops",
                b.name
            );
        }
    }

    #[test]
    fn all_parallel_markings_pass_the_dependence_test() {
        for b in all() {
            let built = (b.build)(Scale::Test);
            let bind = built.bindings(4);
            let bad = analysis::check_parallel_loops(&built.prog, &bind);
            assert!(
                bad.is_empty(),
                "{}: loops carry dependences: {bad:?}",
                b.name
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<_> = all().iter().map(|b| b.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn by_name_finds_each() {
        for b in all() {
            assert!(by_name(b.name).is_some());
        }
        assert!(by_name("nonexistent").is_none());
    }
}
