//! Structural nodes: loops, guards, and assignment statements.

use crate::decl::{ArrayId, ScalarId};
use crate::expr::{Affine, Expr};
use crate::program::NodeId;

/// Handle for a loop (used as the loop-index atom in [`Affine`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LoopId(pub u32);

/// Whether a loop was marked parallel by the (assumed) parallelizer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopKind {
    /// Ordinary sequential `DO` loop.
    Seq,
    /// `DOALL`: iterations are independent and may run concurrently.
    Par,
}

/// Reduction operators for accumulating assignments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RedOp {
    /// `lhs = lhs + rhs`
    Add,
    /// `lhs = max(lhs, rhs)`
    Max,
    /// `lhs = min(lhs, rhs)`
    Min,
}

impl RedOp {
    /// Apply the reduction.
    pub fn apply(self, acc: f64, v: f64) -> f64 {
        match self {
            RedOp::Add => acc + v,
            RedOp::Max => acc.max(v),
            RedOp::Min => acc.min(v),
        }
    }

    /// Identity element.
    pub fn identity(self) -> f64 {
        match self {
            RedOp::Add => 0.0,
            RedOp::Max => f64::NEG_INFINITY,
            RedOp::Min => f64::INFINITY,
        }
    }
}

/// The left-hand side of an assignment.
#[derive(Clone, PartialEq, Debug)]
pub enum LhsRef {
    /// An array element.
    Elem(ArrayId, Vec<Affine>),
    /// A scalar variable.
    Scalar(ScalarId),
}

/// An assignment statement `lhs = rhs` (or `lhs = lhs ⊕ rhs` when
/// `reduction` is set).
#[derive(Clone, Debug)]
pub struct Assign {
    /// Destination.
    pub lhs: LhsRef,
    /// Source expression.
    pub rhs: Expr,
    /// Reduction operator, if this is an accumulating assignment.
    pub reduction: Option<RedOp>,
}

/// Comparison operators in affine guards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `expr == 0`
    Eq,
    /// `expr >= 0`
    Ge,
    /// `expr <= 0`
    Le,
}

/// A single affine guard condition `expr op 0`.
#[derive(Clone, Debug)]
pub struct GuardCond {
    /// The affine expression compared against zero.
    pub expr: Affine,
    /// The comparison.
    pub op: CmpOp,
}

impl GuardCond {
    /// Evaluate under an atom assignment.
    pub fn holds(&self, assign: &dyn Fn(crate::expr::AffAtom) -> i64) -> bool {
        let v = self.expr.eval(assign);
        match self.op {
            CmpOp::Eq => v == 0,
            CmpOp::Ge => v >= 0,
            CmpOp::Le => v <= 0,
        }
    }
}

/// A guarded block: the body executes when every condition holds
/// (conjunction).
#[derive(Clone, Debug)]
pub struct Guard {
    /// Conjunction of affine conditions.
    pub conds: Vec<GuardCond>,
    /// Guarded children.
    pub body: Vec<NodeId>,
}

/// A `DO` / `DOALL` loop with unit stride and inclusive bounds.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop's index variable handle.
    pub id: LoopId,
    /// Display name of the index variable.
    pub name: String,
    /// Inclusive lower bound.
    pub lo: Affine,
    /// Inclusive upper bound.
    pub hi: Affine,
    /// Sequential or parallel.
    pub kind: LoopKind,
    /// Children in program order.
    pub body: Vec<NodeId>,
}

/// A structural node.
#[derive(Clone, Debug)]
pub enum Node {
    /// A loop.
    Loop(Loop),
    /// A guarded block.
    Guard(Guard),
    /// An assignment statement.
    Assign(Assign),
}

impl Node {
    /// Children of the node, if any.
    pub fn children(&self) -> &[NodeId] {
        match self {
            Node::Loop(l) => &l.body,
            Node::Guard(g) => &g.body,
            Node::Assign(_) => &[],
        }
    }

    /// The node as a loop, if it is one.
    pub fn as_loop(&self) -> Option<&Loop> {
        match self {
            Node::Loop(l) => Some(l),
            _ => None,
        }
    }

    /// The node as an assignment, if it is one.
    pub fn as_assign(&self) -> Option<&Assign> {
        match self {
            Node::Assign(a) => Some(a),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffAtom;

    #[test]
    fn redop_identities() {
        assert_eq!(RedOp::Add.apply(RedOp::Add.identity(), 5.0), 5.0);
        assert_eq!(RedOp::Max.apply(RedOp::Max.identity(), 5.0), 5.0);
        assert_eq!(RedOp::Min.apply(RedOp::Min.identity(), 5.0), 5.0);
    }

    #[test]
    fn guard_cond_eval() {
        let i = LoopId(0);
        // i - 3 == 0
        let g = GuardCond {
            expr: Affine::index(i) - 3,
            op: CmpOp::Eq,
        };
        assert!(g.holds(&|a| match a {
            AffAtom::Loop(_) => 3,
            _ => panic!(),
        }));
        assert!(!g.holds(&|_| 4));
    }
}
