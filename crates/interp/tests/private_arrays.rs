//! Execution semantics of privatizable arrays: replicated defining
//! phases fill every processor's copy; distributed consumers read their
//! own copies; results match the sequential semantics.

use analysis::Bindings;
use interp::{run_sequential, run_virtual, Mem, ScheduleOrder};
use ir::build::*;

fn gather_update() -> (ir::Program, Bindings, ir::ArrayId, ir::ArrayId) {
    let mut pb = ProgramBuilder::new("priv");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n)], dist_block());
    let d = pb.private_array("D", &[sym(n)]);
    // Replicated definer: writes only the private array.
    let j = pb.begin_par("j", con(0), sym(n) - 1);
    pb.assign(elem(d, [idx(j)]), ival(idx(j) * 3).sin());
    pb.end();
    // Distributed consumer reads its own complete copy.
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.assign(
        elem(a, [idx(i)]),
        arr(d, [idx(i)]) + arr(d, [sym(n) - 1 - idx(i)]),
    );
    pb.end();
    let prog = pb.finish();
    let bind = Bindings::new(4).set(n, 16);
    (prog, bind, a, d)
}

#[test]
fn replicated_definer_fills_every_copy() {
    let (prog, bind, _a, d) = gather_update();
    let plan = spmd_opt::optimize(&prog, &bind);
    let mem = Mem::new(&prog, &bind);
    run_virtual(&prog, &bind, &plan, &mem, ScheduleOrder::RoundRobin);
    assert!(mem.is_private(d));
    for pid in 0..4usize {
        for k in 0..16i64 {
            let expect = ((k * 3) as f64).sin();
            assert_eq!(
                mem.array_view(d, pid).get(&[k]),
                expect,
                "pid {pid} element {k}"
            );
        }
    }
}

#[test]
fn gather_barrier_is_gone_and_results_match() {
    let (prog, bind, ..) = gather_update();
    let st = spmd_opt::optimize(&prog, &bind).static_stats();
    // definer -> consumer slot is eliminated; only the region end stays.
    assert_eq!(st.barriers, 1, "{st:?}");
    assert_eq!(st.eliminated, 1, "{st:?}");

    let oracle = Mem::new(&prog, &bind);
    run_sequential(&prog, &bind, &oracle);
    for order in [
        ScheduleOrder::RoundRobin,
        ScheduleOrder::Reverse,
        ScheduleOrder::Random(17),
    ] {
        let plan = spmd_opt::optimize(&prog, &bind);
        let mem = Mem::new(&prog, &bind);
        run_virtual(&prog, &bind, &plan, &mem, order);
        assert_eq!(mem.max_abs_diff(&oracle), 0.0, "{order:?}");
    }
}

#[test]
fn shared_variant_of_same_program_still_synchronizes() {
    // Identical program with a *shared* replicated-dist work array: the
    // definer is index-partitioned and consumers read remote parts, so
    // the definer -> consumer slot cannot be eliminated. The mirror
    // read's owner distances at P = 4 are {-3, -1, +1, +3} — within the
    // pairwise fan-in budget — so the slot becomes a pairwise
    // distance-vector site rather than a full barrier; privatization is
    // still the delta that removes the synchronization entirely.
    let mut pb = ProgramBuilder::new("shared");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n)], dist_block());
    let d = pb.array("D", &[sym(n)], dist_repl());
    let j = pb.begin_par("j", con(0), sym(n) - 1);
    pb.assign(elem(d, [idx(j)]), ival(idx(j) * 3).sin());
    pb.end();
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.assign(
        elem(a, [idx(i)]),
        arr(d, [idx(i)]) + arr(d, [sym(n) - 1 - idx(i)]),
    );
    pb.end();
    let prog = pb.finish();
    let bind = Bindings::new(4).set(n, 16);
    let st = spmd_opt::optimize(&prog, &bind).static_stats();
    assert_eq!(st.eliminated, 0, "{st:?}");
    assert!(
        st.barriers + st.pair_syncs >= 2,
        "definer -> consumer sync vanished: {st:?}"
    );
    assert!(st.pair_syncs >= 1, "{st:?}");

    // And it is still correct.
    let oracle = Mem::new(&prog, &bind);
    run_sequential(&prog, &bind, &oracle);
    let plan = spmd_opt::optimize(&prog, &bind);
    let mem = Mem::new(&prog, &bind);
    run_virtual(&prog, &bind, &plan, &mem, ScheduleOrder::Reverse);
    assert_eq!(mem.max_abs_diff(&oracle), 0.0);
}
