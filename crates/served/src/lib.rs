//! `served` — the crash-safe multi-tenant optimization service.
//!
//! The paper's compiler is a pure function; this crate wraps it in a
//! process boundary that stays useful when things go wrong. `beoptd`
//! serves `optimize`/`fork-join` plan requests over newline-delimited
//! JSON on TCP, built from four pieces:
//!
//! * **[`shard`]** — a supervised pool of worker shards, each owning a
//!   slice of the shared FME feasibility memo. Worker panics are
//!   fail-stop for the shard only: the supervisor restarts it with a
//!   cache *rejoined* from the last good snapshot
//!   ([`ineq::load_snapshot`]), so a crash costs warmth bounded by the
//!   snapshot cadence, never correctness — plans are pure functions of
//!   the request and the explain documents they return are
//!   byte-identical to a single-process run.
//! * **[`queue`]** — bounded admission per shard. Overload is an
//!   immediate structured `overloaded` reply with a retry-after hint,
//!   not a growing backlog.
//! * **[`proto`]/[`client`]** — the wire format and a client that
//!   retries retryable failures (sheds, crashes, drops) under the
//!   execution plane's deterministic [`runtime::RetryPolicy`] ladder.
//! * **[`chaos`]** — service-plane fault hooks (shard kills, snapshot
//!   corruption, transport delays/drops); the seeded injector and the
//!   `beoracle service-chaos` campaign live in `oracle`.

pub mod chaos;
pub mod client;
pub mod proto;
pub mod queue;
pub mod server;
pub mod shard;

pub use chaos::{NoChaos, ServiceChaos, ServiceFault};
pub use client::{ClientError, ServiceClient};
pub use proto::{
    decode_reply, decode_request, encode_reply, encode_request, ErrorCode, ErrorReply,
    OptimizeReply, OptimizeRequest, PlanKind, Reply, Request, PROTO_VERSION,
};
pub use server::{Service, ServiceConfig};
pub use shard::{route, Shard, ShardConfig};
